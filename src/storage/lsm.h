#ifndef ASTERIX_STORAGE_LSM_H_
#define ASTERIX_STORAGE_LSM_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "adm/type.h"
#include "storage/btree.h"
#include "storage/buffer_cache.h"
#include "storage/column/batch.h"
#include "storage/compaction.h"
#include "storage/component.h"
#include "storage/key.h"

namespace asterix {
namespace storage {

/// Physical layout of an index's disk components. Row components are paged
/// B+-trees storing whole record images; column components store the same
/// rows column-major with per-page min/max stats, so projected scans read
/// only the touched fields (see src/storage/column/).
enum class StorageFormat { kRow, kColumn };

/// When and what to merge, per the paper's "subject to some merge policy".
struct MergePolicy {
  enum class Kind {
    kNone,      // never merge (read cost grows with component count)
    kConstant,  // merge ALL disk components whenever more than `max_components`
    kPrefix,    // merge the contiguous run of small components when the run
                // grows past `max_components` and stays under `max_merge_bytes`
    kTiered,    // size-ratio tiering: merge the newest contiguous run of
                // similar-sized components once it grows past
                // `max_components` runs — bounded merge cost per flush,
                // write-amp O(log n) instead of constant-policy O(n)
  };
  Kind kind = Kind::kConstant;
  size_t max_components = 5;
  uint64_t max_merge_bytes = 256ull << 20;
  /// Tiered only: a component belongs to the newest run while it is at most
  /// `size_ratio_x100 / 100` times the total of the newer run members.
  uint32_t size_ratio_x100 = 120;

  static MergePolicy None() { return {Kind::kNone, 0, 0, 0}; }
  static MergePolicy Constant(size_t k) { return {Kind::kConstant, k, 0, 0}; }
  static MergePolicy Prefix(size_t k, uint64_t bytes) {
    return {Kind::kPrefix, k, bytes, 0};
  }
  static MergePolicy Tiered(size_t k, uint32_t ratio_x100) {
    return {Kind::kTiered, k, 0, ratio_x100};
  }
};

/// Maps a DDL with-clause policy name ("none" | "constant" | "prefix" |
/// "tiered") onto a MergePolicy with that kind's default knobs. Returns
/// false for unknown names.
bool MergePolicyFromName(const std::string& name, MergePolicy* out);

/// Inverse of MergePolicyFromName (metadata persistence).
const char* MergePolicyName(MergePolicy::Kind kind);

struct LsmOptions {
  /// Flush the in-memory component once it holds this many bytes of
  /// payload+key data (the paper's memory-occupancy threshold).
  size_t mem_budget_bytes = 8u << 20;
  MergePolicy merge_policy = MergePolicy::Constant(5);
  /// Disk-component layout, fixed for the index's lifetime (components are
  /// homogeneous: changing the format of an existing dataset is not
  /// supported). Column format requires `record_type`.
  StorageFormat format = StorageFormat::kRow;
  /// LZ-compress disk components: row formats frame each record payload,
  /// column formats compress each column page. Like `format`, fixed at
  /// dataset-creation time.
  bool compress = false;
  /// The dataset's declared record type; drives schema inference and
  /// schema-typed column encoding (required when format == kColumn).
  adm::DatatypePtr record_type;
  /// Background maintenance pool. When set, a budget trip rotates the
  /// memtable to an immutable component and schedules an async flush
  /// instead of flushing inline; merges run as background jobs too. When
  /// null (the default), flush and merge stay synchronous on the writer —
  /// the original behavior, still used by tests and standalone trees.
  CompactionScheduler* scheduler = nullptr;
  /// Async mode only: total in-memory bytes (mutable + immutable) at which
  /// a writer blocks until the in-flight flush completes, bounding memory
  /// when ingest outruns the flush pool. 0 = 3 * mem_budget_bytes (the imm
  /// component holds ~1x on its own; the extra 1x is the soft-throttle
  /// band — a 2x ceiling would make writers skip the throttle and block).
  size_t mem_hard_limit_bytes = 0;
};

/// A disk component's identity and stats. `max_lsn` is the largest WAL LSN
/// whose effect is contained in the component; recovery replays only ops
/// beyond the index's flushed LSN.
///
/// `seq` is the component's *sort* position: components resolve
/// newest-wins in increasing seq order. For flushed components it equals
/// the file-name seq; a merge output keeps the sort seq of its newest
/// input (so it sorts exactly where the merged run sat) while its file is
/// named by a fresh allocation — which is what lets a merge commit while a
/// newer flush is concurrently installing a higher seq.
struct ComponentInfo {
  uint64_t seq = 0;
  std::string path;
  uint64_t num_entries = 0;
  uint64_t bytes = 0;
  uint64_t max_lsn = 0;
};

/// The LSM-ification framework's shared machinery: component naming,
/// sequence allocation, validity-bit shadowing (a component only becomes
/// visible once its `.valid` marker is atomically installed), crash-orphan
/// cleanup, and component-file deletion after merges. Index structures
/// (B+-tree, R-tree, inverted) plug their own build/read logic on top —
/// this is the paper's "framework that enables LSM-ification of any kind
/// of index structure".
class LsmLifecycle {
 public:
  /// `dir` must exist; `name` scopes the index's files inside it, and
  /// `suffix` tags the structure kind (btr/rtr).
  LsmLifecycle(std::string dir, std::string name, std::string suffix);

  /// Scans the directory: returns valid components sorted oldest-first
  /// (by sort seq), deletes any component files lacking a validity marker
  /// (crash debris), and completes interrupted merge cleanup — when a valid
  /// merge output declares a `replaces` range, any other valid component
  /// whose sort seq falls inside it is a leftover input and is removed.
  Result<std::vector<ComponentInfo>> Recover();

  uint64_t AllocateSeq();
  std::string ComponentPath(uint64_t seq) const;

  /// Installs the validity bit: after this returns the component is durable
  /// and will be seen by Recover(). `sort_seq` (0 = same as `seq`) is the
  /// resolution-order position recorded in the marker; merge outputs pass
  /// their newest input's seq plus the `replaces` range [lo, hi] of input
  /// sort seqs the output supersedes.
  Status MarkValid(uint64_t seq, uint64_t num_entries, uint64_t max_lsn,
                   uint64_t sort_seq = 0, uint64_t replaces_lo = 0,
                   uint64_t replaces_hi = 0);

  Status RemoveComponent(const ComponentInfo& info);

  /// The index name this lifecycle scopes (journal event labels).
  const std::string& name() const { return name_; }

 private:
  std::string MarkerPath(uint64_t seq) const;

  std::string dir_;
  std::string name_;
  std::string suffix_;
  uint64_t next_seq_ = 1;
};

/// An LSM B+-tree: in-memory component (std::map) + immutable disk
/// components, flushed and merged via bulk loads. Deletes are antimatter
/// entries that cancel older matter. This one structure backs primary
/// indexes (payload = record bytes), secondary B-tree indexes (composite
/// key, empty payload), and — keyed by (token, pk) — the inverted indexes.
class LsmBTree : public Compactable {
 public:
  LsmBTree(BufferCache* cache, const std::string& dir, const std::string& name,
           LsmOptions options);
  /// Quiesces and detaches from the scheduler before members go away; data
  /// still in memory is dropped (crash semantics — the WAL covers it).
  ~LsmBTree() override;

  /// Loads valid disk components (call once before use).
  Status Open();

  // -- Mutators (caller serializes per-key via the lock manager) ----------
  Status Upsert(const CompositeKey& key, std::vector<uint8_t> payload,
                uint64_t lsn);
  Status Delete(const CompositeKey& key, uint64_t lsn);

  /// Forces all in-memory data to disk. In async mode this is a synchronous
  /// barrier: it waits for in-flight background maintenance to quiesce,
  /// then flushes whatever remains inline — on return the memtables are
  /// empty and the merge policy has been applied.
  Status Flush();

  /// Applies the merge policy now (normally triggered by maintenance).
  /// Barrier semantics in async mode, like Flush().
  Status MaybeMerge();

  // -- Compactable (scheduler worker entry points) -------------------------
  Status BackgroundFlush() override;
  Status BackgroundMerge() override;
  const std::string& compaction_label() const override;

  // -- Readers --------------------------------------------------------------
  /// LSM-resolved point lookup: newest component wins, antimatter hides.
  Status PointLookup(const CompositeKey& key, bool* found,
                     std::vector<uint8_t>* payload) const;

  /// LSM-resolved ordered range scan across all components.
  Status RangeScan(const ScanBounds& bounds, const EntryCallback& cb) const;

  /// LSM-resolved scan materializing only the projection's fields (the
  /// callback's antimatter flag is always false — resolution happens here).
  /// Column components read only the touched column pages and skip page
  /// groups via per-page min/max stats: freely in the single-component
  /// steady state, and on multi-component scans only for groups whose key
  /// span is disjoint from every other component (a skipped group that
  /// overlapped another component could resurrect an older version of its
  /// rows). `stats` (optional) accumulates bytes/pages.
  Status ProjectedScan(const ScanBounds& bounds, const column::Projection& proj,
                       const column::ProjectedEntryCallback& cb,
                       column::ProjectedScanStats* stats) const;

  /// Vectorized scan: in the columnar single-component steady state, hands
  /// decoded column pages to the caller as typed ColumnBatches without row
  /// reconstruction (antimatter rows excluded via the selection vector).
  /// Returns Unimplemented whenever cross-component resolution or row
  /// assembly would be required — callers fall back to ProjectedScan.
  Status BatchScan(const ScanBounds& bounds, const column::Projection& proj,
                   const column::BatchCallback& cb,
                   column::ProjectedScanStats* stats) const;

  // -- Stats ---------------------------------------------------------------
  size_t mem_entries() const;
  size_t num_disk_components() const;
  uint64_t total_disk_bytes() const;
  uint64_t num_logical_entries() const;  // approximate (pre-merge counts)
  uint64_t flushed_lsn() const;

 private:
  struct MemEntry {
    bool antimatter = false;
    std::vector<uint8_t> payload;
  };
  struct KeyLess {
    bool operator()(const CompositeKey& a, const CompositeKey& b) const {
      return CompareKeys(a, b) < 0;
    }
  };
  using MemTable = std::map<CompositeKey, MemEntry, KeyLess>;
  struct DiskComponent {
    ComponentInfo info;
    std::shared_ptr<DiskComponentReader> reader;
  };
  /// A rotated (immutable) in-memory component awaiting its background
  /// flush. Readers traverse `entries` under the shared lock while the
  /// flush job reads it lock-free — both sides are read-only, and the map
  /// is never mutated after rotation.
  struct ImmComponent {
    MemTable entries;
    size_t bytes = 0;
    uint64_t max_lsn = 0;
  };

  /// Opens a disk component with the reader matching options_.format.
  Status OpenReader(const std::string& path,
                    std::shared_ptr<DiskComponentReader>* out) const;
  /// Bulk-loads `entries` (sorted, logical payloads) into a new component
  /// file at `path` in options_.format, handling payload/page compression.
  Status BuildComponent(const MemTable& entries, const std::string& path,
                        uint64_t* num_entries) const;
  /// The single budget-trip path shared by Upsert and Delete: rotate and
  /// schedule in async mode (throttling when the previous rotation is still
  /// in flight), flush inline in sync mode. May release and reacquire
  /// `lock`; every stall goes through RecordWriteStall exactly once.
  Status MaybeRotateLocked(std::unique_lock<std::shared_mutex>& lock);
  /// Moves mem_ into a fresh imm_ (requires the unique lock; imm_ empty).
  void RotateLocked();
  /// Builds and installs a disk component from `entries`, fully under the
  /// lock (the synchronous flush body, shared by sync mode and barriers).
  Status FlushTableLocked(const MemTable& entries, size_t bytes_in,
                          uint64_t max_lsn);
  /// Installs an already-built component and records flush accounting.
  void FinishFlushLocked(ComponentInfo info,
                         std::shared_ptr<DiskComponentReader> reader,
                         uint64_t bytes_in, uint64_t flush_start_us);
  /// Flushes imm_ (if any) then mem_ inline, then applies the merge policy.
  Status FlushLocked();
  Status MaybeMergeLockedImpl();
  /// Merge-policy decision over the current disk_ state; false = no merge.
  bool SelectMergeRunLocked(size_t* first, size_t* count) const;
  /// True when the merge policy wants a merge of the current disk_ state.
  bool MergeWantedLocked() const;
  Status MergeComponents(size_t first, size_t count);

  BufferCache* cache_;
  LsmLifecycle lifecycle_;
  LsmOptions options_;

  mutable std::shared_mutex mu_;
  MemTable mem_;
  size_t mem_bytes_ = 0;
  uint64_t mem_max_lsn_ = 0;
  uint64_t flushed_lsn_ = 0;
  // Oldest first; the in-memory components are conceptually at the end
  // (imm_ older than mem_).
  std::vector<DiskComponent> disk_;
  /// Rotated memtable being flushed in the background; null when none.
  std::shared_ptr<const ImmComponent> imm_;
  /// Signaled when imm_ clears (or bg_error_ is set): wakes writers blocked
  /// at the hard memory ceiling and the barrier retry loops.
  mutable std::condition_variable_any imm_cv_;
  /// Escalates the soft-throttle delay while the flush pool is behind;
  /// reset whenever a rotation succeeds or the budget has headroom.
  uint32_t throttle_level_ = 0;
  /// True while a background job is building outside the lock; barriers
  /// wait for these so an inline flush/merge can't duplicate in-flight
  /// work (cleared with an imm_cv_ notify).
  bool flush_inflight_ = false;
  bool merge_inflight_ = false;
  /// First error from a background job; surfaced to the next writer or
  /// barrier call (the tree stops accepting writes until reopened).
  Status bg_error_;
};

}  // namespace storage
}  // namespace asterix

#endif  // ASTERIX_STORAGE_LSM_H_
