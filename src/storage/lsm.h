#ifndef ASTERIX_STORAGE_LSM_H_
#define ASTERIX_STORAGE_LSM_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "adm/type.h"
#include "storage/btree.h"
#include "storage/buffer_cache.h"
#include "storage/column/batch.h"
#include "storage/component.h"
#include "storage/key.h"

namespace asterix {
namespace storage {

/// Physical layout of an index's disk components. Row components are paged
/// B+-trees storing whole record images; column components store the same
/// rows column-major with per-page min/max stats, so projected scans read
/// only the touched fields (see src/storage/column/).
enum class StorageFormat { kRow, kColumn };

/// When and what to merge, per the paper's "subject to some merge policy".
struct MergePolicy {
  enum class Kind {
    kNone,      // never merge (read cost grows with component count)
    kConstant,  // merge ALL disk components whenever more than `max_components`
    kPrefix,    // merge the contiguous run of small components when the run
                // grows past `max_components` and stays under `max_merge_bytes`
  };
  Kind kind = Kind::kConstant;
  size_t max_components = 5;
  uint64_t max_merge_bytes = 256ull << 20;

  static MergePolicy None() { return {Kind::kNone, 0, 0}; }
  static MergePolicy Constant(size_t k) { return {Kind::kConstant, k, 0}; }
  static MergePolicy Prefix(size_t k, uint64_t bytes) {
    return {Kind::kPrefix, k, bytes};
  }
};

struct LsmOptions {
  /// Flush the in-memory component once it holds this many bytes of
  /// payload+key data (the paper's memory-occupancy threshold).
  size_t mem_budget_bytes = 8u << 20;
  MergePolicy merge_policy = MergePolicy::Constant(5);
  /// Disk-component layout, fixed for the index's lifetime (components are
  /// homogeneous: changing the format of an existing dataset is not
  /// supported). Column format requires `record_type`.
  StorageFormat format = StorageFormat::kRow;
  /// LZ-compress disk components: row formats frame each record payload,
  /// column formats compress each column page. Like `format`, fixed at
  /// dataset-creation time.
  bool compress = false;
  /// The dataset's declared record type; drives schema inference and
  /// schema-typed column encoding (required when format == kColumn).
  adm::DatatypePtr record_type;
};

/// A disk component's identity and stats. `max_lsn` is the largest WAL LSN
/// whose effect is contained in the component; recovery replays only ops
/// beyond the index's flushed LSN.
struct ComponentInfo {
  uint64_t seq = 0;
  std::string path;
  uint64_t num_entries = 0;
  uint64_t bytes = 0;
  uint64_t max_lsn = 0;
};

/// The LSM-ification framework's shared machinery: component naming,
/// sequence allocation, validity-bit shadowing (a component only becomes
/// visible once its `.valid` marker is atomically installed), crash-orphan
/// cleanup, and component-file deletion after merges. Index structures
/// (B+-tree, R-tree, inverted) plug their own build/read logic on top —
/// this is the paper's "framework that enables LSM-ification of any kind
/// of index structure".
class LsmLifecycle {
 public:
  /// `dir` must exist; `name` scopes the index's files inside it, and
  /// `suffix` tags the structure kind (btr/rtr).
  LsmLifecycle(std::string dir, std::string name, std::string suffix);

  /// Scans the directory: returns valid components sorted oldest-first and
  /// deletes any component files lacking a validity marker (crash debris).
  Result<std::vector<ComponentInfo>> Recover();

  uint64_t AllocateSeq();
  std::string ComponentPath(uint64_t seq) const;

  /// Installs the validity bit: after this returns the component is durable
  /// and will be seen by Recover().
  Status MarkValid(uint64_t seq, uint64_t num_entries, uint64_t max_lsn);

  Status RemoveComponent(const ComponentInfo& info);

  /// The index name this lifecycle scopes (journal event labels).
  const std::string& name() const { return name_; }

 private:
  std::string MarkerPath(uint64_t seq) const;

  std::string dir_;
  std::string name_;
  std::string suffix_;
  uint64_t next_seq_ = 1;
};

/// An LSM B+-tree: in-memory component (std::map) + immutable disk
/// components, flushed and merged via bulk loads. Deletes are antimatter
/// entries that cancel older matter. This one structure backs primary
/// indexes (payload = record bytes), secondary B-tree indexes (composite
/// key, empty payload), and — keyed by (token, pk) — the inverted indexes.
class LsmBTree {
 public:
  LsmBTree(BufferCache* cache, const std::string& dir, const std::string& name,
           LsmOptions options);

  /// Loads valid disk components (call once before use).
  Status Open();

  // -- Mutators (caller serializes per-key via the lock manager) ----------
  Status Upsert(const CompositeKey& key, std::vector<uint8_t> payload,
                uint64_t lsn);
  Status Delete(const CompositeKey& key, uint64_t lsn);

  /// Forces the in-memory component to disk (no-op when empty).
  Status Flush();

  /// Applies the merge policy now (normally triggered by Flush).
  Status MaybeMerge();

  // -- Readers --------------------------------------------------------------
  /// LSM-resolved point lookup: newest component wins, antimatter hides.
  Status PointLookup(const CompositeKey& key, bool* found,
                     std::vector<uint8_t>* payload) const;

  /// LSM-resolved ordered range scan across all components.
  Status RangeScan(const ScanBounds& bounds, const EntryCallback& cb) const;

  /// LSM-resolved scan materializing only the projection's fields (the
  /// callback's antimatter flag is always false — resolution happens here).
  /// Column components read only the touched column pages and skip page
  /// groups via per-page min/max stats: freely in the single-component
  /// steady state, and on multi-component scans only for groups whose key
  /// span is disjoint from every other component (a skipped group that
  /// overlapped another component could resurrect an older version of its
  /// rows). `stats` (optional) accumulates bytes/pages.
  Status ProjectedScan(const ScanBounds& bounds, const column::Projection& proj,
                       const column::ProjectedEntryCallback& cb,
                       column::ProjectedScanStats* stats) const;

  /// Vectorized scan: in the columnar single-component steady state, hands
  /// decoded column pages to the caller as typed ColumnBatches without row
  /// reconstruction (antimatter rows excluded via the selection vector).
  /// Returns Unimplemented whenever cross-component resolution or row
  /// assembly would be required — callers fall back to ProjectedScan.
  Status BatchScan(const ScanBounds& bounds, const column::Projection& proj,
                   const column::BatchCallback& cb,
                   column::ProjectedScanStats* stats) const;

  // -- Stats ---------------------------------------------------------------
  size_t mem_entries() const;
  size_t num_disk_components() const;
  uint64_t total_disk_bytes() const;
  uint64_t num_logical_entries() const;  // approximate (pre-merge counts)
  uint64_t flushed_lsn() const;

 private:
  struct MemEntry {
    bool antimatter = false;
    std::vector<uint8_t> payload;
  };
  struct KeyLess {
    bool operator()(const CompositeKey& a, const CompositeKey& b) const {
      return CompareKeys(a, b) < 0;
    }
  };
  struct DiskComponent {
    ComponentInfo info;
    std::shared_ptr<DiskComponentReader> reader;
  };

  /// Opens a disk component with the reader matching options_.format.
  Status OpenReader(const std::string& path,
                    std::shared_ptr<DiskComponentReader>* out) const;
  /// Bulk-loads `entries` (sorted, logical payloads) into a new component
  /// file at `path` in options_.format, handling payload/page compression.
  Status BuildComponent(const std::map<CompositeKey, MemEntry, KeyLess>& entries,
                        const std::string& path, uint64_t* num_entries) const;
  Status FlushLocked();
  Status MaybeMergeLockedImpl();
  Status MergeComponents(size_t first, size_t count);

  BufferCache* cache_;
  LsmLifecycle lifecycle_;
  LsmOptions options_;

  mutable std::shared_mutex mu_;
  std::map<CompositeKey, MemEntry, KeyLess> mem_;
  size_t mem_bytes_ = 0;
  uint64_t mem_max_lsn_ = 0;
  uint64_t flushed_lsn_ = 0;
  // Oldest first; the in-memory component is conceptually at the end.
  std::vector<DiskComponent> disk_;
};

}  // namespace storage
}  // namespace asterix

#endif  // ASTERIX_STORAGE_LSM_H_
