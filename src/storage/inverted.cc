#include "storage/inverted.h"

#include <map>
#include <set>

#include "functions/similarity.h"

namespace asterix {
namespace storage {

LsmInvertedIndex::LsmInvertedIndex(BufferCache* cache, const std::string& dir,
                                   const std::string& name, Tokenizer tokenizer,
                                   size_t gram_length, LsmOptions options)
    : tree_(cache, dir, name, options),
      tokenizer_(tokenizer),
      gram_length_(gram_length) {}

Status LsmInvertedIndex::Open() { return tree_.Open(); }

std::vector<std::string> LsmInvertedIndex::TokensOf(
    const adm::Value& value) const {
  std::vector<std::string> tokens;
  auto tokenize_string = [&](const std::string& s) {
    if (tokenizer_ == Tokenizer::kWord) {
      for (auto& t : functions::WordTokens(s)) tokens.push_back(std::move(t));
    } else {
      for (auto& t : functions::GramTokens(s, gram_length_, /*pad=*/true)) {
        tokens.push_back(std::move(t));
      }
    }
  };
  if (value.IsString()) {
    tokenize_string(value.AsString());
  } else if (value.IsList()) {
    // Bags of strings (e.g. message tags) index their elements verbatim —
    // this is what powers indexed Jaccard similarity on tag sets.
    for (const auto& item : value.AsList()) {
      if (item.IsString()) tokens.push_back(item.AsString());
    }
  }
  // De-duplicate per record so occurrence counts mean "distinct tokens".
  std::set<std::string> uniq(tokens.begin(), tokens.end());
  return {uniq.begin(), uniq.end()};
}

Status LsmInvertedIndex::Insert(const CompositeKey& pk, const adm::Value& value,
                                uint64_t lsn) {
  for (const auto& token : TokensOf(value)) {
    CompositeKey key;
    key.reserve(pk.size() + 1);
    key.push_back(adm::Value::String(token));
    for (const auto& k : pk) key.push_back(k);
    ASTERIX_RETURN_NOT_OK(tree_.Upsert(key, {}, lsn));
  }
  return Status::OK();
}

Status LsmInvertedIndex::Delete(const CompositeKey& pk,
                                const adm::Value& old_value, uint64_t lsn) {
  for (const auto& token : TokensOf(old_value)) {
    CompositeKey key;
    key.reserve(pk.size() + 1);
    key.push_back(adm::Value::String(token));
    for (const auto& k : pk) key.push_back(k);
    ASTERIX_RETURN_NOT_OK(tree_.Delete(key, lsn));
  }
  return Status::OK();
}

Status LsmInvertedIndex::Flush() { return tree_.Flush(); }

Status LsmInvertedIndex::SearchToken(
    const std::string& token,
    const std::function<Status(const CompositeKey& pk)>& cb) const {
  ScanBounds bounds;
  bounds.lo = CompositeKey{adm::Value::String(token)};
  bounds.hi = bounds.lo;  // prefix semantics: all keys whose token matches
  return tree_.RangeScan(bounds, [&](const IndexEntry& e) {
    CompositeKey pk(e.key.begin() + 1, e.key.end());
    return cb(pk);
  });
}

Status LsmInvertedIndex::SearchTokensCount(
    const std::vector<std::string>& tokens,
    const std::function<Status(const CompositeKey& pk, size_t count)>& cb)
    const {
  struct KeyLess {
    bool operator()(const CompositeKey& a, const CompositeKey& b) const {
      return CompareKeys(a, b) < 0;
    }
  };
  std::map<CompositeKey, size_t, KeyLess> counts;
  std::set<std::string> uniq(tokens.begin(), tokens.end());
  for (const auto& token : uniq) {
    ASTERIX_RETURN_NOT_OK(SearchToken(token, [&](const CompositeKey& pk) {
      ++counts[pk];
      return Status::OK();
    }));
  }
  for (const auto& [pk, count] : counts) {
    ASTERIX_RETURN_NOT_OK(cb(pk, count));
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace asterix
