#ifndef ASTERIX_BASELINES_DOCSTORE_H_
#define ASTERIX_BASELINES_DOCSTORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "adm/value.h"
#include "common/status.h"

namespace asterix {
namespace baselines {

/// A schemaless document store modeled after the MongoDB the paper
/// benchmarks against (§5.3): documents are stored self-describing (every
/// instance carries its field names — the storage-size behaviour Table 2
/// shows), point reads go through a primary hash index, optional secondary
/// B-trees support range queries, there are NO joins (clients join, as the
/// paper did), and writes append to a journal before acknowledging
/// ("write concern = journaled").
class DocStore {
 public:
  /// `dir` holds the collection files; `pk_field` is the _id-style key.
  DocStore(std::string dir, std::string name, std::string pk_field);

  Status Open();

  // -- Writes -------------------------------------------------------------
  /// Journaled single-document insert.
  Status Insert(const adm::Value& doc);
  /// Bulk load without per-document journal forcing.
  Status LoadBulk(const std::vector<adm::Value>& docs);
  Status EnsureIndex(const std::string& field);

  // -- Reads --------------------------------------------------------------
  Status FindByKey(const adm::Value& key, bool* found, adm::Value* doc) const;
  /// Full collection scan (deserializes every self-describing document).
  Status Scan(const std::function<Status(const adm::Value&)>& cb) const;
  /// Secondary range query [lo, hi] over an indexed field.
  Status RangeQuery(const std::string& field, const adm::Value& lo,
                    const adm::Value& hi,
                    const std::function<Status(const adm::Value&)>& cb) const;
  /// Bulk point lookups (the client-side join helper the paper describes
  /// for MongoDB: find matching ids, then $in-style bulk fetch).
  Status FindMany(const std::vector<adm::Value>& keys,
                  const std::function<Status(const adm::Value&)>& cb) const;

  /// Map-reduce style aggregation (what the paper used for Mongo's
  /// aggregation query): per-document map to (key, value), then reduce.
  /// Deliberately materializes the map output, as map-reduce does.
  Status MapReduce(
      const std::function<void(const adm::Value&,
                               std::vector<std::pair<adm::Value, adm::Value>>*)>&
          map_fn,
      const std::function<adm::Value(const std::vector<adm::Value>&)>& reduce_fn,
      std::map<std::string, adm::Value>* out) const;

  /// Flushes the heap file to disk and reports its size (Table 2).
  Status Persist();
  uint64_t DiskBytes() const;
  size_t Count() const { return primary_.size(); }

 private:
  struct DocRef {
    size_t offset;
    size_t length;
  };

  Status AppendDoc(const adm::Value& doc, bool journal);
  Result<adm::Value> LoadDoc(const DocRef& ref) const;

  std::string dir_;
  std::string name_;
  std::string pk_field_;
  // Append-only heap of self-describing documents.
  std::vector<uint8_t> heap_;
  std::unordered_map<uint64_t, std::vector<std::pair<adm::Value, DocRef>>>
      primary_;  // key hash -> (key, ref); chained for collisions
  std::map<std::string, std::multimap<adm::Value, adm::Value,
                                      bool (*)(const adm::Value&, const adm::Value&)>>
      secondary_;  // field -> sorted (value, pk)
  uint64_t journal_bytes_ = 0;
};

}  // namespace baselines
}  // namespace asterix

#endif  // ASTERIX_BASELINES_DOCSTORE_H_
