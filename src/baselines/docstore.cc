#include "baselines/docstore.h"

#include "adm/serde.h"
#include "common/env.h"

namespace asterix {
namespace baselines {

using adm::Value;

namespace {

bool ValueLess(const Value& a, const Value& b) { return a.Compare(b) < 0; }

}  // namespace

DocStore::DocStore(std::string dir, std::string name, std::string pk_field)
    : dir_(std::move(dir)), name_(std::move(name)), pk_field_(std::move(pk_field)) {
  env::CreateDirs(dir_);
}

Status DocStore::Open() { return Status::OK(); }

Status DocStore::AppendDoc(const Value& doc, bool journal) {
  const Value& key = doc.GetField(pk_field_);
  if (key.IsUnknown()) {
    return Status::InvalidArgument("document lacks key field " + pk_field_);
  }
  bool exists = false;
  Value unused;
  ASTERIX_RETURN_NOT_OK(FindByKey(key, &exists, &unused));
  if (exists) return Status::AlreadyExists("duplicate _id");

  BytesWriter w;
  adm::SerializeValue(doc, &w);  // self-describing: names in every instance
  DocRef ref{heap_.size(), w.size()};
  heap_.insert(heap_.end(), w.data().begin(), w.data().end());
  primary_[key.Hash()].emplace_back(key, ref);
  for (auto& [field, index] : secondary_) {
    const Value& v = doc.GetField(field);
    if (!v.IsUnknown()) index.emplace(v, key);
  }
  if (journal) {
    // "write concern = journaled": append the document to the journal and
    // flush before acknowledging.
    journal_bytes_ += w.size();
    ASTERIX_RETURN_NOT_OK(env::AppendFile(dir_ + "/" + name_ + ".journal",
                                          w.data().data(), w.size()));
  }
  return Status::OK();
}

Status DocStore::Insert(const Value& doc) { return AppendDoc(doc, true); }

Status DocStore::LoadBulk(const std::vector<Value>& docs) {
  for (const auto& d : docs) {
    ASTERIX_RETURN_NOT_OK(AppendDoc(d, false));
  }
  return Status::OK();
}

Status DocStore::EnsureIndex(const std::string& field) {
  if (secondary_.count(field)) return Status::OK();
  auto [it, ok] = secondary_.emplace(
      field, std::multimap<Value, Value, bool (*)(const Value&, const Value&)>(
                 ValueLess));
  (void)ok;
  // Backfill from existing documents.
  return Scan([&](const Value& doc) {
    const Value& v = doc.GetField(field);
    const Value& key = doc.GetField(pk_field_);
    if (!v.IsUnknown()) it->second.emplace(v, key);
    return Status::OK();
  });
}

Result<Value> DocStore::LoadDoc(const DocRef& ref) const {
  BytesReader r(heap_.data() + ref.offset, ref.length);
  Value v;
  Status st = adm::DeserializeValue(&r, &v);
  if (!st.ok()) return st;
  return v;
}

Status DocStore::FindByKey(const Value& key, bool* found, Value* doc) const {
  *found = false;
  auto it = primary_.find(key.Hash());
  if (it == primary_.end()) return Status::OK();
  for (const auto& [k, ref] : it->second) {
    if (k.Equals(key)) {
      ASTERIX_ASSIGN_OR_RETURN(*doc, LoadDoc(ref));
      *found = true;
      return Status::OK();
    }
  }
  return Status::OK();
}

Status DocStore::Scan(const std::function<Status(const Value&)>& cb) const {
  // A collection scan must deserialize every self-describing document —
  // the cost driver behind Mongo's scan rows in Table 3.
  BytesReader r(heap_.data(), heap_.size());
  while (!r.AtEnd()) {
    Value v;
    ASTERIX_RETURN_NOT_OK(adm::DeserializeValue(&r, &v));
    ASTERIX_RETURN_NOT_OK(cb(v));
  }
  return Status::OK();
}

Status DocStore::RangeQuery(const std::string& field, const Value& lo,
                            const Value& hi,
                            const std::function<Status(const Value&)>& cb) const {
  auto it = secondary_.find(field);
  if (it == secondary_.end()) {
    return Status::NotFound("no index on " + field);
  }
  for (auto e = it->second.lower_bound(lo);
       e != it->second.end() && e->first.Compare(hi) <= 0; ++e) {
    bool found;
    Value doc;
    ASTERIX_RETURN_NOT_OK(FindByKey(e->second, &found, &doc));
    if (found) ASTERIX_RETURN_NOT_OK(cb(doc));
  }
  return Status::OK();
}

Status DocStore::FindMany(const std::vector<Value>& keys,
                          const std::function<Status(const Value&)>& cb) const {
  for (const auto& key : keys) {
    bool found;
    Value doc;
    ASTERIX_RETURN_NOT_OK(FindByKey(key, &found, &doc));
    if (found) ASTERIX_RETURN_NOT_OK(cb(doc));
  }
  return Status::OK();
}

Status DocStore::MapReduce(
    const std::function<void(const Value&,
                             std::vector<std::pair<Value, Value>>*)>& map_fn,
    const std::function<Value(const std::vector<Value>&)>& reduce_fn,
    std::map<std::string, Value>* out) const {
  // Phase 1: map over every document, materializing the emitted pairs (the
  // map-reduce overhead the paper saw in Mongo's aggregation numbers).
  std::map<std::string, std::vector<Value>> groups;
  std::vector<std::pair<Value, Value>> emitted;
  ASTERIX_RETURN_NOT_OK(Scan([&](const Value& doc) {
    emitted.clear();
    map_fn(doc, &emitted);
    for (auto& [k, v] : emitted) {
      groups[k.ToString()].push_back(std::move(v));
    }
    return Status::OK();
  }));
  // Phase 2: reduce per key.
  out->clear();
  for (auto& [k, values] : groups) {
    (*out)[k] = reduce_fn(values);
  }
  return Status::OK();
}

Status DocStore::Persist() {
  return env::WriteFileAtomic(dir_ + "/" + name_ + ".heap", heap_.data(),
                              heap_.size());
}

uint64_t DocStore::DiskBytes() const {
  return env::FileSize(dir_ + "/" + name_ + ".heap");
}

}  // namespace baselines
}  // namespace asterix
