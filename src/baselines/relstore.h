#ifndef ASTERIX_BASELINES_RELSTORE_H_
#define ASTERIX_BASELINES_RELSTORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adm/type.h"
#include "adm/value.h"
#include "common/status.h"

namespace asterix {
namespace baselines {

/// One table of the shared-nothing parallel RDBMS stand-in ("System-X",
/// §5.3). Rows are flat and typed — stored positionally without field names
/// (schema-first storage) — with a primary B-tree and optional secondary
/// B-trees. Nested ADM data must be NORMALIZED into side tables, exactly as
/// the paper did for System-X; reassembling records costs joins, which is
/// the behaviour Table 3's record-lookup/range-scan rows show.
class RelTable {
 public:
  struct ColumnDef {
    std::string name;
    adm::TypeTag type;
  };

  RelTable(std::string dir, std::string name, std::vector<ColumnDef> schema,
           std::string pk_column);

  Status Insert(const adm::Value& row, bool journal = true);
  Status LoadBulk(const std::vector<adm::Value>& rows);
  Status CreateIndex(const std::string& column);

  Status FindByKey(const adm::Value& key, bool* found, adm::Value* row) const;
  Status Scan(const std::function<Status(const adm::Value&)>& cb) const;
  /// Secondary range [lo, hi]; rows fetched via the primary.
  Status RangeQuery(const std::string& column, const adm::Value& lo,
                    const adm::Value& hi,
                    const std::function<Status(const adm::Value&)>& cb) const;
  /// Index nested-loop probe: all rows whose `column` equals `key`.
  Status IndexProbe(const std::string& column, const adm::Value& key,
                    const std::function<Status(const adm::Value&)>& cb) const;
  bool HasIndex(const std::string& column) const;

  Status Persist();
  uint64_t DiskBytes() const;
  size_t Count() const { return primary_.size(); }
  const std::string& name() const { return name_; }

 private:
  struct RowRef {
    size_t offset;
    size_t length;
  };

  Result<adm::Value> LoadRow(const RowRef& ref) const;

  std::string dir_;
  std::string name_;
  std::vector<ColumnDef> schema_;
  std::string pk_column_;
  adm::DatatypePtr row_type_;  // closed record type: positional storage

  std::vector<uint8_t> heap_;
  struct ValueLess {
    bool operator()(const adm::Value& a, const adm::Value& b) const {
      return a.Compare(b) < 0;
    }
  };
  std::map<adm::Value, RowRef, ValueLess> primary_;
  std::map<std::string, std::multimap<adm::Value, adm::Value, ValueLess>>
      secondary_;
};

/// Join-method selection of the stand-in's cost-based optimizer. The paper:
/// "the cost-based optimizer of System-X picked an index nested-loop join,
/// as it is faster than a hash join in this case" — it probes when the
/// outer side is small relative to the inner table.
enum class JoinMethod { kHashJoin, kIndexNestedLoop };

JoinMethod ChooseJoinMethod(size_t outer_cardinality, size_t inner_cardinality,
                            bool inner_has_index);

/// A named collection of tables (one "database").
class RelStore {
 public:
  explicit RelStore(std::string dir) : dir_(std::move(dir)) {}

  RelTable* CreateTable(const std::string& name,
                        std::vector<RelTable::ColumnDef> schema,
                        const std::string& pk_column);
  RelTable* Find(const std::string& name);
  uint64_t TotalDiskBytes() const;
  Status PersistAll();

 private:
  std::string dir_;
  std::map<std::string, std::unique_ptr<RelTable>> tables_;
};

}  // namespace baselines
}  // namespace asterix

#endif  // ASTERIX_BASELINES_RELSTORE_H_
