#include "baselines/relstore.h"

#include "adm/serde.h"
#include "common/env.h"

namespace asterix {
namespace baselines {

using adm::Datatype;
using adm::Value;

RelTable::RelTable(std::string dir, std::string name,
                   std::vector<ColumnDef> schema, std::string pk_column)
    : dir_(std::move(dir)),
      name_(std::move(name)),
      schema_(std::move(schema)),
      pk_column_(std::move(pk_column)) {
  env::CreateDirs(dir_);
  std::vector<adm::FieldType> fields;
  for (const auto& c : schema_) {
    fields.push_back({c.name, Datatype::Primitive(c.type), /*optional=*/true});
  }
  // Closed record type: rows serialize positionally, no names per row.
  row_type_ = Datatype::MakeRecord(name_ + "_row", std::move(fields),
                                   /*open=*/false);
}

Status RelTable::Insert(const Value& row, bool journal) {
  const Value& key = row.GetField(pk_column_);
  if (key.IsUnknown()) {
    return Status::InvalidArgument("row lacks pk column " + pk_column_);
  }
  if (primary_.count(key)) return Status::AlreadyExists("duplicate key");
  ASTERIX_RETURN_NOT_OK(row_type_->Validate(row));
  BytesWriter w;
  ASTERIX_RETURN_NOT_OK(adm::SerializeTyped(row, row_type_, &w));
  RowRef ref{heap_.size(), w.size()};
  heap_.insert(heap_.end(), w.data().begin(), w.data().end());
  primary_.emplace(key, ref);
  for (auto& [col, index] : secondary_) {
    const Value& v = row.GetField(col);
    if (!v.IsUnknown()) index.emplace(v, key);
  }
  if (journal) {
    ASTERIX_RETURN_NOT_OK(env::AppendFile(dir_ + "/" + name_ + ".wal",
                                          w.data().data(), w.size()));
  }
  return Status::OK();
}

Status RelTable::LoadBulk(const std::vector<Value>& rows) {
  for (const auto& r : rows) {
    ASTERIX_RETURN_NOT_OK(Insert(r, /*journal=*/false));
  }
  return Status::OK();
}

Status RelTable::CreateIndex(const std::string& column) {
  if (secondary_.count(column)) return Status::OK();
  auto& index = secondary_[column];
  return Scan([&](const Value& row) {
    const Value& v = row.GetField(column);
    if (!v.IsUnknown()) index.emplace(v, row.GetField(pk_column_));
    return Status::OK();
  });
}

bool RelTable::HasIndex(const std::string& column) const {
  return secondary_.count(column) > 0;
}

Result<Value> RelTable::LoadRow(const RowRef& ref) const {
  BytesReader r(heap_.data() + ref.offset, ref.length);
  Value v;
  Status st = adm::DeserializeTyped(&r, row_type_, &v);
  if (!st.ok()) return st;
  return v;
}

Status RelTable::FindByKey(const Value& key, bool* found, Value* row) const {
  *found = false;
  auto it = primary_.find(key);
  if (it == primary_.end()) return Status::OK();
  ASTERIX_ASSIGN_OR_RETURN(*row, LoadRow(it->second));
  *found = true;
  return Status::OK();
}

Status RelTable::Scan(const std::function<Status(const Value&)>& cb) const {
  BytesReader r(heap_.data(), heap_.size());
  while (!r.AtEnd()) {
    Value v;
    ASTERIX_RETURN_NOT_OK(adm::DeserializeTyped(&r, row_type_, &v));
    ASTERIX_RETURN_NOT_OK(cb(v));
  }
  return Status::OK();
}

Status RelTable::RangeQuery(const std::string& column, const Value& lo,
                            const Value& hi,
                            const std::function<Status(const Value&)>& cb) const {
  auto it = secondary_.find(column);
  if (it == secondary_.end()) return Status::NotFound("no index on " + column);
  for (auto e = it->second.lower_bound(lo);
       e != it->second.end() && e->first.Compare(hi) <= 0; ++e) {
    bool found;
    Value row;
    ASTERIX_RETURN_NOT_OK(FindByKey(e->second, &found, &row));
    if (found) ASTERIX_RETURN_NOT_OK(cb(row));
  }
  return Status::OK();
}

Status RelTable::IndexProbe(const std::string& column, const Value& key,
                            const std::function<Status(const Value&)>& cb) const {
  if (column == pk_column_) {
    bool found;
    Value row;
    ASTERIX_RETURN_NOT_OK(FindByKey(key, &found, &row));
    if (found) ASTERIX_RETURN_NOT_OK(cb(row));
    return Status::OK();
  }
  return RangeQuery(column, key, key, cb);
}

Status RelTable::Persist() {
  return env::WriteFileAtomic(dir_ + "/" + name_ + ".tbl", heap_.data(),
                              heap_.size());
}

uint64_t RelTable::DiskBytes() const {
  return env::FileSize(dir_ + "/" + name_ + ".tbl");
}

JoinMethod ChooseJoinMethod(size_t outer_cardinality, size_t inner_cardinality,
                            bool inner_has_index) {
  if (!inner_has_index) return JoinMethod::kHashJoin;
  // Index NL wins while probe count stays well under the inner scan cost.
  if (outer_cardinality * 5 < inner_cardinality) {
    return JoinMethod::kIndexNestedLoop;
  }
  return JoinMethod::kHashJoin;
}

RelTable* RelStore::CreateTable(const std::string& name,
                                std::vector<RelTable::ColumnDef> schema,
                                const std::string& pk_column) {
  auto table =
      std::make_unique<RelTable>(dir_, name, std::move(schema), pk_column);
  RelTable* raw = table.get();
  tables_[name] = std::move(table);
  return raw;
}

RelTable* RelStore::Find(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

uint64_t RelStore::TotalDiskBytes() const {
  uint64_t total = 0;
  for (const auto& [name, t] : tables_) {
    (void)name;
    total += t->DiskBytes();
  }
  return total;
}

Status RelStore::PersistAll() {
  for (auto& [name, t] : tables_) {
    (void)name;
    ASTERIX_RETURN_NOT_OK(t->Persist());
  }
  return Status::OK();
}

}  // namespace baselines
}  // namespace asterix
