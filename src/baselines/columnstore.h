#ifndef ASTERIX_BASELINES_COLUMNSTORE_H_
#define ASTERIX_BASELINES_COLUMNSTORE_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "adm/value.h"
#include "common/status.h"

namespace asterix {
namespace baselines {

/// A columnar, compressed, scan-only analytics engine modeled after the
/// Hive-on-ORC system the paper benchmarks (§5.3): flat (normalized)
/// schemas, per-stripe dictionary/delta compression (Table 2's smallest
/// footprint), per-stripe min/max statistics, NO indexes (every query
/// scans), and a fixed per-query job-startup latency standing in for
/// MapReduce job launch — the cost that dominates Hive's small-query rows
/// in Table 3.
class ColumnStore {
 public:
  struct ColumnDef {
    std::string name;
    adm::TypeTag type;
  };

  ColumnStore(std::string dir, std::string name, std::vector<ColumnDef> schema,
              int64_t job_startup_us = 0);

  /// Buffers one row; fields are read from the record by column name.
  Status Append(const adm::Value& record);
  /// Encodes buffered rows into stripes and persists them.
  Status Finalize();

  /// Optional stripe-skipping hint: rows outside [lo, hi] on `column` may
  /// be skipped wholesale via stripe statistics.
  struct ScanRange {
    std::string column;
    adm::Value lo, hi;
  };

  /// Full scan decoding only `columns`; the callback receives the selected
  /// values in the requested order. Pays the job-startup latency once.
  Status Scan(const std::vector<std::string>& columns,
              const std::optional<ScanRange>& range,
              const std::function<Status(const std::vector<adm::Value>&)>& cb)
      const;

  uint64_t DiskBytes() const;
  size_t NumRows() const { return num_rows_; }
  int64_t job_startup_us() const { return job_startup_us_; }

 private:
  struct EncodedColumn {
    std::vector<uint8_t> bytes;
    adm::Value min, max;
  };
  struct Stripe {
    size_t rows = 0;
    std::vector<EncodedColumn> columns;
  };

  static constexpr size_t kStripeRows = 8192;

  Status EncodeStripe();
  int ColumnIndex(const std::string& name) const;

  std::string dir_;
  std::string name_;
  std::vector<ColumnDef> schema_;
  int64_t job_startup_us_;

  // Row buffer awaiting stripe encoding.
  std::vector<std::vector<adm::Value>> buffer_;
  std::vector<Stripe> stripes_;
  size_t num_rows_ = 0;
  bool finalized_ = false;
};

}  // namespace baselines
}  // namespace asterix

#endif  // ASTERIX_BASELINES_COLUMNSTORE_H_
