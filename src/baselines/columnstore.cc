#include "baselines/columnstore.h"

#include <chrono>
#include <map>
#include <thread>

#include "common/bytes.h"
#include "common/compress.h"
#include "common/env.h"

namespace asterix {
namespace baselines {

using adm::TypeTag;
using adm::Value;

namespace {

bool IsIntEncoded(TypeTag t) {
  return (t >= TypeTag::kInt8 && t <= TypeTag::kInt64) || t == TypeTag::kDate ||
         t == TypeTag::kTime || t == TypeTag::kDatetime ||
         t == TypeTag::kBoolean;
}

Value MakeIntValue(TypeTag t, int64_t v) {
  switch (t) {
    case TypeTag::kBoolean: return Value::Boolean(v != 0);
    case TypeTag::kInt8: return Value::Int8(static_cast<int8_t>(v));
    case TypeTag::kInt16: return Value::Int16(static_cast<int16_t>(v));
    case TypeTag::kInt32: return Value::Int32(static_cast<int32_t>(v));
    case TypeTag::kDate: return Value::Date(static_cast<int32_t>(v));
    case TypeTag::kTime: return Value::Time(static_cast<int32_t>(v));
    case TypeTag::kDatetime: return Value::Datetime(v);
    default: return Value::Int64(v);
  }
}

}  // namespace

ColumnStore::ColumnStore(std::string dir, std::string name,
                         std::vector<ColumnDef> schema, int64_t job_startup_us)
    : dir_(std::move(dir)),
      name_(std::move(name)),
      schema_(std::move(schema)),
      job_startup_us_(job_startup_us) {
  env::CreateDirs(dir_);
}

int ColumnStore::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status ColumnStore::Append(const Value& record) {
  if (finalized_) return Status::Internal("column store already finalized");
  std::vector<Value> row;
  row.reserve(schema_.size());
  for (const auto& col : schema_) {
    row.push_back(record.GetField(col.name));
  }
  buffer_.push_back(std::move(row));
  ++num_rows_;
  if (buffer_.size() >= kStripeRows) return EncodeStripe();
  return Status::OK();
}

Status ColumnStore::EncodeStripe() {
  if (buffer_.empty()) return Status::OK();
  Stripe stripe;
  stripe.rows = buffer_.size();
  for (size_t c = 0; c < schema_.size(); ++c) {
    EncodedColumn col;
    BytesWriter w;
    TypeTag t = schema_[c].type;
    bool first = true;
    if (IsIntEncoded(t)) {
      // Delta + zig-zag varint: long sorted-ish runs become tiny.
      int64_t prev = 0;
      for (const auto& row : buffer_) {
        int64_t v = row[c].IsUnknown() ? 0 : row[c].AsInt();
        w.PutU8(row[c].IsUnknown() ? 0 : 1);
        w.PutVarintSigned(v - prev);
        prev = v;
        if (!row[c].IsUnknown()) {
          if (first || row[c].Compare(col.min) < 0) col.min = row[c];
          if (first || row[c].Compare(col.max) > 0) col.max = row[c];
          first = false;
        }
      }
    } else if (t == TypeTag::kString) {
      // Per-stripe dictionary encoding.
      std::map<std::string, uint64_t> dict;
      std::vector<const std::string*> order;
      for (const auto& row : buffer_) {
        if (row[c].IsString()) {
          auto [it, inserted] = dict.emplace(row[c].AsString(), dict.size());
          if (inserted) order.push_back(&it->first);
        }
      }
      // Re-number in map order for deterministic output.
      uint64_t id = 0;
      for (auto& [s, slot] : dict) {
        (void)s;
        slot = id++;
      }
      w.PutVarint(dict.size());
      for (const auto& [s, slot] : dict) {
        (void)slot;
        w.PutString(s);
      }
      for (const auto& row : buffer_) {
        if (!row[c].IsString()) {
          w.PutU8(0);
          continue;
        }
        w.PutU8(1);
        w.PutVarint(dict[row[c].AsString()]);
        if (first || row[c].Compare(col.min) < 0) col.min = row[c];
        if (first || row[c].Compare(col.max) > 0) col.max = row[c];
        first = false;
      }
    } else {
      // Doubles & anything else: raw 8-byte slots.
      for (const auto& row : buffer_) {
        double d = 0;
        bool known = row[c].GetNumeric(&d);
        w.PutU8(known ? 1 : 0);
        w.PutF64(d);
        if (known) {
          if (first || row[c].Compare(col.min) < 0) col.min = row[c];
          if (first || row[c].Compare(col.max) > 0) col.max = row[c];
          first = false;
        }
      }
    }
    // Stripes are stored compressed (ORC's zlib stand-in); scans pay the
    // decompression, persisted files get the size win.
    col.bytes = LzCompress(w.data().data(), w.size());
    stripe.columns.push_back(std::move(col));
  }
  stripes_.push_back(std::move(stripe));
  buffer_.clear();
  return Status::OK();
}

Status ColumnStore::Finalize() {
  ASTERIX_RETURN_NOT_OK(EncodeStripe());
  finalized_ = true;
  BytesWriter w;
  w.PutVarint(stripes_.size());
  for (const auto& s : stripes_) {
    w.PutVarint(s.rows);
    for (const auto& c : s.columns) {
      w.PutVarint(c.bytes.size());
      w.PutBytes(c.bytes.data(), c.bytes.size());
    }
  }
  return env::WriteFileAtomic(dir_ + "/" + name_ + ".orc", w.data().data(),
                              w.size());
}

uint64_t ColumnStore::DiskBytes() const {
  return env::FileSize(dir_ + "/" + name_ + ".orc");
}

Status ColumnStore::Scan(
    const std::vector<std::string>& columns,
    const std::optional<ScanRange>& range,
    const std::function<Status(const std::vector<Value>&)>& cb) const {
  // MapReduce job start-up: paid once per query, regardless of data size.
  if (job_startup_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(job_startup_us_));
  }
  std::vector<int> col_idx;
  for (const auto& c : columns) {
    int idx = ColumnIndex(c);
    if (idx < 0) return Status::NotFound("no column " + c);
    col_idx.push_back(idx);
  }
  int range_idx = -1;
  if (range.has_value()) {
    range_idx = ColumnIndex(range->column);
    if (range_idx < 0) return Status::NotFound("no column " + range->column);
  }

  for (const auto& stripe : stripes_) {
    // Stripe skipping via min/max statistics.
    if (range_idx >= 0) {
      const auto& stats = stripe.columns[static_cast<size_t>(range_idx)];
      if (!stats.min.IsMissing() &&
          (stats.max.Compare(range->lo) < 0 || stats.min.Compare(range->hi) > 0)) {
        continue;
      }
    }
    // Decode only the requested columns.
    std::vector<std::vector<Value>> decoded(col_idx.size());
    for (size_t ci = 0; ci < col_idx.size(); ++ci) {
      int c = col_idx[ci];
      TypeTag t = schema_[static_cast<size_t>(c)].type;
      std::vector<uint8_t> bytes;
      ASTERIX_RETURN_NOT_OK(
          LzDecompress(stripe.columns[static_cast<size_t>(c)].bytes.data(),
                       stripe.columns[static_cast<size_t>(c)].bytes.size(),
                       &bytes));
      BytesReader r(bytes.data(), bytes.size());
      auto& out = decoded[ci];
      out.reserve(stripe.rows);
      if (IsIntEncoded(t)) {
        int64_t prev = 0;
        for (size_t i = 0; i < stripe.rows; ++i) {
          uint8_t known;
          int64_t delta;
          ASTERIX_RETURN_NOT_OK(r.GetU8(&known));
          ASTERIX_RETURN_NOT_OK(r.GetVarintSigned(&delta));
          prev += delta;
          out.push_back(known ? MakeIntValue(t, prev) : Value::Null());
        }
      } else if (t == TypeTag::kString) {
        uint64_t dict_size;
        ASTERIX_RETURN_NOT_OK(r.GetVarint(&dict_size));
        std::vector<Value> dict;
        dict.reserve(dict_size);
        for (uint64_t i = 0; i < dict_size; ++i) {
          std::string s;
          ASTERIX_RETURN_NOT_OK(r.GetString(&s));
          dict.push_back(Value::String(std::move(s)));
        }
        for (size_t i = 0; i < stripe.rows; ++i) {
          uint8_t known;
          ASTERIX_RETURN_NOT_OK(r.GetU8(&known));
          if (!known) {
            out.push_back(Value::Null());
            continue;
          }
          uint64_t id;
          ASTERIX_RETURN_NOT_OK(r.GetVarint(&id));
          out.push_back(dict[id]);
        }
      } else {
        for (size_t i = 0; i < stripe.rows; ++i) {
          uint8_t known;
          double d;
          ASTERIX_RETURN_NOT_OK(r.GetU8(&known));
          ASTERIX_RETURN_NOT_OK(r.GetF64(&d));
          out.push_back(known ? Value::Double(d) : Value::Null());
        }
      }
    }
    std::vector<Value> row(col_idx.size());
    for (size_t i = 0; i < stripe.rows; ++i) {
      for (size_t ci = 0; ci < col_idx.size(); ++ci) row[ci] = decoded[ci][i];
      ASTERIX_RETURN_NOT_OK(cb(row));
    }
  }
  return Status::OK();
}

}  // namespace baselines
}  // namespace asterix
