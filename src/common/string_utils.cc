#include "common/string_utils.h"

#include <cctype>
#include <regex>

namespace asterix {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimString(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative wildcard matching with backtracking over the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool RegexMatch(std::string_view text, std::string_view pattern) {
  try {
    std::regex re(pattern.begin(), pattern.end());
    return std::regex_search(text.begin(), text.end(), re);
  } catch (const std::regex_error&) {
    return false;
  }
}

}  // namespace asterix
