#ifndef ASTERIX_COMMON_STATUS_H_
#define ASTERIX_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace asterix {

/// Error category for a failed operation. Mirrors the failure classes that
/// surface across the system: user errors (parse/type), runtime data errors,
/// storage/I/O errors, and transaction errors (lock timeouts, aborts).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kTypeError,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kTxnConflict,
  kNotImplemented,
  kInternal,
  /// The server declined the request because shared capacity is exhausted
  /// (admission queue full or admission-wait timeout). Retryable.
  kOverloaded,
  /// The client exceeded its own request-rate allowance (token bucket ran
  /// dry). Distinct from kOverloaded: the system has capacity, this caller
  /// does not.
  kRateLimited,
};

/// Returns a short human-readable name for a status code ("ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// Arrow/RocksDB-style status object. Functions that can fail return a
/// Status (or Result<T>) instead of throwing; `ok()` is the success test.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status TxnConflict(std::string msg) {
    return Status(StatusCode::kTxnConflict, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status RateLimited(std::string msg) {
    return Status(StatusCode::kRateLimited, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ParseError: unexpected token 'form'" — or "OK".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a failure Status. The value accessors must
/// only be called after checking `ok()`.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : var_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(var_); }
  const Status& status() const { return std::get<Status>(var_); }
  T& value() { return std::get<T>(var_); }
  const T& value() const { return std::get<T>(var_); }
  T take() { return std::move(std::get<T>(var_)); }

 private:
  std::variant<T, Status> var_;
};

/// Propagates a failing Status out of the enclosing function.
#define ASTERIX_RETURN_NOT_OK(expr)              \
  do {                                           \
    ::asterix::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result<T> expression, propagating failure, else binds `lhs`.
#define ASTERIX_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                  \
  if (!var.ok()) return var.status();                  \
  lhs = var.take();

#define ASTERIX_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define ASTERIX_ASSIGN_OR_RETURN_NAME(x, y) ASTERIX_ASSIGN_OR_RETURN_CONCAT(x, y)
#define ASTERIX_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  ASTERIX_ASSIGN_OR_RETURN_IMPL(                                          \
      ASTERIX_ASSIGN_OR_RETURN_NAME(_res_, __LINE__), lhs, rexpr)

}  // namespace asterix

#endif  // ASTERIX_COMMON_STATUS_H_
