#include "common/version_clock.h"

namespace asterix {
namespace vclock {

VersionClock::Cell* VersionClock::GetCell(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(name);
  if (it == cells_.end()) {
    it = cells_.emplace(name, std::make_unique<Cell>(0)).first;
  }
  return it->second.get();
}

uint64_t VersionClock::Get(const std::string& name) {
  return GetCell(name)->load(std::memory_order_acquire);
}

void VersionClock::Bump(const std::string& name) {
  GetCell(name)->fetch_add(1, std::memory_order_release);
}

VersionClock& VersionClock::Default() {
  static VersionClock* clock = new VersionClock();
  return *clock;
}

}  // namespace vclock
}  // namespace asterix
