#ifndef ASTERIX_COMMON_LEDGER_H_
#define ASTERIX_COMMON_LEDGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace asterix {
namespace ledger {

/// How a served request was answered (the serving layer records this per
/// client; executed queries carry their full cost breakdown too).
enum class CacheOutcome : int {
  kExecuted = 0,  // ran through the engine
  kHit = 1,       // answered from the result cache
  kCoalesced = 2, // shared another request's in-flight execution
};
const char* CacheOutcomeName(CacheOutcome outcome);

/// Accumulated resource usage of one query (one Execute() call), attributed
/// through the process-wide query-id plumbing: operator-task thread CPU
/// time, storage bytes read, bytes written (LSM flush/merge output + spill
/// runs), spill bytes, and admission-queue wait.
struct QueryUsage {
  uint64_t query_id = 0;
  std::string client;
  std::string statement;
  uint64_t cpu_us = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t spill_bytes = 0;
  uint64_t admission_wait_us = 0;
  uint64_t elapsed_us = 0;
  bool ok = true;
  bool finished = false;

  /// The "by bytes" ranking key: all storage traffic the query caused.
  uint64_t total_bytes() const {
    return bytes_read + bytes_written + spill_bytes;
  }
};

/// Cumulative per-client resource table ("which client is eating the
/// cluster"), folded from finished queries plus cache/coalesce outcomes.
struct ClientUsage {
  std::string client;
  uint64_t queries = 0;  // executed scripts attributed to this client
  uint64_t failures = 0;
  uint64_t cache_hits = 0;
  uint64_t coalesced = 0;
  uint64_t cpu_us = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t spill_bytes = 0;
  uint64_t admission_wait_us = 0;
};

/// Process-wide per-query resource ledger. The api layer opens an entry per
/// Execute() (Begin/Finish); the executor and storage layers accumulate
/// into it keyed by the query id they already carry (journal::
/// CurrentQueryId()), so attribution needs no new parameter plumbing. Adds
/// happen per job / per flush — never per tuple — so one mutex suffices.
/// Finished entries are retained in a bounded ring for "top queries by
/// cpu/bytes"; per-client totals are cumulative until Reset().
class ResourceLedger {
 public:
  explicit ResourceLedger(size_t retain_finished = 256);

  /// The process-wide ledger every layer accumulates into.
  static ResourceLedger& Default();

  void Begin(uint64_t query_id, const std::string& client,
             const std::string& statement);
  void AddCpu(uint64_t query_id, uint64_t us);
  void AddBytesRead(uint64_t query_id, uint64_t n);
  void AddBytesWritten(uint64_t query_id, uint64_t n);
  void AddSpill(uint64_t query_id, uint64_t n);
  void AddAdmissionWait(uint64_t query_id, uint64_t us);
  void Finish(uint64_t query_id, bool ok, uint64_t elapsed_us);

  /// Accounts a cache-served or coalesced request (which never executes,
  /// so it has no Begin/Finish pair) to the client table.
  void RecordServed(const std::string& client, CacheOutcome outcome);

  /// Top-N queries (live and retained-finished) by CPU or by total bytes.
  std::vector<QueryUsage> TopByCpu(size_t n) const;
  std::vector<QueryUsage> TopByBytes(size_t n) const;
  std::vector<ClientUsage> Clients() const;

  /// `{ "by_cpu": [ {...}, ... ], "by_bytes": [ {...}, ... ] }`.
  std::string TopJson(size_t n) const;
  /// JSON array of the cumulative per-client table.
  std::string ClientsJson() const;

  /// Drops all state (bench epochs, tests).
  void Reset();

 private:
  QueryUsage* FindLocked(uint64_t query_id);
  std::vector<QueryUsage> SnapshotLocked() const;

  size_t retain_;
  mutable std::mutex mu_;
  std::map<uint64_t, QueryUsage> live_;
  std::deque<QueryUsage> finished_;  // bounded by retain_
  std::map<std::string, ClientUsage> clients_;
};

/// Client identity attached to work on this thread ("direct" when no
/// serving-layer context applies). Serve() publishes its ServeOptions
/// client id here so Execute()'s ledger entry is attributed correctly.
const std::string& CurrentClient();

/// RAII: sets this thread's client id, restoring the previous on exit.
class ScopedClient {
 public:
  explicit ScopedClient(std::string client);
  ~ScopedClient();
  ScopedClient(const ScopedClient&) = delete;
  ScopedClient& operator=(const ScopedClient&) = delete;

 private:
  std::string prev_;
};

}  // namespace ledger
}  // namespace asterix

#endif  // ASTERIX_COMMON_LEDGER_H_
