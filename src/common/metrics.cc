#include "common/metrics.h"

#include <algorithm>

namespace asterix {
namespace metrics {

Histogram::Histogram(std::vector<uint64_t> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = LatencyBoundsUs();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(uint64_t value) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  size_t idx = static_cast<size_t>(it - bounds_.begin());  // overflow at end
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

double Histogram::Percentile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double target = q * static_cast<double>(n);
  uint64_t below = 0;
  for (size_t i = 0; i < num_buckets(); ++i) {
    uint64_t c = bucket_count(i);
    if (c == 0) continue;
    if (static_cast<double>(below + c) >= target) {
      double lo = (i == 0) ? 0.0 : static_cast<double>(bounds_[i - 1]);
      double hi = (i < bounds_.size()) ? static_cast<double>(bounds_[i])
                                       : static_cast<double>(max());
      if (hi < lo) hi = lo;  // overflow bucket with a stale max snapshot
      double frac =
          (target - static_cast<double>(below)) / static_cast<double>(c);
      return lo + (hi - lo) * frac;
    }
    below += c;
  }
  return static_cast<double>(max());
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::LatencyBoundsUs() {
  std::vector<uint64_t> bounds;
  for (uint64_t b = 1; b <= (1ull << 23); b <<= 1) bounds.push_back(b);
  return bounds;  // 1us, 2us, ..., ~8.4s
}

std::vector<uint64_t> Histogram::CountBounds() {
  std::vector<uint64_t> bounds;
  for (uint64_t b = 1; b <= (1ull << 16); b <<= 1) bounds.push_back(b);
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{ \"counters\": { ";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(name, &out);
    out += ": " + std::to_string(c->value());
  }
  out += " }, \"gauges\": { ";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(name, &out);
    out += ": " + std::to_string(g->value());
  }
  out += " }, \"histograms\": { ";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonString(name, &out);
    out += ": { \"count\": " + std::to_string(h->count()) +
           ", \"sum\": " + std::to_string(h->sum()) +
           ", \"max\": " + std::to_string(h->max()) + ", \"bounds\": [ ";
    const auto& bounds = h->bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(bounds[i]);
    }
    out += " ], \"buckets\": [ ";
    for (size_t i = 0; i < h->num_buckets(); ++i) {
      if (i) out += ", ";
      out += std::to_string(h->bucket_count(i));
    }
    out += " ] }";
  }
  out += " } }";
  return out;
}

std::map<std::string, int64_t> MetricsRegistry::SnapshotScalars() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, c] : counters_) {
    out[name] = static_cast<int64_t>(c->value());
  }
  for (const auto& [name, g] : gauges_) {
    out[name] = g->value();
  }
  for (const auto& [name, h] : histograms_) {
    out[name + ".count"] = static_cast<int64_t>(h->count());
    out[name + ".sum"] = static_cast<int64_t>(h->sum());
  }
  return out;
}

namespace {

/// "storage.lsm.flush_us" -> "asterix_storage_lsm_flush_us".
std::string PromName(const std::string& name) {
  std::string out = "asterix_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    std::string p = PromName(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    std::string p = PromName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    std::string p = PromName(name);
    out += "# TYPE " + p + " histogram\n";
    // Prometheus buckets are cumulative: le="bound" counts everything at or
    // below the bound; the implicit overflow bucket becomes le="+Inf".
    uint64_t cumulative = 0;
    const auto& bounds = h->bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += h->bucket_count(i);
      out += p + "_bucket{le=\"" + std::to_string(bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h->count()) + "\n";
    out += p + "_sum " + std::to_string(h->sum()) + "\n";
    out += p + "_count " + std::to_string(h->count()) + "\n";
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    (void)name;
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    (void)name;
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    (void)name;
    h->Reset();
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace metrics
}  // namespace asterix
