#ifndef ASTERIX_COMMON_JOURNAL_H_
#define ASTERIX_COMMON_JOURNAL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace asterix {
namespace journal {

/// Structured runtime events posted by subsystems into the in-memory event
/// journal. Names are hierarchical ("lsm.flush.start") so the JSON snapshot
/// greps well.
enum class EventKind : uint8_t {
  kQueryStart = 0,
  kQueryFinish,
  kJobAdmit,
  kJobStart,
  kJobFinish,
  kLsmFlushStart,
  kLsmFlushEnd,
  kLsmMergeStart,
  kLsmMergeEnd,
  kSpill,
  kSpillReload,
  kBackpressure,
  kLockWait,
  kAdmissionGrant,
  kAdmissionReject,
  kCacheHit,
  kCacheStore,
  kCacheInvalidate,
  kCoalesce,
  kRateLimit,
  kWriteStall,
  kHealth,
  kCompactionSchedule,
  kCompactionStart,
  kCompactionFinish,
};

const char* EventKindName(EventKind kind);

/// One journal entry as observed by a reader. `a` and `b` are kind-specific
/// payloads (documented per kind in DESIGN.md — e.g. bytes in/out for LSM
/// flush/merge end, wait_us/resource for lock waits). `query_id` is the
/// originating query's id, or 0 when no query context applies (background
/// work, boot-time activity).
struct Event {
  uint64_t seq = 0;       // global post order, 1-based
  uint64_t ts_us = 0;     // microseconds since journal creation
  uint64_t query_id = 0;  // originating query, 0 if none
  EventKind kind = EventKind::kQueryStart;
  uint64_t a = 0;
  uint64_t b = 0;
  char label[24] = {0};  // NUL-terminated, truncated subsystem label
};

/// Lock-free MPMC ring buffer of the last `capacity` events. Post() costs one
/// relaxed fetch_add to reserve a slot plus relaxed stores of the payload —
/// no mutex, no allocation — so per-tuple and per-page paths can afford it.
/// Writers may lap readers: each slot is a seqlock (publish sequence stored
/// last with release order), so Snapshot() simply drops slots it catches
/// mid-overwrite instead of blocking anyone.
class Journal {
 public:
  /// Capacity is rounded up to a power of two, minimum 64.
  explicit Journal(size_t capacity);

  /// Records an event tagged with CurrentQueryId(). Safe from any thread.
  void Post(EventKind kind, uint64_t a = 0, uint64_t b = 0,
            const char* label = nullptr);

  /// Copies out every still-valid event with seq > min_seq, in seq order.
  /// Events overwritten or mid-write during the scan are skipped.
  std::vector<Event> Snapshot(uint64_t min_seq = 0) const;

  /// JSON array of Snapshot(min_seq) — the introspection wire format.
  std::string SnapshotJson(uint64_t min_seq = 0) const;

  /// Total events ever posted (== seq of the most recent event).
  uint64_t posted() const { return head_.load(std::memory_order_relaxed); }
  size_t capacity() const { return mask_ + 1; }

  /// Events lapped by a writer before ANY Snapshot() had a chance to read
  /// them — the journal's blind spot. Overwrites of already-snapshot-visible
  /// events are normal ring behavior and not counted; a growing value here
  /// means the ring is too small for the event rate vs. the scrape cadence.
  uint64_t overwrite_drops() const {
    return overwrite_drops_.load(std::memory_order_relaxed);
  }

  /// Process-wide journal all subsystems post into. Capacity comes from
  /// ASTERIX_JOURNAL_EVENTS (default 65536).
  static Journal& Default();

 private:
  // Each payload field is a relaxed atomic so concurrent overwrite vs.
  // snapshot copy is a benign race in the memory model, not a data race;
  // the seqlock decides whether the copied bytes are used.
  struct Slot {
    std::atomic<uint64_t> seq{0};  // 0 = never written, ~0 = write in flight
    std::atomic<uint64_t> ts_us{0};
    std::atomic<uint64_t> query_id{0};
    std::atomic<uint64_t> kind{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint64_t> label_words[3] = {{0}, {0}, {0}};
  };
  static constexpr uint64_t kWriting = ~0ull;

  uint64_t NowUs() const;

  size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};
  // Highest head_ observed at the start of any Snapshot(): events at or
  // below this seq were reachable by at least one reader. Overwriting a
  // published event above the floor counts as a drop. Mutable because
  // Snapshot() is logically const but advances the floor.
  mutable std::atomic<uint64_t> snapshot_floor_{0};
  std::atomic<uint64_t> overwrite_drops_{0};
  std::chrono::steady_clock::time_point epoch_;
};

/// Monotonically-assigned query ids, process-wide, starting at 1.
uint64_t NextQueryId();

/// The query id attached to work running on this thread (0 when none).
/// Propagated onto executor-pool threads by the task wrappers in
/// Cluster::ExecuteJob, so storage/txn/channel code can post query-tagged
/// events without parameter plumbing.
uint64_t CurrentQueryId();

/// RAII: sets this thread's current query id, restoring the previous value
/// on destruction (queries can nest through the interpreter fallback).
class ScopedQueryId {
 public:
  explicit ScopedQueryId(uint64_t id);
  ~ScopedQueryId();
  ScopedQueryId(const ScopedQueryId&) = delete;
  ScopedQueryId& operator=(const ScopedQueryId&) = delete;

 private:
  uint64_t prev_;
};

}  // namespace journal
}  // namespace asterix

#endif  // ASTERIX_COMMON_JOURNAL_H_
