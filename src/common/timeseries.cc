#include "common/timeseries.h"

#include <algorithm>
#include <cstdio>

namespace asterix {
namespace monitor {

namespace {

void AppendJsonKey(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendRate(double v, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

}  // namespace

TimeSeriesRing::TimeSeriesRing(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 2)) {}

void TimeSeriesRing::Push(Sample sample) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(std::move(sample));
  while (samples_.size() > capacity_) samples_.pop_front();
}

size_t TimeSeriesRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

bool TimeSeriesRing::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.empty();
}

Sample TimeSeriesRing::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.empty() ? Sample{} : samples_.back();
}

int64_t TimeSeriesRing::LatestValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0;
  auto it = samples_.back().values.find(name);
  return it == samples_.back().values.end() ? 0 : it->second;
}

size_t TimeSeriesRing::WindowStartLocked(uint64_t window_us) const {
  // First sample inside the window; step back one so it has a baseline
  // (rates need a step, not a point).
  uint64_t latest_ts = samples_.back().ts_us;
  uint64_t cutoff = latest_ts >= window_us ? latest_ts - window_us : 0;
  size_t idx = samples_.size() - 1;
  while (idx > 0 && samples_[idx - 1].ts_us >= cutoff) --idx;
  if (idx > 0) --idx;
  return idx;
}

int64_t TimeSeriesRing::WindowedDeltaLocked(const std::string& name,
                                            uint64_t window_us,
                                            uint64_t* span_us) const {
  if (samples_.size() < 2) {
    if (span_us != nullptr) *span_us = 0;
    return 0;
  }
  size_t start = WindowStartLocked(window_us);
  if (span_us != nullptr) {
    *span_us = samples_.back().ts_us - samples_[start].ts_us;
  }
  int64_t total = 0;
  bool have_prev = false;
  int64_t prev = 0;
  for (size_t i = start; i < samples_.size(); ++i) {
    auto it = samples_[i].values.find(name);
    if (it == samples_[i].values.end()) continue;
    int64_t cur = it->second;
    if (have_prev) {
      // A counter that went backwards was Reset() between the two samples:
      // everything it now holds was counted since the reset, so the step
      // contributes the current value — never the bogus wrapped delta.
      total += cur >= prev ? cur - prev : cur;
    } else if (i != start) {
      // Series born mid-window: its first value is its delta.
      total += cur;
    }
    prev = cur;
    have_prev = true;
  }
  return total;
}

int64_t TimeSeriesRing::WindowedDelta(const std::string& name,
                                      uint64_t window_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0;
  return WindowedDeltaLocked(name, window_us, nullptr);
}

double TimeSeriesRing::WindowedRate(const std::string& name,
                                    uint64_t window_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.empty()) return 0.0;
  uint64_t span = 0;
  int64_t delta = WindowedDeltaLocked(name, window_us, &span);
  if (span == 0) return 0.0;
  return static_cast<double>(delta) * 1e6 / static_cast<double>(span);
}

uint64_t TimeSeriesRing::CoveredWindowUs(uint64_t window_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (samples_.size() < 2) return 0;
  size_t start = WindowStartLocked(window_us);
  return samples_.back().ts_us - samples_[start].ts_us;
}

std::string TimeSeriesRing::HistoryJson(size_t max_samples) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t start = 0;
  if (max_samples > 0 && samples_.size() > max_samples) {
    start = samples_.size() - max_samples;
  }
  std::string out =
      "{ \"samples\": " + std::to_string(samples_.size() - start) +
      ", \"data\": [ ";
  for (size_t i = start; i < samples_.size(); ++i) {
    if (i != start) out += ", ";
    out += "{ \"ts_us\": " + std::to_string(samples_[i].ts_us) +
           ", \"values\": { ";
    bool first = true;
    for (const auto& [name, value] : samples_[i].values) {
      if (!first) out += ", ";
      first = false;
      AppendJsonKey(name, &out);
      out += ": " + std::to_string(value);
    }
    out += " } }";
  }
  out += " ] }";
  return out;
}

std::string TimeSeriesRing::RatesJson(uint64_t window_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{ \"window_us\": ";
  if (samples_.size() < 2) {
    out += "0, \"per_sec\": { } }";
    return out;
  }
  size_t start = WindowStartLocked(window_us);
  uint64_t span = samples_.back().ts_us - samples_[start].ts_us;
  out += std::to_string(span) + ", \"per_sec\": { ";
  bool first = true;
  for (const auto& [name, value] : samples_.back().values) {
    (void)value;
    uint64_t s = 0;
    int64_t delta = WindowedDeltaLocked(name, window_us, &s);
    double rate = s == 0 ? 0.0
                         : static_cast<double>(delta) * 1e6 /
                               static_cast<double>(s);
    if (!first) out += ", ";
    first = false;
    AppendJsonKey(name, &out);
    out += ": ";
    AppendRate(rate, &out);
  }
  out += " } }";
  return out;
}

// ---------------------------------------------------------------------------
// MetricsSampler
// ---------------------------------------------------------------------------

MetricsSampler::MetricsSampler(metrics::MetricsRegistry* registry,
                               Options options)
    : registry_(registry),
      options_(options),
      ring_(options.ring_capacity),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.interval_ms == 0) options_.interval_ms = 100;
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::AddProbe(std::function<void()> probe) {
  probes_.push_back(std::move(probe));
}

void MetricsSampler::SetObserver(
    std::function<void(const TimeSeriesRing&)> observer) {
  observer_ = std::move(observer);
}

void MetricsSampler::SampleNow() {
  for (const auto& probe : probes_) probe();
  Sample s;
  s.ts_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  s.values = registry_->SnapshotScalars();
  ring_.Push(std::move(s));
  samples_.fetch_add(1, std::memory_order_relaxed);
  if (observer_) observer_(ring_);
}

void MetricsSampler::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void MetricsSampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    SampleNow();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_; });
  }
}

}  // namespace monitor
}  // namespace asterix
