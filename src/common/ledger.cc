#include "common/ledger.h"

#include <algorithm>

namespace asterix {
namespace ledger {

namespace {

thread_local std::string tls_client;  // empty means "direct"

const std::string kDirect = "direct";

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    if (c == '\n') {
      *out += "\\n";
      continue;
    }
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendQueryJson(const QueryUsage& q, std::string* out) {
  *out += "{ \"query_id\": " + std::to_string(q.query_id) + ", \"client\": ";
  AppendJsonString(q.client, out);
  *out += ", \"statement\": ";
  AppendJsonString(q.statement, out);
  *out += ", \"cpu_us\": " + std::to_string(q.cpu_us) +
          ", \"bytes_read\": " + std::to_string(q.bytes_read) +
          ", \"bytes_written\": " + std::to_string(q.bytes_written) +
          ", \"spill_bytes\": " + std::to_string(q.spill_bytes) +
          ", \"total_bytes\": " + std::to_string(q.total_bytes()) +
          ", \"admission_wait_us\": " + std::to_string(q.admission_wait_us) +
          ", \"elapsed_us\": " + std::to_string(q.elapsed_us) +
          ", \"ok\": " + (q.ok ? "true" : "false") +
          ", \"finished\": " + (q.finished ? "true" : "false") + " }";
}

}  // namespace

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kExecuted:
      return "executed";
    case CacheOutcome::kHit:
      return "cache_hit";
    case CacheOutcome::kCoalesced:
      return "coalesced";
  }
  return "unknown";
}

ResourceLedger::ResourceLedger(size_t retain_finished)
    : retain_(std::max<size_t>(retain_finished, 1)) {}

ResourceLedger& ResourceLedger::Default() {
  static ResourceLedger* ledger = new ResourceLedger();
  return *ledger;
}

void ResourceLedger::Begin(uint64_t query_id, const std::string& client,
                           const std::string& statement) {
  if (query_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  QueryUsage& u = live_[query_id];
  u.query_id = query_id;
  u.client = client.empty() ? kDirect : client;
  u.statement = statement;
}

QueryUsage* ResourceLedger::FindLocked(uint64_t query_id) {
  if (query_id == 0) return nullptr;
  auto it = live_.find(query_id);
  return it == live_.end() ? nullptr : &it->second;
}

void ResourceLedger::AddCpu(uint64_t query_id, uint64_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (QueryUsage* u = FindLocked(query_id)) u->cpu_us += us;
}

void ResourceLedger::AddBytesRead(uint64_t query_id, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (QueryUsage* u = FindLocked(query_id)) u->bytes_read += n;
}

void ResourceLedger::AddBytesWritten(uint64_t query_id, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (QueryUsage* u = FindLocked(query_id)) u->bytes_written += n;
}

void ResourceLedger::AddSpill(uint64_t query_id, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (QueryUsage* u = FindLocked(query_id)) u->spill_bytes += n;
}

void ResourceLedger::AddAdmissionWait(uint64_t query_id, uint64_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (QueryUsage* u = FindLocked(query_id)) u->admission_wait_us += us;
}

void ResourceLedger::Finish(uint64_t query_id, bool ok, uint64_t elapsed_us) {
  if (query_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(query_id);
  if (it == live_.end()) return;
  QueryUsage u = std::move(it->second);
  live_.erase(it);
  u.ok = ok;
  u.finished = true;
  u.elapsed_us = elapsed_us;

  ClientUsage& c = clients_[u.client];
  c.client = u.client;
  c.queries += 1;
  if (!ok) c.failures += 1;
  c.cpu_us += u.cpu_us;
  c.bytes_read += u.bytes_read;
  c.bytes_written += u.bytes_written;
  c.spill_bytes += u.spill_bytes;
  c.admission_wait_us += u.admission_wait_us;

  finished_.push_back(std::move(u));
  while (finished_.size() > retain_) finished_.pop_front();
}

void ResourceLedger::RecordServed(const std::string& client,
                                  CacheOutcome outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = client.empty() ? kDirect : client;
  ClientUsage& c = clients_[name];
  c.client = name;
  if (outcome == CacheOutcome::kHit) c.cache_hits += 1;
  if (outcome == CacheOutcome::kCoalesced) c.coalesced += 1;
}

std::vector<QueryUsage> ResourceLedger::SnapshotLocked() const {
  std::vector<QueryUsage> all;
  all.reserve(finished_.size() + live_.size());
  for (const auto& q : finished_) all.push_back(q);
  for (const auto& [id, q] : live_) {
    (void)id;
    all.push_back(q);
  }
  return all;
}

std::vector<QueryUsage> ResourceLedger::TopByCpu(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryUsage> all = SnapshotLocked();
  std::stable_sort(all.begin(), all.end(),
                   [](const QueryUsage& a, const QueryUsage& b) {
                     return a.cpu_us > b.cpu_us;
                   });
  if (all.size() > n) all.resize(n);
  return all;
}

std::vector<QueryUsage> ResourceLedger::TopByBytes(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryUsage> all = SnapshotLocked();
  std::stable_sort(all.begin(), all.end(),
                   [](const QueryUsage& a, const QueryUsage& b) {
                     return a.total_bytes() > b.total_bytes();
                   });
  if (all.size() > n) all.resize(n);
  return all;
}

std::vector<ClientUsage> ResourceLedger::Clients() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ClientUsage> out;
  out.reserve(clients_.size());
  for (const auto& [name, c] : clients_) {
    (void)name;
    out.push_back(c);
  }
  return out;
}

std::string ResourceLedger::TopJson(size_t n) const {
  std::vector<QueryUsage> by_cpu = TopByCpu(n);
  std::vector<QueryUsage> by_bytes = TopByBytes(n);
  std::string out = "{ \"by_cpu\": [ ";
  for (size_t i = 0; i < by_cpu.size(); ++i) {
    if (i) out += ", ";
    AppendQueryJson(by_cpu[i], &out);
  }
  out += " ], \"by_bytes\": [ ";
  for (size_t i = 0; i < by_bytes.size(); ++i) {
    if (i) out += ", ";
    AppendQueryJson(by_bytes[i], &out);
  }
  out += " ] }";
  return out;
}

std::string ResourceLedger::ClientsJson() const {
  std::vector<ClientUsage> clients = Clients();
  std::string out = "[ ";
  for (size_t i = 0; i < clients.size(); ++i) {
    const ClientUsage& c = clients[i];
    if (i) out += ", ";
    out += "{ \"client\": ";
    AppendJsonString(c.client, &out);
    out += ", \"queries\": " + std::to_string(c.queries) +
           ", \"failures\": " + std::to_string(c.failures) +
           ", \"cache_hits\": " + std::to_string(c.cache_hits) +
           ", \"coalesced\": " + std::to_string(c.coalesced) +
           ", \"cpu_us\": " + std::to_string(c.cpu_us) +
           ", \"bytes_read\": " + std::to_string(c.bytes_read) +
           ", \"bytes_written\": " + std::to_string(c.bytes_written) +
           ", \"spill_bytes\": " + std::to_string(c.spill_bytes) +
           ", \"admission_wait_us\": " + std::to_string(c.admission_wait_us) +
           " }";
  }
  out += " ]";
  return out;
}

void ResourceLedger::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  live_.clear();
  finished_.clear();
  clients_.clear();
}

const std::string& CurrentClient() {
  return tls_client.empty() ? kDirect : tls_client;
}

ScopedClient::ScopedClient(std::string client) {
  prev_ = tls_client;
  tls_client = std::move(client);
}

ScopedClient::~ScopedClient() { tls_client = std::move(prev_); }

}  // namespace ledger
}  // namespace asterix
