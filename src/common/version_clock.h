#ifndef ASTERIX_COMMON_VERSION_CLOCK_H_
#define ASTERIX_COMMON_VERSION_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace asterix {
namespace vclock {

/// Process-wide table of named monotonic version counters. Every dataset
/// write path bumps its dataset's cell after the write commits; the serving
/// layer's result cache records the versions of every dataset a query read
/// and treats a cached entry as valid only while all of them still match
/// (an entry recorded at version v can never mask a write, because the
/// version is fetched *before* the read and bumped *after* the commit).
///
/// Cells are never removed, so a dropped-and-recreated dataset keeps
/// counting from where it left off — a cache entry from the old incarnation
/// can never validate against the new one. Cell lookup takes a mutex; hot
/// paths resolve the cell once (e.g. at dataset open) and then touch only
/// the lock-free atomic.
class VersionClock {
 public:
  using Cell = std::atomic<uint64_t>;

  /// Stable pointer to the named cell, created at 0 on first use.
  Cell* GetCell(const std::string& name);

  /// Current version of `name` (0 if never bumped).
  uint64_t Get(const std::string& name);

  /// Increments the named version. Callers on write paths should prefer
  /// bumping a resolved Cell directly.
  void Bump(const std::string& name);

  /// The process-wide clock all dataset writers and cache readers share.
  static VersionClock& Default();

 private:
  std::mutex mu_;
  std::map<std::string, std::unique_ptr<Cell>> cells_;
};

}  // namespace vclock
}  // namespace asterix

#endif  // ASTERIX_COMMON_VERSION_CLOCK_H_
