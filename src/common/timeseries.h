#ifndef ASTERIX_COMMON_TIMESERIES_H_
#define ASTERIX_COMMON_TIMESERIES_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace asterix {
namespace monitor {

/// One scalar snapshot of the metrics registry at a point in time: every
/// counter and gauge under its own name, every histogram as "<name>.count"
/// and "<name>.sum" (so a rate over a histogram's sum yields e.g.
/// backpressure-wait microseconds per second).
struct Sample {
  uint64_t ts_us = 0;  // since the ring's creation
  std::map<std::string, int64_t> values;
};

/// Bounded in-memory ring of metric samples plus the windowed delta/rate
/// math over it. This is what turns the cumulative registry ("what has
/// happened since boot") into trends ("what changed over the last N
/// seconds"). All methods are thread-safe; readers see a consistent ring
/// under one mutex.
///
/// Counter-reset tolerance: benches and tests call
/// MetricsRegistry::Reset() between epochs, which makes every counter go
/// backwards. A windowed delta treats any backwards step as a reset and
/// clamps that step's contribution to the *new* value (everything counted
/// since the reset) instead of producing a huge bogus wrap-around rate.
class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(size_t capacity);

  void Push(Sample sample);
  size_t size() const;
  bool empty() const;
  size_t capacity() const { return capacity_; }

  /// Copy of the most recent sample (empty sample when none).
  Sample Latest() const;
  /// Latest value of one series (0 when absent).
  int64_t LatestValue(const std::string& name) const;

  /// Sum of per-step deltas of `name` over the trailing `window_us`,
  /// reset-clamped as described above. A series first seen mid-window
  /// contributes its full first value (born-at-zero semantics).
  int64_t WindowedDelta(const std::string& name, uint64_t window_us) const;

  /// WindowedDelta scaled to a per-second rate over the *actual* covered
  /// span (which may be shorter than `window_us` on a young ring).
  double WindowedRate(const std::string& name, uint64_t window_us) const;

  /// The time span WindowedDelta/WindowedRate would actually cover.
  uint64_t CoveredWindowUs(uint64_t window_us) const;

  /// JSON dump of the trailing `max_samples` samples (0 = everything):
  /// `{ "samples": N, "data": [ { "ts_us": ..., "values": {...} }, ... ] }`.
  /// The bench drivers embed this so a run's full metric trajectory rides
  /// along in BENCH_*.json.
  std::string HistoryJson(size_t max_samples = 0) const;

  /// Per-second windowed rates for every series in the latest sample:
  /// `{ "window_us": ..., "per_sec": { "<name>": rate, ... } }`.
  std::string RatesJson(uint64_t window_us) const;

 private:
  /// Requires mu_. Returns the delta and (optionally) the covered span.
  int64_t WindowedDeltaLocked(const std::string& name, uint64_t window_us,
                              uint64_t* span_us) const;
  /// Requires mu_. Index of the baseline sample for a trailing window.
  size_t WindowStartLocked(uint64_t window_us) const;

  size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Sample> samples_;
};

/// Background thread that snapshots a MetricsRegistry into a TimeSeriesRing
/// every `interval_ms`. Probes registered with AddProbe run before each
/// snapshot so instance-level state that is not naturally metric-backed
/// (executor-pool occupancy, journal drop counts) can be exported into
/// gauges and ride the same ring. The observer (the HealthWatchdog) runs
/// after each push.
///
/// Overhead: one registry walk per interval — a few hundred relaxed atomic
/// loads — plus one map copy into the ring. Nothing on any query hot path.
class MetricsSampler {
 public:
  struct Options {
    uint64_t interval_ms = 100;
    size_t ring_capacity = 600;  // 60s of history at the default interval
  };

  MetricsSampler(metrics::MetricsRegistry* registry, Options options);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Register a pre-snapshot probe. Call before Start().
  void AddProbe(std::function<void()> probe);
  /// Register the post-push observer. Call before Start().
  void SetObserver(std::function<void(const TimeSeriesRing&)> observer);

  void Start();
  void Stop();

  /// Takes one sample synchronously (probes + snapshot + observer). Used by
  /// tests and by bench drivers for a final up-to-date point; safe while
  /// the background thread runs.
  void SampleNow();

  const TimeSeriesRing& ring() const { return ring_; }
  uint64_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }
  uint64_t interval_us() const { return options_.interval_ms * 1000; }

 private:
  void Loop();

  metrics::MetricsRegistry* registry_;
  Options options_;
  TimeSeriesRing ring_;
  std::vector<std::function<void()>> probes_;
  std::function<void(const TimeSeriesRing&)> observer_;
  std::atomic<uint64_t> samples_{0};
  std::chrono::steady_clock::time_point epoch_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace monitor
}  // namespace asterix

#endif  // ASTERIX_COMMON_TIMESERIES_H_
