#ifndef ASTERIX_COMMON_ENV_H_
#define ASTERIX_COMMON_ENV_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"

namespace asterix {

/// Thin filesystem facade used by the storage, txn, and external-data
/// layers so tests can point the whole system at a scratch directory.
namespace env {

/// Recursively creates `path` (no error if it already exists).
Status CreateDirs(const std::string& path);

/// Recursively deletes `path` if it exists.
Status RemoveAll(const std::string& path);

/// True if a file or directory exists at `path`.
bool Exists(const std::string& path);

/// Writes `data` to `path` via a rename from a temp file, so readers never
/// observe a half-written file (disk components rely on this for shadowing).
Status WriteFileAtomic(const std::string& path, const void* data, size_t n);

/// Reads the whole file into `out`.
Status ReadFile(const std::string& path, std::vector<uint8_t>* out);

/// Appends `data` to `path`, creating it if needed (WAL append path).
Status AppendFile(const std::string& path, const void* data, size_t n);

/// Lists the file names (not full paths) directly under `dir`.
Status ListDir(const std::string& dir, std::vector<std::string>* names);

/// Size of the file at `path` in bytes, or 0 if missing.
uint64_t FileSize(const std::string& path);

/// Deletes a single file if present.
Status RemoveFile(const std::string& path);

/// Creates and returns a fresh scratch directory under the system temp dir.
std::string NewScratchDir(const std::string& prefix);

/// Streams a file front to back in caller-sized chunks so large files (spill
/// runs) can be replayed with a bounded resident window instead of one
/// whole-file read.
class SequentialFileReader {
 public:
  explicit SequentialFileReader(const std::string& path);
  ~SequentialFileReader();
  SequentialFileReader(const SequentialFileReader&) = delete;
  SequentialFileReader& operator=(const SequentialFileReader&) = delete;

  /// False if the file could not be opened.
  bool ok() const { return file_ != nullptr; }

  /// Reads up to `n` bytes into `out`; returns the number read (0 at EOF).
  size_t Read(void* out, size_t n);

 private:
  std::FILE* file_;
};

}  // namespace env
}  // namespace asterix

#endif  // ASTERIX_COMMON_ENV_H_
