#include "common/status.h"

namespace asterix {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTxnConflict:
      return "TxnConflict";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kRateLimited:
      return "RateLimited";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace asterix
