#ifndef ASTERIX_COMMON_STRING_UTILS_H_
#define ASTERIX_COMMON_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <vector>

namespace asterix {

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Strips leading/trailing ASCII whitespace.
std::string_view TrimString(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// SQL-style LIKE match: '%' matches any run, '_' matches one character.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Minimal glob-free regex subset used by AQL `matches`: supports '.',
/// '*', '+', '?', character classes `[...]`, anchors '^'/'$', and literals.
bool RegexMatch(std::string_view text, std::string_view pattern);

}  // namespace asterix

#endif  // ASTERIX_COMMON_STRING_UTILS_H_
