#ifndef ASTERIX_COMMON_BYTES_H_
#define ASTERIX_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace asterix {

/// Append-only binary encoder used for record serialization, index pages,
/// and WAL records. All multi-byte integers are little-endian; lengths are
/// LEB128 varints so small records stay small (this matters for the Table 2
/// storage-size experiment).
class BytesWriter {
 public:
  BytesWriter() = default;
  explicit BytesWriter(std::vector<uint8_t>* sink) : external_(sink) {}

  void PutU8(uint8_t v) { Buf().push_back(v); }
  void PutU16(uint16_t v) { PutRaw(&v, 2); }
  void PutU32(uint32_t v) { PutRaw(&v, 4); }
  void PutU64(uint64_t v) { PutRaw(&v, 8); }
  void PutI32(int32_t v) { PutRaw(&v, 4); }
  void PutI64(int64_t v) { PutRaw(&v, 8); }
  void PutF32(float v) { PutRaw(&v, 4); }
  void PutF64(double v) { PutRaw(&v, 8); }

  /// Unsigned LEB128.
  void PutVarint(uint64_t v);
  /// Zig-zag encoded signed LEB128.
  void PutVarintSigned(int64_t v);
  /// Varint length prefix followed by the bytes.
  void PutString(std::string_view s);
  void PutBytes(const void* data, size_t n) { PutRaw(data, n); }

  const std::vector<uint8_t>& data() const { return Buf(); }
  size_t size() const { return Buf().size(); }
  void Clear() { Buf().clear(); }

 private:
  std::vector<uint8_t>& Buf() { return external_ ? *external_ : own_; }
  const std::vector<uint8_t>& Buf() const { return external_ ? *external_ : own_; }
  void PutRaw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    Buf().insert(Buf().end(), b, b + n);
  }

  std::vector<uint8_t> own_;
  std::vector<uint8_t>* external_ = nullptr;
};

/// Cursor-based decoder over a byte span; the inverse of BytesWriter.
/// Out-of-bounds reads return Corruption rather than crashing, so corrupt
/// disk components and WAL tails are survivable.
class BytesReader {
 public:
  BytesReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BytesReader(const std::vector<uint8_t>& v)
      : data_(v.data()), size_(v.size()) {}

  Status GetU8(uint8_t* v) { return GetRaw(v, 1); }
  Status GetU16(uint16_t* v) { return GetRaw(v, 2); }
  Status GetU32(uint32_t* v) { return GetRaw(v, 4); }
  Status GetU64(uint64_t* v) { return GetRaw(v, 8); }
  Status GetI32(int32_t* v) { return GetRaw(v, 4); }
  Status GetI64(int64_t* v) { return GetRaw(v, 8); }
  Status GetF32(float* v) { return GetRaw(v, 4); }
  Status GetF64(double* v) { return GetRaw(v, 8); }
  Status GetVarint(uint64_t* v);
  Status GetVarintSigned(int64_t* v);
  Status GetString(std::string* s);
  Status GetBytes(void* out, size_t n) { return GetRaw(out, n); }

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ >= size_; }
  Status Skip(size_t n);

 private:
  Status GetRaw(void* out, size_t n) {
    if (pos_ + n > size_) {
      return Status::Corruption("byte reader overrun");
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// CRC32 (Castagnoli polynomial, software table) over a byte span. Used to
/// checksum WAL records and disk-component footers.
uint32_t Crc32(const void* data, size_t n);

/// 64-bit FNV-1a hash; the system-wide hash for hash partitioning and hash
/// joins/groupings.
uint64_t Hash64(const void* data, size_t n, uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace asterix

#endif  // ASTERIX_COMMON_BYTES_H_
