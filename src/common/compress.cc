#include "common/compress.h"

#include <cstring>

#include "common/bytes.h"

namespace asterix {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr size_t kMaxOffset = 0xffff;

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Token framing:
//   literal run:  [0][varint len][bytes]
//   match:        [1][varint len][u16 offset]

}  // namespace

std::vector<uint8_t> LzCompress(const uint8_t* data, size_t n) {
  BytesWriter w;
  w.PutVarint(n);
  std::vector<int64_t> table(kHashSize, -1);
  size_t i = 0;
  size_t literal_start = 0;
  auto flush_literals = [&](size_t end) {
    if (end > literal_start) {
      w.PutU8(0);
      w.PutVarint(end - literal_start);
      w.PutBytes(data + literal_start, end - literal_start);
    }
  };
  while (i + kMinMatch <= n) {
    uint32_t h = Hash4(data + i);
    int64_t cand = table[h];
    table[h] = static_cast<int64_t>(i);
    if (cand >= 0 && i - static_cast<size_t>(cand) <= kMaxOffset &&
        std::memcmp(data + cand, data + i, kMinMatch) == 0) {
      // Extend the match.
      size_t len = kMinMatch;
      while (i + len < n && data[cand + len] == data[i + len] && len < 65535) {
        ++len;
      }
      flush_literals(i);
      w.PutU8(1);
      w.PutVarint(len);
      w.PutU16(static_cast<uint16_t>(i - static_cast<size_t>(cand)));
      i += len;
      literal_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(n);
  return w.data();
}

Status LzDecompress(const uint8_t* data, size_t n, std::vector<uint8_t>* out) {
  BytesReader r(data, n);
  uint64_t raw_size;
  ASTERIX_RETURN_NOT_OK(r.GetVarint(&raw_size));
  out->clear();
  out->reserve(raw_size);
  while (out->size() < raw_size) {
    uint8_t kind;
    uint64_t len;
    ASTERIX_RETURN_NOT_OK(r.GetU8(&kind));
    ASTERIX_RETURN_NOT_OK(r.GetVarint(&len));
    if (kind == 0) {
      size_t old = out->size();
      out->resize(old + len);
      ASTERIX_RETURN_NOT_OK(r.GetBytes(out->data() + old, len));
    } else if (kind == 1) {
      uint16_t offset;
      ASTERIX_RETURN_NOT_OK(r.GetU16(&offset));
      if (offset == 0 || offset > out->size()) {
        return Status::Corruption("bad LZ back-reference");
      }
      size_t src = out->size() - offset;
      // Byte-by-byte: overlapping copies are the RLE case and must work.
      for (uint64_t k = 0; k < len; ++k) {
        out->push_back((*out)[src + k]);
      }
    } else {
      return Status::Corruption("bad LZ token kind");
    }
  }
  if (out->size() != raw_size) return Status::Corruption("LZ size mismatch");
  return Status::OK();
}

}  // namespace asterix
