#ifndef ASTERIX_COMMON_METRICS_H_
#define ASTERIX_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace asterix {
namespace metrics {

/// Monotonic event counter. Increment is a single relaxed atomic add, so
/// hot paths (per-tuple, per-page, per-log-record) can afford it.
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level (resident components, open feeds, active locks).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges, strictly
/// increasing; one implicit overflow bucket catches anything larger. All
/// state is atomic, so Observe() is lock-free and safe from any thread.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> bounds);

  void Observe(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  /// Bucket i counts values in (bounds[i-1], bounds[i]]; index bounds.size()
  /// is the overflow bucket.
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  size_t num_buckets() const { return bounds_.size() + 1; }
  void Reset();

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket containing the target rank: values are assumed uniform between a
  /// bucket's lower and upper edge. The first bucket interpolates up from 0;
  /// the overflow bucket interpolates toward the observed max(). Returns 0
  /// when the histogram is empty.
  double Percentile(double q) const;

  /// Power-of-two microsecond edges, 1us .. ~8.4s — the default latency
  /// scale shared by flush/merge/lock-wait/job-elapsed histograms.
  static std::vector<uint64_t> LatencyBoundsUs();
  /// Power-of-two count edges 1 .. 65536 (batch sizes, component counts).
  static std::vector<uint64_t> CountBounds();

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Process-wide registry of named metrics. Lookups take a mutex; callers on
/// hot paths resolve once (e.g. into a function-local static pointer) and
/// then touch only the lock-free metric objects. Metric objects live as
/// long as the registry — pointers never dangle.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Empty `bounds` selects LatencyBoundsUs(). Bounds are fixed by the
  /// first registration of a name; later callers share the same histogram.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<uint64_t> bounds = {});

  /// Consistent-enough JSON snapshot of every registered metric (counters,
  /// gauges, histograms with bounds/bucket counts/sum/max).
  std::string ToJson() const;

  /// Flat scalar snapshot for the time-series sampler: every counter and
  /// gauge under its own name, every histogram as "<name>.count" and
  /// "<name>.sum" — so windowed rates over a histogram's sum yield e.g.
  /// backpressure-wait microseconds per second.
  std::map<std::string, int64_t> SnapshotScalars() const;

  /// Prometheus text exposition (format 0.0.4): counters, gauges, and
  /// histograms with cumulative le-buckets plus _sum/_count. Names are
  /// sanitized ('.' and '-' become '_') and prefixed "asterix_", so
  /// external scrapers and the in-repo bench drivers share one view.
  std::string ToPrometheus() const;

  /// Zeroes every metric but keeps registrations (bench epochs, tests).
  void Reset();

  /// The process-wide default registry that storage/txn/feeds/hyracks
  /// instrumentation registers into.
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace metrics
}  // namespace asterix

#endif  // ASTERIX_COMMON_METRICS_H_
