#include "common/env.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace asterix {
namespace env {

namespace fs = std::filesystem;

Status CreateDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("create_directories " + path + ": " + ec.message());
  return Status::OK();
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("remove_all " + path + ": " + ec.message());
  return Status::OK();
}

bool Exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Status WriteFileAtomic(const std::string& path, const void* data, size_t n) {
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("open for write: " + tmp);
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    if (!out) return Status::IOError("write: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) return Status::IOError("rename " + tmp + " -> " + path + ": " + ec.message());
  return Status::OK();
}

Status ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("open for read: " + path);
  std::streamsize size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(out->data()), size)) {
    return Status::IOError("read: " + path);
  }
  return Status::OK();
}

Status AppendFile(const std::string& path, const void* data, size_t n) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("open for append: " + path);
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out) return Status::IOError("append: " + path);
  return Status::OK();
}

Status ListDir(const std::string& dir, std::vector<std::string>* names) {
  names->clear();
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    names->push_back(entry.path().filename().string());
  }
  if (ec) return Status::IOError("list " + dir + ": " + ec.message());
  return Status::OK();
}

uint64_t FileSize(const std::string& path) {
  std::error_code ec;
  uint64_t size = fs::file_size(path, ec);
  return ec ? 0 : size;
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) return Status::IOError("remove " + path + ": " + ec.message());
  return Status::OK();
}

SequentialFileReader::SequentialFileReader(const std::string& path)
    : file_(std::fopen(path.c_str(), "rb")) {}

SequentialFileReader::~SequentialFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

size_t SequentialFileReader::Read(void* out, size_t n) {
  if (file_ == nullptr || n == 0) return 0;
  return std::fread(out, 1, n, file_);
}

std::string NewScratchDir(const std::string& prefix) {
  static std::atomic<uint64_t> counter{0};
  uint64_t stamp = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  std::string path = (fs::temp_directory_path() /
                      (prefix + "-" + std::to_string(stamp) + "-" +
                       std::to_string(counter.fetch_add(1))))
                         .string();
  CreateDirs(path);
  return path;
}

}  // namespace env
}  // namespace asterix
