#ifndef ASTERIX_COMMON_COMPRESS_H_
#define ASTERIX_COMMON_COMPRESS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace asterix {

/// Greedy LZ77-family byte compressor (LZ4-like framing: literal runs +
/// back-references found via a 4-byte hash table). Used by the columnar
/// baseline's stripes (standing in for ORC's zlib) and available to any
/// other storage component. Self-framing: Decompress needs only the bytes.
std::vector<uint8_t> LzCompress(const uint8_t* data, size_t n);

Status LzDecompress(const uint8_t* data, size_t n, std::vector<uint8_t>* out);

}  // namespace asterix

#endif  // ASTERIX_COMMON_COMPRESS_H_
