#include "common/journal.h"

#include <algorithm>
#include <cstdlib>

namespace asterix {
namespace journal {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kQueryStart:
      return "query.start";
    case EventKind::kQueryFinish:
      return "query.finish";
    case EventKind::kJobAdmit:
      return "job.admit";
    case EventKind::kJobStart:
      return "job.start";
    case EventKind::kJobFinish:
      return "job.finish";
    case EventKind::kLsmFlushStart:
      return "lsm.flush.start";
    case EventKind::kLsmFlushEnd:
      return "lsm.flush.end";
    case EventKind::kLsmMergeStart:
      return "lsm.merge.start";
    case EventKind::kLsmMergeEnd:
      return "lsm.merge.end";
    case EventKind::kSpill:
      return "spill.write";
    case EventKind::kSpillReload:
      return "spill.reload";
    case EventKind::kBackpressure:
      return "channel.backpressure";
    case EventKind::kLockWait:
      return "lock.wait";
    case EventKind::kAdmissionGrant:
      return "admission.grant";
    case EventKind::kAdmissionReject:
      return "admission.reject";
    case EventKind::kCacheHit:
      return "cache.hit";
    case EventKind::kCacheStore:
      return "cache.store";
    case EventKind::kCacheInvalidate:
      return "cache.invalidate";
    case EventKind::kCoalesce:
      return "coalesce.join";
    case EventKind::kRateLimit:
      return "rate.limit";
    case EventKind::kWriteStall:
      return "lsm.write.stall";
    case EventKind::kHealth:
      return "health.transition";
    case EventKind::kCompactionSchedule:
      return "compaction.schedule";
    case EventKind::kCompactionStart:
      return "compaction.start";
    case EventKind::kCompactionFinish:
      return "compaction.finish";
  }
  return "unknown";
}

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

thread_local uint64_t tls_query_id = 0;

}  // namespace

Journal::Journal(size_t capacity)
    : mask_(RoundUpPow2(capacity) - 1),
      slots_(std::make_unique<Slot[]>(mask_ + 1)),
      epoch_(std::chrono::steady_clock::now()) {}

uint64_t Journal::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Journal::Post(EventKind kind, uint64_t a, uint64_t b, const char* label) {
  // The single reservation: every later store targets a slot this thread
  // owns until the next lap, so relaxed order suffices for the payload.
  uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx & mask_];
  // Lapping a published event that no Snapshot() could have seen yet is a
  // silent loss of history; count it so StatusJson can surface the blind
  // spot. A benign race (a concurrent Snapshot that just started) at worst
  // over-counts by the in-flight scan, which errs on the honest side.
  uint64_t old = slot.seq.load(std::memory_order_relaxed);
  if (old != 0 && old != kWriting &&
      old > snapshot_floor_.load(std::memory_order_relaxed)) {
    overwrite_drops_.fetch_add(1, std::memory_order_relaxed);
  }
  slot.seq.store(kWriting, std::memory_order_release);
  slot.ts_us.store(NowUs(), std::memory_order_relaxed);
  slot.query_id.store(tls_query_id, std::memory_order_relaxed);
  slot.kind.store(static_cast<uint64_t>(kind), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  uint64_t words[3] = {0, 0, 0};
  if (label != nullptr) {
    char buf[24] = {0};
    size_t n = 0;
    while (n < sizeof(buf) - 1 && label[n] != '\0') {
      buf[n] = label[n];
      ++n;
    }
    std::memcpy(words, buf, sizeof(buf));
  }
  for (int i = 0; i < 3; ++i) {
    slot.label_words[i].store(words[i], std::memory_order_relaxed);
  }
  // Publish: seq = idx + 1 (1-based so 0 can mean "never written").
  slot.seq.store(idx + 1, std::memory_order_release);
}

std::vector<Event> Journal::Snapshot(uint64_t min_seq) const {
  // Advance the "some reader got this far" floor to the current head:
  // everything posted before this point is now fair game for overwrite
  // without counting as a drop.
  uint64_t head = head_.load(std::memory_order_relaxed);
  uint64_t floor = snapshot_floor_.load(std::memory_order_relaxed);
  while (floor < head && !snapshot_floor_.compare_exchange_weak(
                             floor, head, std::memory_order_relaxed)) {
  }
  std::vector<Event> out;
  size_t cap = mask_ + 1;
  out.reserve(cap);
  for (size_t i = 0; i < cap; ++i) {
    const Slot& slot = slots_[i];
    uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || before == kWriting || before <= min_seq) continue;
    Event e;
    e.seq = before;
    e.ts_us = slot.ts_us.load(std::memory_order_relaxed);
    e.query_id = slot.query_id.load(std::memory_order_relaxed);
    e.kind = static_cast<EventKind>(slot.kind.load(std::memory_order_relaxed));
    e.a = slot.a.load(std::memory_order_relaxed);
    e.b = slot.b.load(std::memory_order_relaxed);
    uint64_t words[3];
    for (int w = 0; w < 3; ++w) {
      words[w] = slot.label_words[w].load(std::memory_order_relaxed);
    }
    std::memcpy(e.label, words, sizeof(e.label));
    e.label[sizeof(e.label) - 1] = '\0';
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return out;
}

std::string Journal::SnapshotJson(uint64_t min_seq) const {
  std::vector<Event> events = Snapshot(min_seq);
  std::string out = "[ ";
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i) out += ", ";
    out += "{ \"seq\": " + std::to_string(e.seq) +
           ", \"ts_us\": " + std::to_string(e.ts_us) + ", \"kind\": \"" +
           EventKindName(e.kind) +
           "\", \"query_id\": " + std::to_string(e.query_id) +
           ", \"a\": " + std::to_string(e.a) +
           ", \"b\": " + std::to_string(e.b) + ", \"label\": \"";
    for (const char* p = e.label; *p != '\0'; ++p) {
      if (*p == '"' || *p == '\\') out.push_back('\\');
      out.push_back(*p);
    }
    out += "\" }";
  }
  out += " ]";
  return out;
}

Journal& Journal::Default() {
  static Journal* instance = [] {
    size_t capacity = 65536;
    if (const char* env = std::getenv("ASTERIX_JOURNAL_EVENTS")) {
      long v = std::atol(env);
      if (v > 0) capacity = static_cast<size_t>(v);
    }
    return new Journal(capacity);
  }();
  return *instance;
}

uint64_t NextQueryId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t CurrentQueryId() { return tls_query_id; }

ScopedQueryId::ScopedQueryId(uint64_t id) : prev_(tls_query_id) {
  tls_query_id = id;
}

ScopedQueryId::~ScopedQueryId() { tls_query_id = prev_; }

}  // namespace journal
}  // namespace asterix
