#include "common/bytes.h"

namespace asterix {

void BytesWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void BytesWriter::PutVarintSigned(int64_t v) {
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarint(zz);
}

void BytesWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  PutRaw(s.data(), s.size());
}

Status BytesReader::GetVarint(uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::Corruption("truncated varint");
    uint8_t byte = data_[pos_++];
    if (shift >= 63 && byte > 1) return Status::Corruption("varint overflow");
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *v = result;
  return Status::OK();
}

Status BytesReader::GetVarintSigned(int64_t* v) {
  uint64_t zz;
  ASTERIX_RETURN_NOT_OK(GetVarint(&zz));
  *v = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  return Status::OK();
}

Status BytesReader::GetString(std::string* s) {
  uint64_t len;
  ASTERIX_RETURN_NOT_OK(GetVarint(&len));
  if (pos_ + len > size_) return Status::Corruption("truncated string");
  s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status BytesReader::Skip(size_t n) {
  if (pos_ + n > size_) return Status::Corruption("skip past end");
  pos_ += n;
  return Status::OK();
}

namespace {

// Lazily built CRC32C table (single-threaded init is fine: it is invoked
// during static-free startup paths and the table build is idempotent).
struct Crc32Table {
  uint32_t table[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82f63b78u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
  }
};

const Crc32Table& GetCrcTable() {
  static const Crc32Table* table = new Crc32Table();
  return *table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  const auto& t = GetCrcTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < n; ++i) {
    crc = t.table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

uint64_t Hash64(const void* data, size_t n, uint64_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace asterix
