#include "hyracks/profile.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "hyracks/job.h"

namespace asterix {
namespace hyracks {

namespace {

std::string FmtMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

std::vector<OperatorRollup> JobProfile::Rollup() const {
  std::vector<OperatorRollup> rollups;
  std::map<int, size_t> index;
  for (const auto& s : spans) {
    auto it = index.find(s.op_id);
    if (it == index.end()) {
      it = index.emplace(s.op_id, rollups.size()).first;
      OperatorRollup r;
      r.op_id = s.op_id;
      r.name = s.op_name;
      rollups.push_back(std::move(r));
    }
    OperatorRollup& r = rollups[it->second];
    ++r.instances;
    r.tuples_in += s.tuples_in;
    r.tuples_out += s.tuples_out;
    r.frames_flushed += s.frames_flushed;
    r.bytes_read += s.bytes_read;
    r.input_wait_us += s.input_wait_us;
    r.output_wait_us += s.output_wait_us;
    r.spill_bytes += s.spill_bytes;
    r.spilled_partitions += s.spilled_partitions;
    r.hash_build_bytes += s.hash_build_bytes;
    r.batches += s.batches;
    r.vec_rows_selected += s.vec_rows_selected;
    r.vec_rows_total += s.vec_rows_total;
    r.kernel_us += s.kernel_us;
    r.cpu_us += s.cpu_us;
    r.elapsed_ms = std::max(r.elapsed_ms, s.elapsed_ms());
  }
  return rollups;
}

uint64_t JobProfile::TuplesOut(int op_id) const {
  uint64_t total = 0;
  for (const auto& s : spans) {
    if (s.op_id == op_id) total += s.tuples_out;
  }
  return total;
}

uint64_t JobProfile::TuplesIn(int op_id) const {
  uint64_t total = 0;
  for (const auto& s : spans) {
    if (s.op_id == op_id) total += s.tuples_in;
  }
  return total;
}

std::string JobProfile::ToJson() const {
  std::string out = "{ \"job_id\": " + std::to_string(job_id) +
                    ", \"query_id\": " + std::to_string(query_id) +
                    ", \"elapsed_ms\": " + FmtMs(elapsed_ms) +
                    ", \"startup_ms\": " + FmtMs(startup_ms) +
                    ", \"num_nodes\": " + std::to_string(num_nodes) +
                    ", \"phases\": { \"parse_us\": " +
                    std::to_string(phases.parse_us) + ", \"optimize_us\": " +
                    std::to_string(phases.optimize_us) +
                    ", \"admission_wait_us\": " +
                    std::to_string(phases.admission_us) + ", \"execute_us\": " +
                    std::to_string(phases.execute_us) + ", \"result_us\": " +
                    std::to_string(phases.result_us) +
                    " }, \"operators\": [ ";
  bool first = true;
  for (const auto& r : Rollup()) {
    if (!first) out += ", ";
    first = false;
    out += "{ \"op\": " + std::to_string(r.op_id) + ", \"name\": ";
    AppendJsonString(r.name, &out);
    out += ", \"instances\": " + std::to_string(r.instances) +
           ", \"tuples_in\": " + std::to_string(r.tuples_in) +
           ", \"tuples_out\": " + std::to_string(r.tuples_out) +
           ", \"frames_flushed\": " + std::to_string(r.frames_flushed) +
           ", \"bytes_read\": " + std::to_string(r.bytes_read) +
           ", \"input_wait_us\": " + std::to_string(r.input_wait_us) +
           ", \"output_wait_us\": " + std::to_string(r.output_wait_us) +
           ", \"spill_bytes\": " + std::to_string(r.spill_bytes) +
           ", \"spilled_partitions\": " + std::to_string(r.spilled_partitions) +
           ", \"hash_build_bytes\": " + std::to_string(r.hash_build_bytes) +
           ", \"batches\": " + std::to_string(r.batches) +
           ", \"selected_ratio\": " + FmtMs(r.selected_ratio()) +
           ", \"kernel_us\": " + std::to_string(r.kernel_us) +
           ", \"cpu_us\": " + std::to_string(r.cpu_us) +
           ", \"elapsed_ms\": " + FmtMs(r.elapsed_ms) + " }";
  }
  out += " ], \"spans\": [ ";
  first = true;
  for (const auto& s : spans) {
    if (!first) out += ", ";
    first = false;
    out += "{ \"op\": " + std::to_string(s.op_id) + ", \"name\": ";
    AppendJsonString(s.op_name, &out);
    out += ", \"instance\": " + std::to_string(s.instance) +
           ", \"node\": " + std::to_string(s.node) +
           ", \"start_ms\": " + FmtMs(s.start_ms) +
           ", \"end_ms\": " + FmtMs(s.end_ms) +
           ", \"tuples_in\": " + std::to_string(s.tuples_in) +
           ", \"tuples_out\": " + std::to_string(s.tuples_out) +
           ", \"frames_flushed\": " + std::to_string(s.frames_flushed) +
           ", \"bytes_read\": " + std::to_string(s.bytes_read) +
           ", \"input_wait_us\": " + std::to_string(s.input_wait_us) +
           ", \"output_wait_us\": " + std::to_string(s.output_wait_us) +
           ", \"spill_bytes\": " + std::to_string(s.spill_bytes) +
           ", \"spilled_partitions\": " + std::to_string(s.spilled_partitions) +
           ", \"hash_build_bytes\": " + std::to_string(s.hash_build_bytes) +
           ", \"batches\": " + std::to_string(s.batches) +
           ", \"selected_ratio\": " + FmtMs(s.selected_ratio()) +
           ", \"kernel_us\": " + std::to_string(s.kernel_us) +
           ", \"cpu_us\": " + std::to_string(s.cpu_us) +
           ", \"ok\": " + (s.ok ? "true" : "false") + " }";
  }
  out += " ], \"connectors\": [ ";
  first = true;
  for (const auto& c : connectors) {
    if (!first) out += ", ";
    first = false;
    out += "{ \"conn\": " + std::to_string(c.conn_id) + ", \"type\": ";
    AppendJsonString(c.type, &out);
    out += ", \"src_op\": " + std::to_string(c.src_op) +
           ", \"dst_op\": " + std::to_string(c.dst_op) +
           ", \"tuples\": " + std::to_string(c.tuples) +
           ", \"network_tuples\": " + std::to_string(c.network_tuples) + " }";
  }
  out += " ] }";
  return out;
}

std::string JobProfile::ToChromeTrace() const {
  // "X" complete events: ts/dur in microseconds, pid = node, tid =
  // operator instance (partition). Metadata events name each node's row.
  std::string out = "{ \"displayTimeUnit\": \"ms\", \"traceEvents\": [ ";
  bool first = true;
  for (int n = 0; n < num_nodes; ++n) {
    if (!first) out += ", ";
    first = false;
    out += "{ \"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
           std::to_string(n) + ", \"args\": { \"name\": \"node" +
           std::to_string(n) + "\" } }";
  }
  if (phases.any()) {
    // Query-lifecycle phases on their own row (pid = num_nodes). Trace time
    // zero is job submission, so parse/optimize sit at negative timestamps
    // and admission/execute/result line up with the operator spans below.
    if (!first) out += ", ";
    first = false;
    out += "{ \"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
           std::to_string(num_nodes) + ", \"args\": { \"name\": \"query" +
           (query_id ? std::to_string(query_id) : std::string()) + "\" } }";
    int64_t ts = -static_cast<int64_t>(phases.parse_us + phases.optimize_us);
    const struct {
      const char* name;
      uint64_t dur;
    } phase_list[] = {{"parse", phases.parse_us},
                      {"optimize", phases.optimize_us},
                      {"admission", phases.admission_us},
                      {"execute", phases.execute_us},
                      {"result", phases.result_us}};
    for (const auto& p : phase_list) {
      if (p.dur == 0) continue;
      out += ", { \"name\": \"" + std::string(p.name) +
             "\", \"cat\": \"phase\", \"ph\": \"X\", \"ts\": " +
             std::to_string(ts) + ", \"dur\": " + std::to_string(p.dur) +
             ", \"pid\": " + std::to_string(num_nodes) +
             ", \"tid\": 0, \"args\": { \"query_id\": " +
             std::to_string(query_id) + " } }";
      ts += static_cast<int64_t>(p.dur);
    }
  }
  for (const auto& s : spans) {
    if (!first) out += ", ";
    first = false;
    out += "{ \"name\": ";
    AppendJsonString(s.op_name, &out);
    out += ", \"cat\": \"operator\", \"ph\": \"X\", \"ts\": " +
           FmtMs(s.start_ms * 1000.0) +
           ", \"dur\": " + FmtMs(std::max(0.0, s.elapsed_ms()) * 1000.0) +
           ", \"pid\": " + std::to_string(s.node) +
           ", \"tid\": " + std::to_string(s.instance) +
           ", \"args\": { \"op\": " + std::to_string(s.op_id) +
           ", \"partition\": " + std::to_string(s.instance) +
           ", \"tuples_in\": " + std::to_string(s.tuples_in) +
           ", \"tuples_out\": " + std::to_string(s.tuples_out) +
           ", \"frames_flushed\": " + std::to_string(s.frames_flushed) +
           ", \"input_wait_us\": " + std::to_string(s.input_wait_us) +
           ", \"output_wait_us\": " + std::to_string(s.output_wait_us) +
           ", \"spill_bytes\": " + std::to_string(s.spill_bytes) +
           ", \"spilled_partitions\": " + std::to_string(s.spilled_partitions) +
           ", \"hash_build_bytes\": " + std::to_string(s.hash_build_bytes) +
           ", \"batches\": " + std::to_string(s.batches) +
           ", \"kernel_us\": " + std::to_string(s.kernel_us) + " } }";
  }
  out += " ] }";
  return out;
}

std::string AnnotatePlan(const JobSpec& job, const JobProfile& profile) {
  // Same topological listing as JobSpec::ToString, each operator line
  // carrying its actuals and each edge its hop counts.
  std::map<int, OperatorRollup> rollups;
  for (const auto& r : profile.Rollup()) rollups[r.op_id] = r;
  std::map<int, const ConnectorHops*> hops;
  for (const auto& c : profile.connectors) hops[c.conn_id] = &c;

  std::map<int, std::vector<const ConnectorDescriptor*>> incoming;
  for (const auto& c : job.connectors) incoming[c.dst_op].push_back(&c);

  std::vector<int> order;
  std::map<int, int> remaining;
  for (const auto& op : job.operators) remaining[op.id] = 0;
  for (const auto& c : job.connectors) ++remaining[c.dst_op];
  std::vector<int> frontier;
  for (const auto& op : job.operators) {
    if (remaining[op.id] == 0) frontier.push_back(op.id);
  }
  while (!frontier.empty()) {
    int id = frontier.back();
    frontier.pop_back();
    order.push_back(id);
    for (const auto& c : job.connectors) {
      if (c.src_op == id && --remaining[c.dst_op] == 0) {
        frontier.push_back(c.dst_op);
      }
    }
  }

  std::string out = "job profile (";
  if (profile.query_id != 0) {
    out += "query " + std::to_string(profile.query_id) + ", ";
  }
  out += "elapsed " + FmtMs(profile.elapsed_ms) + " ms, startup " +
         FmtMs(profile.startup_ms) + " ms, " +
         std::to_string(profile.num_nodes) + " nodes)\n";
  if (profile.phases.any()) {
    const PhaseSpans& p = profile.phases;
    out += "phases: parse_us=" + std::to_string(p.parse_us) +
           ", optimize_us=" + std::to_string(p.optimize_us) +
           ", admission_wait_us=" + std::to_string(p.admission_us) +
           ", execute_us=" + std::to_string(p.execute_us) +
           ", result_us=" + std::to_string(p.result_us) + "\n";
  }
  for (int id : order) {
    const OperatorDescriptor* op = job.FindOperator(id);
    for (const auto* c : incoming[id]) {
      const OperatorDescriptor* src = job.FindOperator(c->src_op);
      out += "  |" + std::string(ConnectorTypeName(c->type)) + "|  (from " +
             src->name;
      auto hit = hops.find(c->id);
      if (hit != hops.end()) {
        out += ", tuples=" + std::to_string(hit->second->tuples) +
               ", network=" + std::to_string(hit->second->network_tuples);
      }
      out += ")\n";
    }
    out += op->name + "  [x" + std::to_string(op->parallelism) + "]";
    auto rit = rollups.find(id);
    if (rit != rollups.end()) {
      const OperatorRollup& r = rit->second;
      out += "  (actual: tuples_in=" + std::to_string(r.tuples_in) +
             ", tuples_out=" + std::to_string(r.tuples_out);
      if (r.bytes_read > 0) {
        out += ", bytes_read=" + std::to_string(r.bytes_read);
      }
      if (r.input_wait_us > 0) {
        out += ", input_wait_us=" + std::to_string(r.input_wait_us);
      }
      if (r.output_wait_us > 0) {
        out += ", output_wait_us=" + std::to_string(r.output_wait_us);
      }
      if (r.hash_build_bytes > 0) {
        out += ", hash_build_bytes=" + std::to_string(r.hash_build_bytes);
      }
      if (r.batches > 0) {
        char pct[32];
        std::snprintf(pct, sizeof(pct), "%.1f%%", r.selected_ratio() * 100.0);
        out += ", batches=" + std::to_string(r.batches) +
               ", selected=" + pct +
               ", kernel_us=" + std::to_string(r.kernel_us);
      }
      if (r.spilled_partitions > 0 || r.spill_bytes > 0) {
        out += ", spill_bytes=" + std::to_string(r.spill_bytes) +
               ", spilled_partitions=" + std::to_string(r.spilled_partitions);
      }
      out += ", ms=" + FmtMs(r.elapsed_ms) + ", instances=" +
             std::to_string(r.instances) + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace hyracks
}  // namespace asterix
