#include "hyracks/operators.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <unordered_map>

#include "adm/serde.h"
#include "common/env.h"
#include "functions/aggregates.h"
#include "functions/arith.h"

namespace asterix {
namespace hyracks {

using adm::Value;

namespace {

/// Adapter: build an OperatorInstance from a lambda.
class LambdaOperator : public OperatorInstance {
 public:
  using Fn = std::function<Status(const std::vector<InChannel*>&, Emitter*)>;
  explicit LambdaOperator(Fn fn) : fn_(std::move(fn)) {}
  Status Run(const std::vector<InChannel*>& inputs, Emitter* out) override {
    return fn_(inputs, out);
  }

 private:
  Fn fn_;
};

OperatorFactory Lambda(std::function<Status(int, const std::vector<InChannel*>&,
                                            Emitter*)> fn) {
  return [fn = std::move(fn)](int partition) {
    return std::make_unique<LambdaOperator>(
        [fn, partition](const std::vector<InChannel*>& in, Emitter* out) {
          return fn(partition, in, out);
        });
  };
}

/// Drains one input channel frame-at-a-time, invoking `fn` per tuple. One
/// channel synchronization buys a whole frame of work, so every operator
/// built on this helper consumes input at frame granularity.
Status ForEachInput(InChannel* in, const std::function<Status(Tuple&)>& fn) {
  Frame frame;
  while (true) {
    auto r = in->NextFrame(&frame);
    if (!r.ok()) return r.status();
    if (!r.value()) return Status::OK();
    for (Tuple& t : frame.tuples) {
      ASTERIX_RETURN_NOT_OK(fn(t));
    }
  }
}

struct TupleKeyLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

struct TupleKeyHash {
  size_t operator()(const std::vector<Value>& k) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& v : k) h = v.Hash(h);
    return static_cast<size_t>(h);
  }
};

struct TupleKeyEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

Result<std::vector<Value>> EvalKeys(const std::vector<TupleEval>& evals,
                                    const Tuple& t) {
  std::vector<Value> keys;
  keys.reserve(evals.size());
  for (const auto& e : evals) {
    auto r = e(t);
    if (!r.ok()) return r.status();
    keys.push_back(r.take());
  }
  return keys;
}

// Group-by core shared by hash and preclustered variants.
struct GroupState {
  std::vector<std::unique_ptr<functions::Aggregator>> aggs;
};

Status FeedGroup(GroupState* g, const std::vector<AggSpec>& specs,
                 const Tuple& t, AggMode mode, size_t key_arity) {
  for (size_t i = 0; i < specs.size(); ++i) {
    if (mode == AggMode::kGlobal) {
      // Partial columns follow the keys in the input layout.
      g->aggs[i]->Combine(t[key_arity + i]);
    } else if (specs[i].input) {
      auto v = specs[i].input(t);
      if (!v.ok()) return v.status();
      g->aggs[i]->Add(v.value());
    } else {
      g->aggs[i]->Add(Value::Int64(1));  // count(*) style
    }
  }
  return Status::OK();
}

Tuple FinishGroup(const std::vector<Value>& keys, GroupState* g, AggMode mode) {
  Tuple out = keys;
  for (auto& a : g->aggs) {
    out.push_back(mode == AggMode::kLocal ? a->Partial() : a->Finish());
  }
  return out;
}

GroupState NewGroup(const std::vector<AggSpec>& specs) {
  GroupState g;
  for (const auto& s : specs) {
    g.aggs.push_back(functions::MakeAggregator(s.function));
  }
  return g;
}

}  // namespace

std::function<uint64_t(const Tuple&)> HashOnColumns(std::vector<int> columns) {
  return [columns = std::move(columns)](const Tuple& t) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int c : columns) h = t[static_cast<size_t>(c)].Hash(h);
    return h;
  };
}

OperatorDescriptor MakeValueScan(std::vector<Tuple> tuples) {
  OperatorDescriptor op;
  op.name = "value-scan";
  op.parallelism = 1;
  op.num_inputs = 0;
  auto shared = std::make_shared<std::vector<Tuple>>(std::move(tuples));
  op.factory = Lambda([shared](int partition, const std::vector<InChannel*>&,
                               Emitter* out) {
    // Only instance 0 emits, so a misconfigured parallelism cannot
    // duplicate the constants.
    if (partition == 0) {
      for (const auto& t : *shared) out->Push(t);
    }
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeUnion(int parallelism, int num_inputs) {
  OperatorDescriptor op;
  op.name = "union-all";
  op.parallelism = parallelism;
  op.num_inputs = num_inputs;
  op.factory = Lambda([num_inputs](int, const std::vector<InChannel*>& in,
                                   Emitter* out) {
    for (int port = 0; port < num_inputs; ++port) {
      ASTERIX_RETURN_NOT_OK(ForEachInput(in[static_cast<size_t>(port)],
                                         [&](Tuple& t) {
                                           out->Push(std::move(t));
                                           return Status::OK();
                                         }));
    }
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeDatasetScan(storage::PartitionedDataset* dataset,
                                   storage::column::Projection projection) {
  OperatorDescriptor op;
  bool columnar =
      dataset->def().storage_format == storage::StorageFormat::kColumn;
  op.name = std::string(columnar ? "column-scan(" : "scan(") +
            dataset->def().name + ")";
  std::string ptag = projection.ToString();
  if (!ptag.empty()) op.name += " " + ptag;
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 0;
  auto proj = std::make_shared<storage::column::Projection>(std::move(projection));
  op.factory = Lambda([dataset, proj](int p, const std::vector<InChannel*>&,
                                      Emitter* out) {
    storage::column::ProjectedScanStats stats;
    Status st = dataset->partition(static_cast<uint32_t>(p))
                    ->ProjectedScan(storage::ScanBounds{}, *proj,
                                    [&](const Value& rec) {
                                      out->Push({rec});
                                      return Status::OK();
                                    },
                                    &stats);
    out->AddBytesRead(stats.bytes_read);
    return st;
  });
  return op;
}

OperatorDescriptor MakePrimaryRangeScan(storage::PartitionedDataset* dataset,
                                        storage::ScanBounds bounds,
                                        storage::column::Projection projection) {
  OperatorDescriptor op;
  op.name = "btree-range-scan(" + dataset->def().name + ")";
  std::string ptag = projection.ToString();
  if (!ptag.empty()) op.name += " " + ptag;
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 0;
  auto shared = std::make_shared<storage::ScanBounds>(std::move(bounds));
  auto proj = std::make_shared<storage::column::Projection>(std::move(projection));
  op.factory = Lambda([dataset, shared, proj](int p,
                                              const std::vector<InChannel*>&,
                                              Emitter* out) {
    storage::column::ProjectedScanStats stats;
    Status st = dataset->partition(static_cast<uint32_t>(p))
                    ->ProjectedScan(*shared, *proj,
                                    [&](const Value& rec) {
                                      out->Push({rec});
                                      return Status::OK();
                                    },
                                    &stats);
    out->AddBytesRead(stats.bytes_read);
    return st;
  });
  return op;
}

OperatorDescriptor MakePrimarySearch(storage::PartitionedDataset* dataset,
                                     txn::TxnManager* txns,
                                     std::vector<int> key_columns, bool locked) {
  OperatorDescriptor op;
  op.name = std::string("btree-search(") + dataset->def().name + ".primary)";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 1;
  op.factory = Lambda([dataset, txns, key_columns, locked](
                          int, const std::vector<InChannel*>& in,
                          Emitter* out) {
    // One implicit read transaction per task; S locks release at commit.
    txn::TxnId t = locked ? txns->Begin() : 0;
    Status st = ForEachInput(in[0], [&](Tuple& tuple) {
      storage::CompositeKey pk;
      for (int c : key_columns) pk.push_back(tuple[static_cast<size_t>(c)]);
      bool found = false;
      Value rec;
      uint32_t part = dataset->PartitionOf(pk);
      if (locked) {
        ASTERIX_RETURN_NOT_OK(
            dataset->partition(part)->LockedLookup(t, pk, &found, &rec));
      } else {
        ASTERIX_RETURN_NOT_OK(
            dataset->partition(part)->PointLookup(pk, &found, &rec));
      }
      if (found) {
        Tuple o = tuple;
        o.push_back(std::move(rec));
        out->Push(std::move(o));
      }
      return Status::OK();
    });
    // Read-only transaction: release the S locks; no WAL record needed.
    if (locked) txns->locks().ReleaseAll(t);
    return st;
  });
  return op;
}

OperatorDescriptor MakeSecondarySearch(storage::PartitionedDataset* dataset,
                                       std::string index_name,
                                       storage::ScanBounds bounds,
                                       size_t pk_arity) {
  OperatorDescriptor op;
  op.name = "btree-search(" + index_name + ")";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 0;
  auto shared = std::make_shared<storage::ScanBounds>(std::move(bounds));
  op.factory = Lambda([dataset, index_name, shared, pk_arity](
                          int p, const std::vector<InChannel*>&, Emitter* out) {
    return dataset->partition(static_cast<uint32_t>(p))
        ->SecondaryRangeScan(index_name, *shared,
                             [&](const storage::IndexEntry& e) {
                               Tuple t(e.key.end() - pk_arity, e.key.end());
                               out->Push(std::move(t));
                               return Status::OK();
                             });
  });
  return op;
}

OperatorDescriptor MakeSecondaryProbe(storage::PartitionedDataset* dataset,
                                      std::string index_name, TupleEval key_eval,
                                      size_t pk_arity) {
  OperatorDescriptor op;
  op.name = "btree-probe(" + index_name + ")";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 1;
  op.factory = Lambda([dataset, index_name, key_eval, pk_arity](
                          int p, const std::vector<InChannel*>& in,
                          Emitter* out) {
    return ForEachInput(in[0], [&](Tuple& tuple) {
      auto key_r = key_eval(tuple);
      if (!key_r.ok()) return key_r.status();
      if (key_r.value().IsUnknown()) return Status::OK();
      storage::ScanBounds b;
      b.lo = storage::CompositeKey{key_r.value()};
      b.hi = b.lo;
      return dataset->partition(static_cast<uint32_t>(p))
          ->SecondaryRangeScan(index_name, b, [&](const storage::IndexEntry& e) {
            Tuple o = tuple;
            o.insert(o.end(), e.key.end() - pk_arity, e.key.end());
            out->Push(std::move(o));
            return Status::OK();
          });
    });
  });
  return op;
}

OperatorDescriptor MakeRTreeSearch(storage::PartitionedDataset* dataset,
                                   std::string index_name, storage::Mbr query,
                                   size_t pk_arity) {
  OperatorDescriptor op;
  op.name = "rtree-search(" + index_name + ")";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 0;
  op.factory = Lambda([dataset, index_name, query, pk_arity](
                          int p, const std::vector<InChannel*>&, Emitter* out) {
    (void)pk_arity;
    return dataset->partition(static_cast<uint32_t>(p))
        ->RTreeSearch(index_name, query, [&](const storage::CompositeKey& pk) {
          out->Push(Tuple(pk.begin(), pk.end()));
          return Status::OK();
        });
  });
  return op;
}

OperatorDescriptor MakeInvertedSearch(storage::PartitionedDataset* dataset,
                                      std::string index_name,
                                      std::vector<std::string> tokens,
                                      size_t min_matches, size_t pk_arity) {
  OperatorDescriptor op;
  op.name = "inverted-search(" + index_name + ")";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 0;
  auto shared = std::make_shared<std::vector<std::string>>(std::move(tokens));
  op.factory = Lambda([dataset, index_name, shared, min_matches, pk_arity](
                          int p, const std::vector<InChannel*>&, Emitter* out) {
    (void)pk_arity;
    auto* ix = dataset->partition(static_cast<uint32_t>(p))
                   ->inverted_index(index_name);
    if (!ix) return Status::NotFound("no inverted index " + index_name);
    return ix->SearchTokensCount(
        *shared, [&](const storage::CompositeKey& pk, size_t count) {
          if (count >= min_matches) out->Push(Tuple(pk.begin(), pk.end()));
          return Status::OK();
        });
  });
  return op;
}

OperatorDescriptor MakeSelect(int parallelism, TupleEval predicate) {
  OperatorDescriptor op;
  op.name = "select";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.factory = Lambda([predicate](int, const std::vector<InChannel*>& in,
                                  Emitter* out) {
    return ForEachInput(in[0], [&](Tuple& t) {
      auto v = predicate(t);
      if (!v.ok()) return v.status();
      if (functions::ValueToTri(v.value()) == functions::Tri::kTrue) {
        out->Push(std::move(t));
      }
      return Status::OK();
    });
  });
  return op;
}

OperatorDescriptor MakeAssign(int parallelism, std::vector<TupleEval> exprs) {
  OperatorDescriptor op;
  op.name = "assign";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.factory = Lambda([exprs](int, const std::vector<InChannel*>& in,
                              Emitter* out) {
    return ForEachInput(in[0], [&](Tuple& t) {
      for (const auto& e : exprs) {
        auto v = e(t);
        if (!v.ok()) return v.status();
        t.push_back(v.take());
      }
      out->Push(std::move(t));
      return Status::OK();
    });
  });
  return op;
}

OperatorDescriptor MakeProject(int parallelism, std::vector<int> columns) {
  OperatorDescriptor op;
  op.name = "project";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.factory = Lambda([columns](int, const std::vector<InChannel*>& in,
                                Emitter* out) {
    return ForEachInput(in[0], [&](Tuple& t) {
      Tuple o;
      o.reserve(columns.size());
      for (int c : columns) o.push_back(t[static_cast<size_t>(c)]);
      out->Push(std::move(o));
      return Status::OK();
    });
  });
  return op;
}

namespace {

// Serialized sorted run on disk for the external sort. Tuples are written
// as (varint column count, schemaless values); the reader streams them
// back in order.
class SortRun {
 public:
  static Result<SortRun> Write(const std::string& path,
                               const std::vector<Tuple>& tuples) {
    BytesWriter w;
    for (const auto& t : tuples) {
      w.PutVarint(t.size());
      for (const auto& v : t) adm::SerializeValue(v, &w);
    }
    ASTERIX_RETURN_NOT_OK(env::WriteFileAtomic(path, w.data().data(), w.size()));
    SortRun run;
    run.path_ = path;
    run.count_ = tuples.size();
    return run;
  }

  Status Open() {
    ASTERIX_RETURN_NOT_OK(env::ReadFile(path_, &bytes_));
    reader_ = std::make_unique<BytesReader>(bytes_.data(), bytes_.size());
    return Advance();
  }

  bool exhausted() const { return exhausted_; }
  const Tuple& head() const { return head_; }

  Status Advance() {
    if (remaining_ == 0) {
      exhausted_ = true;
      return Status::OK();
    }
    uint64_t cols;
    ASTERIX_RETURN_NOT_OK(reader_->GetVarint(&cols));
    head_.clear();
    head_.reserve(cols);
    for (uint64_t i = 0; i < cols; ++i) {
      Value v;
      ASTERIX_RETURN_NOT_OK(adm::DeserializeValue(reader_.get(), &v));
      head_.push_back(std::move(v));
    }
    --remaining_;
    return Status::OK();
  }

  void Remove() { env::RemoveFile(path_); }

 private:
  friend class SortRunInit;
  std::string path_;
  size_t count_ = 0;
  size_t remaining_ = 0;
  std::vector<uint8_t> bytes_;
  std::unique_ptr<BytesReader> reader_;
  Tuple head_;
  bool exhausted_ = false;

 public:
  void PrepareRead() { remaining_ = count_; }
};

}  // namespace

OperatorDescriptor MakeSort(int parallelism, TupleCompare compare,
                            std::optional<size_t> limit,
                            size_t spill_budget_tuples) {
  OperatorDescriptor op;
  op.name = "sort";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.blocking_ports = {0};
  op.factory = Lambda([compare, limit, spill_budget_tuples](
                          int partition, const std::vector<InChannel*>& in,
                          Emitter* out) {
    // External merge sort: sorted runs spill to disk once the in-memory
    // budget is hit; a final k-way merge streams the global order.
    std::vector<Tuple> buffer;
    std::vector<SortRun> runs;
    std::string run_dir;
    auto sort_buffer = [&] {
      std::stable_sort(buffer.begin(), buffer.end(),
                       [&](const Tuple& a, const Tuple& b) {
                         return compare(a, b) < 0;
                       });
    };
    auto spill = [&]() -> Status {
      sort_buffer();
      if (run_dir.empty()) run_dir = env::NewScratchDir("sort-spill");
      auto run = SortRun::Write(
          run_dir + "/run" + std::to_string(runs.size()), buffer);
      if (!run.ok()) return run.status();
      runs.push_back(run.take());
      buffer.clear();
      return Status::OK();
    };

    ASTERIX_RETURN_NOT_OK(ForEachInput(in[0], [&](Tuple& t) {
      buffer.push_back(std::move(t));
      if (buffer.size() >= spill_budget_tuples) return spill();
      return Status::OK();
    }));
    (void)partition;

    if (runs.empty()) {
      // Everything fit in memory.
      sort_buffer();
      size_t n = limit.has_value() ? std::min(*limit, buffer.size())
                                   : buffer.size();
      for (size_t i = 0; i < n; ++i) out->Push(std::move(buffer[i]));
      return Status::OK();
    }
    if (!buffer.empty()) ASTERIX_RETURN_NOT_OK(spill());

    // K-way merge over the runs.
    for (auto& run : runs) {
      run.PrepareRead();
      ASTERIX_RETURN_NOT_OK(run.Open());
    }
    size_t emitted = 0;
    while (true) {
      int best = -1;
      for (size_t i = 0; i < runs.size(); ++i) {
        if (runs[i].exhausted()) continue;
        if (best < 0 || compare(runs[i].head(), runs[best].head()) < 0) {
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;
      if (!limit.has_value() || emitted < *limit) {
        out->Push(runs[best].head());
        ++emitted;
      } else {
        break;
      }
      ASTERIX_RETURN_NOT_OK(runs[static_cast<size_t>(best)].Advance());
    }
    for (auto& run : runs) run.Remove();
    if (!run_dir.empty()) env::RemoveAll(run_dir);
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeHybridHashJoin(int parallelism,
                                      std::vector<TupleEval> build_keys,
                                      std::vector<TupleEval> probe_keys,
                                      size_t build_arity, bool left_outer) {
  OperatorDescriptor op;
  op.name = "hybrid-hash-join";
  op.parallelism = parallelism;
  op.num_inputs = 2;
  op.blocking_ports = {0};  // Join Build activity blocks before probing
  op.factory = Lambda([build_keys, probe_keys, build_arity, left_outer](
                          int, const std::vector<InChannel*>& in,
                          Emitter* out) {
    // Build.
    std::unordered_map<std::vector<Value>, std::vector<Tuple>, TupleKeyHash,
                       TupleKeyEq>
        table;
    ASTERIX_RETURN_NOT_OK(ForEachInput(in[0], [&](Tuple& t) {
      auto keys_r = EvalKeys(build_keys, t);
      if (!keys_r.ok()) return keys_r.status();
      bool unknown = false;
      for (const auto& k : keys_r.value()) unknown |= k.IsUnknown();
      if (!unknown) table[keys_r.take()].push_back(std::move(t));
      return Status::OK();
    }));
    // Probe.
    return ForEachInput(in[1], [&](Tuple& t) {
      auto keys_r = EvalKeys(probe_keys, t);
      if (!keys_r.ok()) return keys_r.status();
      bool unknown = false;
      for (const auto& k : keys_r.value()) unknown |= k.IsUnknown();
      auto it = unknown ? table.end() : table.find(keys_r.value());
      if (it != table.end()) {
        for (const auto& build_tuple : it->second) {
          Tuple o = build_tuple;
          o.insert(o.end(), t.begin(), t.end());
          out->Push(std::move(o));
        }
      } else if (left_outer) {
        Tuple o(build_arity, Value::Null());
        o.insert(o.end(), t.begin(), t.end());
        out->Push(std::move(o));
      }
      return Status::OK();
    });
  });
  return op;
}

OperatorDescriptor MakeNestedLoopJoin(int parallelism, TupleEval predicate,
                                      size_t build_arity, bool left_outer) {
  OperatorDescriptor op;
  op.name = "nested-loop-join";
  op.parallelism = parallelism;
  op.num_inputs = 2;
  op.blocking_ports = {0};
  op.factory = Lambda([predicate, build_arity, left_outer](
                          int, const std::vector<InChannel*>& in,
                          Emitter* out) {
    std::vector<Tuple> build;
    ASTERIX_RETURN_NOT_OK(ForEachInput(in[0], [&](Tuple& t) {
      build.push_back(std::move(t));
      return Status::OK();
    }));
    return ForEachInput(in[1], [&](Tuple& t) {
      bool matched = false;
      for (const auto& b : build) {
        Tuple joined = b;
        joined.insert(joined.end(), t.begin(), t.end());
        auto v = predicate(joined);
        if (!v.ok()) return v.status();
        if (functions::ValueToTri(v.value()) == functions::Tri::kTrue) {
          matched = true;
          out->Push(std::move(joined));
        }
      }
      if (!matched && left_outer) {
        Tuple o(build_arity, Value::Null());
        o.insert(o.end(), t.begin(), t.end());
        out->Push(std::move(o));
      }
      return Status::OK();
    });
  });
  return op;
}

namespace {

OperatorDescriptor MakeGroupByImpl(const char* name, int parallelism,
                                   std::vector<TupleEval> keys,
                                   std::vector<AggSpec> aggs, AggMode mode,
                                   bool preclustered) {
  OperatorDescriptor op;
  op.name = name;
  op.parallelism = parallelism;
  op.num_inputs = 1;
  if (!preclustered) op.blocking_ports = {0};
  op.factory = Lambda([keys, aggs, mode, preclustered](
                          int, const std::vector<InChannel*>& in,
                          Emitter* out) {
    size_t key_arity = keys.size();
    if (preclustered) {
      // Streaming: groups arrive contiguously.
      bool has_group = false;
      std::vector<Value> cur_keys;
      GroupState cur = NewGroup(aggs);
      Status st = ForEachInput(in[0], [&](Tuple& t) {
        auto keys_r = EvalKeys(keys, t);
        if (!keys_r.ok()) return keys_r.status();
        bool same_group = has_group &&
                          !TupleKeyLess{}(cur_keys, keys_r.value()) &&
                          !TupleKeyLess{}(keys_r.value(), cur_keys);
        if (has_group && !same_group) {
          out->Push(FinishGroup(cur_keys, &cur, mode));
          cur = NewGroup(aggs);
        }
        cur_keys = keys_r.take();
        has_group = true;
        return FeedGroup(&cur, aggs, t, mode, key_arity);
      });
      ASTERIX_RETURN_NOT_OK(st);
      if (has_group) out->Push(FinishGroup(cur_keys, &cur, mode));
      return Status::OK();
    }
    std::unordered_map<std::vector<Value>, GroupState, TupleKeyHash, TupleKeyEq>
        groups;
    ASTERIX_RETURN_NOT_OK(ForEachInput(in[0], [&](Tuple& t) {
      auto keys_r = EvalKeys(keys, t);
      if (!keys_r.ok()) return keys_r.status();
      auto it = groups.find(keys_r.value());
      if (it == groups.end()) {
        it = groups.emplace(keys_r.take(), NewGroup(aggs)).first;
      }
      return FeedGroup(&it->second, aggs, t, mode, key_arity);
    }));
    for (auto& [gkeys, state] : groups) {
      out->Push(FinishGroup(gkeys, &state, mode));
    }
    return Status::OK();
  });
  return op;
}

}  // namespace

OperatorDescriptor MakeHashGroupBy(int parallelism, std::vector<TupleEval> keys,
                                   std::vector<AggSpec> aggs, AggMode mode) {
  return MakeGroupByImpl("hash-group-by", parallelism, std::move(keys),
                         std::move(aggs), mode, /*preclustered=*/false);
}

OperatorDescriptor MakePreclusteredGroupBy(int parallelism,
                                           std::vector<TupleEval> keys,
                                           std::vector<AggSpec> aggs,
                                           AggMode mode) {
  return MakeGroupByImpl("preclustered-group-by", parallelism, std::move(keys),
                         std::move(aggs), mode, /*preclustered=*/true);
}

OperatorDescriptor MakeAggregate(int parallelism, std::vector<AggSpec> aggs,
                                 AggMode mode) {
  OperatorDescriptor op;
  op.name = mode == AggMode::kLocal    ? "local-aggregate"
            : mode == AggMode::kGlobal ? "global-aggregate"
                                       : "aggregate";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.blocking_ports = {0};
  op.factory = Lambda([aggs, mode](int, const std::vector<InChannel*>& in,
                                   Emitter* out) {
    GroupState g = NewGroup(aggs);
    ASTERIX_RETURN_NOT_OK(ForEachInput(in[0], [&](Tuple& t) {
      return FeedGroup(&g, aggs, t, mode, /*key_arity=*/0);
    }));
    out->Push(FinishGroup({}, &g, mode));
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeBagGroupBy(int parallelism, std::vector<TupleEval> keys,
                                  std::vector<int> collect_columns) {
  OperatorDescriptor op;
  op.name = "bag-group-by";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.blocking_ports = {0};
  op.factory = Lambda([keys, collect_columns](
                          int, const std::vector<InChannel*>& in, Emitter* out) {
    std::unordered_map<std::vector<Value>, std::vector<std::vector<Value>>,
                       TupleKeyHash, TupleKeyEq>
        groups;
    ASTERIX_RETURN_NOT_OK(ForEachInput(in[0], [&](Tuple& t) {
      auto keys_r = EvalKeys(keys, t);
      if (!keys_r.ok()) return keys_r.status();
      auto& bags = groups[keys_r.take()];
      if (bags.empty()) bags.resize(collect_columns.size());
      for (size_t i = 0; i < collect_columns.size(); ++i) {
        bags[i].push_back(t[static_cast<size_t>(collect_columns[i])]);
      }
      return Status::OK();
    }));
    for (auto& [gkeys, bags] : groups) {
      Tuple o = gkeys;
      for (auto& b : bags) o.push_back(Value::Bag(std::move(b)));
      out->Push(std::move(o));
    }
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeDistinct(int parallelism, std::vector<TupleEval> keys) {
  OperatorDescriptor op;
  op.name = "distinct";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.factory = Lambda([keys](int, const std::vector<InChannel*>& in,
                             Emitter* out) {
    std::unordered_map<std::vector<Value>, bool, TupleKeyHash, TupleKeyEq> seen;
    return ForEachInput(in[0], [&](Tuple& t) {
      if (keys.empty()) {
        if (seen.emplace(t, true).second) out->Push(std::move(t));
        return Status::OK();
      }
      auto k = EvalKeys(keys, t);
      if (!k.ok()) return k.status();
      if (seen.emplace(k.take(), true).second) out->Push(std::move(t));
      return Status::OK();
    });
  });
  return op;
}

OperatorDescriptor MakeLimit(size_t limit, size_t offset) {
  OperatorDescriptor op;
  op.name = "limit";
  op.parallelism = 1;
  op.num_inputs = 1;
  op.factory = Lambda([limit, offset](int, const std::vector<InChannel*>& in,
                                      Emitter* out) {
    size_t seen = 0;
    size_t emitted = 0;
    return ForEachInput(in[0], [&](Tuple& t) {
      if (seen++ < offset) return Status::OK();
      if (emitted < limit) {
        ++emitted;
        out->Push(std::move(t));
      }
      // Keep draining: channels are bounded now, so abandoning the input
      // would leave upstream producers blocked on a full channel.
      return Status::OK();
    });
  });
  return op;
}

OperatorDescriptor MakeUnnest(int parallelism, TupleEval collection_eval,
                              bool outer, bool with_position) {
  OperatorDescriptor op;
  op.name = outer ? "outer-unnest" : "unnest";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.factory = Lambda([collection_eval, outer, with_position](
                          int, const std::vector<InChannel*>& in, Emitter* out) {
    return ForEachInput(in[0], [&](Tuple& t) {
      auto v = collection_eval(t);
      if (!v.ok()) return v.status();
      const Value& coll = v.value();
      if (coll.IsList() && !coll.AsList().empty()) {
        int64_t pos = 0;
        for (const auto& item : coll.AsList()) {
          Tuple o = t;
          o.push_back(item);
          if (with_position) o.push_back(Value::Int64(++pos));
          out->Push(std::move(o));
        }
      } else if (!coll.IsList() && !coll.IsUnknown()) {
        Tuple o = std::move(t);
        o.push_back(coll);
        if (with_position) o.push_back(Value::Int64(1));
        out->Push(std::move(o));
      } else if (outer) {
        Tuple o = std::move(t);
        o.push_back(Value::Missing());
        if (with_position) o.push_back(Value::Missing());
        out->Push(std::move(o));
      }
      return Status::OK();
    });
  });
  return op;
}

OperatorDescriptor MakeInsert(storage::PartitionedDataset* dataset,
                              int record_column) {
  OperatorDescriptor op;
  op.name = "insert(" + dataset->def().name + ")";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 1;
  op.factory = Lambda([dataset, record_column](
                          int, const std::vector<InChannel*>& in, Emitter* out) {
    int64_t count = 0;
    ASTERIX_RETURN_NOT_OK(ForEachInput(in[0], [&](Tuple& t) {
      ASTERIX_RETURN_NOT_OK(
          dataset->Insert(t[static_cast<size_t>(record_column)]));
      ++count;
      return Status::OK();
    }));
    out->Push({Value::Int64(count)});
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeDelete(storage::PartitionedDataset* dataset,
                              std::vector<int> key_columns) {
  OperatorDescriptor op;
  op.name = "delete(" + dataset->def().name + ")";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 1;
  op.factory = Lambda([dataset, key_columns](
                          int, const std::vector<InChannel*>& in, Emitter* out) {
    int64_t count = 0;
    ASTERIX_RETURN_NOT_OK(ForEachInput(in[0], [&](Tuple& t) {
      storage::CompositeKey pk;
      for (int c : key_columns) pk.push_back(t[static_cast<size_t>(c)]);
      bool found = false;
      ASTERIX_RETURN_NOT_OK(dataset->DeleteByKey(pk, &found));
      if (found) ++count;
      return Status::OK();
    }));
    out->Push({Value::Int64(count)});
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeResultSink(std::shared_ptr<std::vector<Tuple>> sink) {
  OperatorDescriptor op;
  op.name = "result-sink";
  op.parallelism = 1;
  op.num_inputs = 1;
  auto mu = std::make_shared<std::mutex>();
  op.factory = Lambda([sink, mu](int, const std::vector<InChannel*>& in,
                                 Emitter*) {
    return ForEachInput(in[0], [&](Tuple& t) {
      std::lock_guard<std::mutex> lock(*mu);
      sink->push_back(std::move(t));
      return Status::OK();
    });
  });
  return op;
}

}  // namespace hyracks
}  // namespace asterix
