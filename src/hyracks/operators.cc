#include "hyracks/operators.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <unordered_map>

#include "adm/serde.h"
#include "common/bytes.h"
#include "common/env.h"
#include "functions/aggregates.h"
#include "functions/arith.h"
#include "hyracks/hash_table.h"
#include "hyracks/memory.h"
#include "hyracks/spill.h"

namespace asterix {
namespace hyracks {

using adm::Value;

namespace {

/// Adapter: build an OperatorInstance from a lambda.
class LambdaOperator : public OperatorInstance {
 public:
  using Fn = std::function<Status(const std::vector<InChannel*>&, Emitter*)>;
  explicit LambdaOperator(Fn fn) : fn_(std::move(fn)) {}
  Status Run(const std::vector<InChannel*>& inputs, Emitter* out) override {
    return fn_(inputs, out);
  }

 private:
  Fn fn_;
};

OperatorFactory Lambda(std::function<Status(int, const std::vector<InChannel*>&,
                                            Emitter*)> fn) {
  return [fn = std::move(fn)](int partition) {
    return std::make_unique<LambdaOperator>(
        [fn, partition](const std::vector<InChannel*>& in, Emitter* out) {
          return fn(partition, in, out);
        });
  };
}

/// Drains one input channel frame-at-a-time, invoking `fn` per tuple. One
/// channel synchronization buys a whole frame of work, so every operator
/// built on this helper consumes input at frame granularity.
Status ForEachInput(InChannel* in, const std::function<Status(Tuple&)>& fn) {
  Frame frame;
  while (true) {
    auto r = in->NextFrame(&frame);
    if (!r.ok()) return r.status();
    if (!r.value()) return Status::OK();
    for (Tuple& t : frame.tuples) {
      ASTERIX_RETURN_NOT_OK(fn(t));
    }
    if (frame.batch != nullptr) {
      // A columnar batch reached a row-oriented operator: materialize the
      // selected rows, so every operator is a safe vectorization boundary.
      for (uint32_t row : frame.batch->sel.rows) {
        Tuple t{frame.batch->MaterializeRow(row)};
        ASTERIX_RETURN_NOT_OK(fn(t));
      }
    }
  }
}

uint64_t ElapsedUs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

struct TupleKeyLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

struct TupleKeyHash {
  size_t operator()(const std::vector<Value>& k) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& v : k) h = v.Hash(h);
    return static_cast<size_t>(h);
  }
};

struct TupleKeyEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

Result<std::vector<Value>> EvalKeys(const std::vector<TupleEval>& evals,
                                    const Tuple& t) {
  std::vector<Value> keys;
  keys.reserve(evals.size());
  for (const auto& e : evals) {
    auto r = e(t);
    if (!r.ok()) return r.status();
    keys.push_back(r.take());
  }
  return keys;
}

// Group-by core shared by hash and preclustered variants.
struct GroupState {
  std::vector<std::unique_ptr<functions::Aggregator>> aggs;
};

Status FeedGroup(GroupState* g, const std::vector<AggSpec>& specs,
                 const Tuple& t, AggMode mode, size_t key_arity) {
  for (size_t i = 0; i < specs.size(); ++i) {
    if (mode == AggMode::kGlobal) {
      // Partial columns follow the keys in the input layout.
      g->aggs[i]->Combine(t[key_arity + i]);
    } else if (specs[i].input) {
      auto v = specs[i].input(t);
      if (!v.ok()) return v.status();
      g->aggs[i]->Add(v.value());
    } else {
      g->aggs[i]->Add(Value::Int64(1));  // count(*) style
    }
  }
  return Status::OK();
}

Tuple FinishGroup(const std::vector<Value>& keys, GroupState* g, AggMode mode) {
  Tuple out = keys;
  for (auto& a : g->aggs) {
    out.push_back(mode == AggMode::kLocal ? a->Partial() : a->Finish());
  }
  return out;
}

GroupState NewGroup(const std::vector<AggSpec>& specs) {
  GroupState g;
  for (const auto& s : specs) {
    g.aggs.push_back(functions::MakeAggregator(s.function));
  }
  return g;
}

// ---------------------------------------------------------------------------
// Budgeted hash operators (hybrid/Grace join, group-by, distinct).
//
// Shared shape: inputs hash-partition into kSpillFanout partitions by bits of
// a 64-bit hash over the serialized normalized key. Each partition owns a
// SerializedKeyTable (flat open addressing over arena-resident key bytes).
// When the instance's MemoryBudget trips, the largest resident partition is
// evicted wholesale to a SpillRun and further input for it is diverted to
// disk; spilled partitions are recursively re-processed on the next 4 hash
// bits. At kMaxSpillDepth the level builds in memory regardless (termination
// guarantee for all-equal-key skew); each level uses disjoint hash bits, so
// recursion splits what the parent level could not.
// ---------------------------------------------------------------------------

using TupleSink = std::function<Status(Tuple&)>;
using TupleSource = std::function<Status(const TupleSink&)>;

TupleSource ChannelSource(InChannel* in) {
  return [in](const TupleSink& fn) { return ForEachInput(in, fn); };
}

TupleSource RunSource(const SpillRun* run) {
  return [run](const TupleSink& fn) { return run->ForEach(fn); };
}

TupleSource EmptySource() {
  return [](const TupleSink&) { return Status::OK(); };
}

constexpr int kSpillFanout = 16;
constexpr int kSpillHashBits = 4;  // log2(kSpillFanout)
constexpr int kMaxSpillDepth = 4;

size_t SpillPartitionOf(uint64_t hash, int depth) {
  return (hash >> (depth * kSpillHashBits)) & (kSpillFanout - 1);
}

/// Serializes the evaluated key expressions (the whole tuple when `evals` is
/// empty) to the equality-normalized wire form used for hashing and memcmp
/// equality. When `unknown` is non-null it reports whether any key value was
/// Missing/Null (joins drop those; group-by/distinct treat them as values).
Status SerializeKeyOf(const std::vector<TupleEval>& evals, const Tuple& t,
                      BytesWriter* w, bool* unknown) {
  if (evals.empty()) {
    for (const auto& v : t) adm::SerializeNormalizedKey(v, w);
    return Status::OK();
  }
  for (const auto& e : evals) {
    auto r = e(t);
    if (!r.ok()) return r.status();
    if (unknown != nullptr && r.value().IsUnknown()) *unknown = true;
    adm::SerializeNormalizedKey(r.value(), w);
  }
  return Status::OK();
}

/// The spill bookkeeping every budgeted operator instance shares: its budget
/// (null when running unbudgeted), a lazily-created scratch directory, and
/// the counters reported to the emitter at close.
struct SpillContext {
  explicit SpillContext(Emitter* out, const char* scratch_prefix)
      : out(out), budget(out->memory_budget()), scratch(scratch_prefix) {}

  std::string NextRunPath() {
    return scratch.dir() + "/run" + std::to_string(run_seq_++);
  }

  void Report() {
    if (hash_build_bytes > 0) out->AddHashBuildBytes(hash_build_bytes);
    if (spill_bytes > 0 || spilled_partitions > 0) {
      out->AddSpill(spill_bytes, spilled_partitions);
    }
  }

  Emitter* out;
  MemoryBudget* budget;
  ScratchDirGuard scratch;
  uint64_t spill_bytes = 0;
  uint64_t spilled_partitions = 0;
  uint64_t hash_build_bytes = 0;

 private:
  uint64_t run_seq_ = 0;
};

// --- Hybrid/Grace hash join ------------------------------------------------

class GraceHashJoin {
 public:
  GraceHashJoin(const std::vector<TupleEval>* build_keys,
                const std::vector<TupleEval>* probe_keys, size_t build_arity,
                bool left_outer, Emitter* out)
      : build_keys_(build_keys),
        probe_keys_(probe_keys),
        build_arity_(build_arity),
        left_outer_(left_outer),
        ctx_(out, "join-spill") {}

  Status Execute(const TupleSource& build, const TupleSource& probe,
                 int depth);

  void Report() { ctx_.Report(); }

 private:
  struct Partition {
    SerializedKeyTable table;
    std::vector<Tuple> tuples;
    // Chain links: tuple index -> previously inserted tuple with the same
    // key (kNoPayload ends the chain); the table payload is the chain head.
    std::vector<uint32_t> next;
    size_t charged = 0;
    bool spilled = false;
    std::unique_ptr<SpillRun> build_run, probe_run;
  };

  /// Evicts the largest resident partition to disk. Returns false (without
  /// error) when nothing is left to evict.
  Result<bool> SpillVictim(std::vector<Partition>* parts) {
    Partition* victim = nullptr;
    for (auto& p : *parts) {
      if (p.spilled || p.tuples.empty()) continue;
      if (victim == nullptr || p.charged > victim->charged) victim = &p;
    }
    if (victim == nullptr) return false;
    victim->build_run = std::make_unique<SpillRun>(ctx_.NextRunPath());
    for (const Tuple& t : victim->tuples) {
      ASTERIX_RETURN_NOT_OK(victim->build_run->AppendTuple(t));
    }
    if (ctx_.budget != nullptr) ctx_.budget->Release(victim->charged);
    victim->charged = 0;
    victim->spilled = true;
    victim->table = SerializedKeyTable();
    std::vector<Tuple>().swap(victim->tuples);
    std::vector<uint32_t>().swap(victim->next);
    ++ctx_.spilled_partitions;
    return true;
  }

  void EmitOuter(const Tuple& probe_tuple) {
    Tuple o(build_arity_, Value::Null());
    o.insert(o.end(), probe_tuple.begin(), probe_tuple.end());
    ctx_.out->Push(std::move(o));
  }

  const std::vector<TupleEval>* build_keys_;
  const std::vector<TupleEval>* probe_keys_;
  size_t build_arity_;
  bool left_outer_;
  SpillContext ctx_;
};

Status GraceHashJoin::Execute(const TupleSource& build,
                              const TupleSource& probe, int depth) {
  const bool can_spill = ctx_.budget != nullptr && depth < kMaxSpillDepth;
  std::vector<Partition> parts(kSpillFanout);
  BytesWriter key;

  // Build: partition, insert resident, divert to runs once spilled.
  ASTERIX_RETURN_NOT_OK(build([&](Tuple& t) -> Status {
    key.Clear();
    bool unknown = false;
    ASTERIX_RETURN_NOT_OK(SerializeKeyOf(*build_keys_, t, &key, &unknown));
    if (unknown) return Status::OK();  // unknown keys never join
    uint64_t h = Hash64(key.data().data(), key.size());
    Partition& p = parts[SpillPartitionOf(h, depth)];
    if (p.spilled) return p.build_run->AppendTuple(t);
    size_t table_before = p.table.bytes();
    bool inserted;
    uint32_t* head =
        p.table.FindOrInsert(key.data().data(), key.size(), h, &inserted);
    p.next.push_back(*head);
    *head = static_cast<uint32_t>(p.tuples.size());
    size_t delta = p.table.bytes() - table_before + EstimateTupleBytes(t) +
                   sizeof(uint32_t);
    p.tuples.push_back(std::move(t));
    p.charged += delta;
    if (ctx_.budget != nullptr) {
      ctx_.budget->Charge(delta);
      while (can_spill && ctx_.budget->over_budget()) {
        ASTERIX_ASSIGN_OR_RETURN(bool spilled, SpillVictim(&parts));
        if (!spilled) break;
      }
    }
    return Status::OK();
  }));
  for (const Partition& p : parts) {
    if (!p.spilled) ctx_.hash_build_bytes += p.charged;
  }

  // Probe: resident partitions stream matches; spilled ones buffer probes.
  std::vector<uint32_t> chain;
  ASTERIX_RETURN_NOT_OK(probe([&](Tuple& t) -> Status {
    key.Clear();
    bool unknown = false;
    ASTERIX_RETURN_NOT_OK(SerializeKeyOf(*probe_keys_, t, &key, &unknown));
    if (unknown) {
      if (left_outer_) EmitOuter(t);
      return Status::OK();
    }
    uint64_t h = Hash64(key.data().data(), key.size());
    Partition& p = parts[SpillPartitionOf(h, depth)];
    if (p.spilled) {
      if (!p.probe_run) {
        p.probe_run = std::make_unique<SpillRun>(ctx_.NextRunPath());
      }
      return p.probe_run->AppendTuple(t);
    }
    const uint32_t* head = p.table.Find(key.data().data(), key.size(), h);
    if (head != nullptr) {
      // The chain is newest-first; emit matches in build-arrival order.
      chain.clear();
      for (uint32_t i = *head; i != SerializedKeyTable::kNoPayload;
           i = p.next[i]) {
        chain.push_back(i);
      }
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        Tuple o = p.tuples[*it];
        o.insert(o.end(), t.begin(), t.end());
        ctx_.out->Push(std::move(o));
      }
    } else if (left_outer_) {
      EmitOuter(t);
    }
    return Status::OK();
  }));

  // This level's resident state is dead; release it before recursing so the
  // sub-joins inherit the full budget.
  for (auto& p : parts) {
    if (p.spilled) continue;
    if (ctx_.budget != nullptr) ctx_.budget->Release(p.charged);
    p.charged = 0;
    p.table = SerializedKeyTable();
    std::vector<Tuple>().swap(p.tuples);
    std::vector<uint32_t>().swap(p.next);
  }

  for (auto& p : parts) {
    if (!p.spilled) continue;
    ASTERIX_RETURN_NOT_OK(p.build_run->Finish());
    ctx_.spill_bytes += p.build_run->bytes();
    if (p.probe_run) {
      ASTERIX_RETURN_NOT_OK(p.probe_run->Finish());
      ctx_.spill_bytes += p.probe_run->bytes();
    }
    // No probes hit the partition: nothing can join (and outer padding only
    // applies to probe tuples), so the build run is simply dropped.
    if (p.probe_run && !p.probe_run->empty()) {
      ASTERIX_RETURN_NOT_OK(Execute(RunSource(p.build_run.get()),
                                    RunSource(p.probe_run.get()), depth + 1));
    }
    p.build_run->Remove();
    if (p.probe_run) p.probe_run->Remove();
  }
  return Status::OK();
}

}  // namespace

std::function<uint64_t(const Tuple&)> HashOnColumns(std::vector<int> columns) {
  return [columns = std::move(columns)](const Tuple& t) {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (int c : columns) h = t[static_cast<size_t>(c)].Hash(h);
    return h;
  };
}

OperatorDescriptor MakeValueScan(std::vector<Tuple> tuples) {
  OperatorDescriptor op;
  op.name = "value-scan";
  op.parallelism = 1;
  op.num_inputs = 0;
  auto shared = std::make_shared<std::vector<Tuple>>(std::move(tuples));
  op.factory = Lambda([shared](int partition, const std::vector<InChannel*>&,
                               Emitter* out) {
    // Only instance 0 emits, so a misconfigured parallelism cannot
    // duplicate the constants.
    if (partition == 0) {
      for (const auto& t : *shared) out->Push(t);
    }
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeUnion(int parallelism, int num_inputs) {
  OperatorDescriptor op;
  op.name = "union-all";
  op.parallelism = parallelism;
  op.num_inputs = num_inputs;
  op.factory = Lambda([num_inputs](int, const std::vector<InChannel*>& in,
                                   Emitter* out) {
    for (int port = 0; port < num_inputs; ++port) {
      ASTERIX_RETURN_NOT_OK(ForEachInput(in[static_cast<size_t>(port)],
                                         [&](Tuple& t) {
                                           out->Push(std::move(t));
                                           return Status::OK();
                                         }));
    }
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeDatasetScan(storage::PartitionedDataset* dataset,
                                   storage::column::Projection projection) {
  OperatorDescriptor op;
  bool columnar =
      dataset->def().storage_format == storage::StorageFormat::kColumn;
  op.name = std::string(columnar ? "column-scan(" : "scan(") +
            dataset->def().name + ")";
  std::string ptag = projection.ToString();
  if (!ptag.empty()) op.name += " " + ptag;
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 0;
  auto proj = std::make_shared<storage::column::Projection>(std::move(projection));
  op.factory = Lambda([dataset, proj](int p, const std::vector<InChannel*>&,
                                      Emitter* out) {
    storage::column::ProjectedScanStats stats;
    Status st = dataset->partition(static_cast<uint32_t>(p))
                    ->ProjectedScan(storage::ScanBounds{}, *proj,
                                    [&](const Value& rec) {
                                      out->Push({rec});
                                      return Status::OK();
                                    },
                                    &stats);
    out->AddBytesRead(stats.bytes_read);
    return st;
  });
  return op;
}

OperatorDescriptor MakePrimaryRangeScan(storage::PartitionedDataset* dataset,
                                        storage::ScanBounds bounds,
                                        storage::column::Projection projection) {
  OperatorDescriptor op;
  op.name = "btree-range-scan(" + dataset->def().name + ")";
  std::string ptag = projection.ToString();
  if (!ptag.empty()) op.name += " " + ptag;
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 0;
  auto shared = std::make_shared<storage::ScanBounds>(std::move(bounds));
  auto proj = std::make_shared<storage::column::Projection>(std::move(projection));
  op.factory = Lambda([dataset, shared, proj](int p,
                                              const std::vector<InChannel*>&,
                                              Emitter* out) {
    storage::column::ProjectedScanStats stats;
    Status st = dataset->partition(static_cast<uint32_t>(p))
                    ->ProjectedScan(*shared, *proj,
                                    [&](const Value& rec) {
                                      out->Push({rec});
                                      return Status::OK();
                                    },
                                    &stats);
    out->AddBytesRead(stats.bytes_read);
    return st;
  });
  return op;
}

OperatorDescriptor MakePrimarySearch(storage::PartitionedDataset* dataset,
                                     txn::TxnManager* txns,
                                     std::vector<int> key_columns, bool locked) {
  OperatorDescriptor op;
  op.name = std::string("btree-search(") + dataset->def().name + ".primary)";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 1;
  op.factory = Lambda([dataset, txns, key_columns, locked](
                          int, const std::vector<InChannel*>& in,
                          Emitter* out) {
    // One implicit read transaction per task; S locks release at commit.
    txn::TxnId t = locked ? txns->Begin() : 0;
    Status st = ForEachInput(in[0], [&](Tuple& tuple) {
      storage::CompositeKey pk;
      for (int c : key_columns) pk.push_back(tuple[static_cast<size_t>(c)]);
      bool found = false;
      Value rec;
      uint32_t part = dataset->PartitionOf(pk);
      if (locked) {
        ASTERIX_RETURN_NOT_OK(
            dataset->partition(part)->LockedLookup(t, pk, &found, &rec));
      } else {
        ASTERIX_RETURN_NOT_OK(
            dataset->partition(part)->PointLookup(pk, &found, &rec));
      }
      if (found) {
        Tuple o = tuple;
        o.push_back(std::move(rec));
        out->Push(std::move(o));
      }
      return Status::OK();
    });
    // Read-only transaction: release the S locks; no WAL record needed.
    if (locked) txns->locks().ReleaseAll(t);
    return st;
  });
  return op;
}

OperatorDescriptor MakeSecondarySearch(storage::PartitionedDataset* dataset,
                                       std::string index_name,
                                       storage::ScanBounds bounds,
                                       size_t pk_arity) {
  OperatorDescriptor op;
  op.name = "btree-search(" + index_name + ")";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 0;
  auto shared = std::make_shared<storage::ScanBounds>(std::move(bounds));
  op.factory = Lambda([dataset, index_name, shared, pk_arity](
                          int p, const std::vector<InChannel*>&, Emitter* out) {
    return dataset->partition(static_cast<uint32_t>(p))
        ->SecondaryRangeScan(index_name, *shared,
                             [&](const storage::IndexEntry& e) {
                               Tuple t(e.key.end() - pk_arity, e.key.end());
                               out->Push(std::move(t));
                               return Status::OK();
                             });
  });
  return op;
}

OperatorDescriptor MakeSecondaryProbe(storage::PartitionedDataset* dataset,
                                      std::string index_name, TupleEval key_eval,
                                      size_t pk_arity) {
  OperatorDescriptor op;
  op.name = "btree-probe(" + index_name + ")";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 1;
  op.factory = Lambda([dataset, index_name, key_eval, pk_arity](
                          int p, const std::vector<InChannel*>& in,
                          Emitter* out) {
    return ForEachInput(in[0], [&](Tuple& tuple) {
      auto key_r = key_eval(tuple);
      if (!key_r.ok()) return key_r.status();
      if (key_r.value().IsUnknown()) return Status::OK();
      storage::ScanBounds b;
      b.lo = storage::CompositeKey{key_r.value()};
      b.hi = b.lo;
      return dataset->partition(static_cast<uint32_t>(p))
          ->SecondaryRangeScan(index_name, b, [&](const storage::IndexEntry& e) {
            Tuple o = tuple;
            o.insert(o.end(), e.key.end() - pk_arity, e.key.end());
            out->Push(std::move(o));
            return Status::OK();
          });
    });
  });
  return op;
}

OperatorDescriptor MakeRTreeSearch(storage::PartitionedDataset* dataset,
                                   std::string index_name, storage::Mbr query,
                                   size_t pk_arity) {
  OperatorDescriptor op;
  op.name = "rtree-search(" + index_name + ")";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 0;
  op.factory = Lambda([dataset, index_name, query, pk_arity](
                          int p, const std::vector<InChannel*>&, Emitter* out) {
    (void)pk_arity;
    return dataset->partition(static_cast<uint32_t>(p))
        ->RTreeSearch(index_name, query, [&](const storage::CompositeKey& pk) {
          out->Push(Tuple(pk.begin(), pk.end()));
          return Status::OK();
        });
  });
  return op;
}

OperatorDescriptor MakeInvertedSearch(storage::PartitionedDataset* dataset,
                                      std::string index_name,
                                      std::vector<std::string> tokens,
                                      size_t min_matches, size_t pk_arity) {
  OperatorDescriptor op;
  op.name = "inverted-search(" + index_name + ")";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 0;
  auto shared = std::make_shared<std::vector<std::string>>(std::move(tokens));
  op.factory = Lambda([dataset, index_name, shared, min_matches, pk_arity](
                          int p, const std::vector<InChannel*>&, Emitter* out) {
    (void)pk_arity;
    auto* ix = dataset->partition(static_cast<uint32_t>(p))
                   ->inverted_index(index_name);
    if (!ix) return Status::NotFound("no inverted index " + index_name);
    return ix->SearchTokensCount(
        *shared, [&](const storage::CompositeKey& pk, size_t count) {
          if (count >= min_matches) out->Push(Tuple(pk.begin(), pk.end()));
          return Status::OK();
        });
  });
  return op;
}

OperatorDescriptor MakeSelect(int parallelism, TupleEval predicate) {
  OperatorDescriptor op;
  op.name = "select";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.factory = Lambda([predicate](int, const std::vector<InChannel*>& in,
                                  Emitter* out) {
    return ForEachInput(in[0], [&](Tuple& t) {
      auto v = predicate(t);
      if (!v.ok()) return v.status();
      if (functions::ValueToTri(v.value()) == functions::Tri::kTrue) {
        out->Push(std::move(t));
      }
      return Status::OK();
    });
  });
  return op;
}

OperatorDescriptor MakeAssign(int parallelism, std::vector<TupleEval> exprs) {
  OperatorDescriptor op;
  op.name = "assign";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.factory = Lambda([exprs](int, const std::vector<InChannel*>& in,
                              Emitter* out) {
    return ForEachInput(in[0], [&](Tuple& t) {
      for (const auto& e : exprs) {
        auto v = e(t);
        if (!v.ok()) return v.status();
        t.push_back(v.take());
      }
      out->Push(std::move(t));
      return Status::OK();
    });
  });
  return op;
}

OperatorDescriptor MakeProject(int parallelism, std::vector<int> columns) {
  OperatorDescriptor op;
  op.name = "project";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.factory = Lambda([columns](int, const std::vector<InChannel*>& in,
                                Emitter* out) {
    return ForEachInput(in[0], [&](Tuple& t) {
      Tuple o;
      o.reserve(columns.size());
      for (int c : columns) o.push_back(t[static_cast<size_t>(c)]);
      out->Push(std::move(o));
      return Status::OK();
    });
  });
  return op;
}

namespace {

// Serialized sorted run on disk for the external sort, in the shared spill
// tuple format (varint column count + schemaless values); the reader streams
// tuples back in order.
class SortRun {
 public:
  static Result<SortRun> Write(const std::string& path,
                               const std::vector<Tuple>& tuples) {
    BytesWriter w;
    for (const auto& t : tuples) SerializeTuple(t, &w);
    ASTERIX_RETURN_NOT_OK(env::WriteFileAtomic(path, w.data().data(), w.size()));
    SortRun run;
    run.path_ = path;
    run.count_ = tuples.size();
    run.file_bytes_ = w.size();
    return run;
  }

  Status Open() {
    ASTERIX_RETURN_NOT_OK(env::ReadFile(path_, &bytes_));
    reader_ = std::make_unique<BytesReader>(bytes_.data(), bytes_.size());
    return Advance();
  }

  bool exhausted() const { return exhausted_; }
  const Tuple& head() const { return head_; }
  uint64_t file_bytes() const { return file_bytes_; }

  Status Advance() {
    if (remaining_ == 0) {
      exhausted_ = true;
      return Status::OK();
    }
    ASTERIX_RETURN_NOT_OK(DeserializeTuple(reader_.get(), &head_));
    --remaining_;
    return Status::OK();
  }

  void Remove() { env::RemoveFile(path_); }

 private:
  std::string path_;
  size_t count_ = 0;
  size_t remaining_ = 0;
  uint64_t file_bytes_ = 0;
  std::vector<uint8_t> bytes_;
  std::unique_ptr<BytesReader> reader_;
  Tuple head_;
  bool exhausted_ = false;

 public:
  void PrepareRead() { remaining_ = count_; }
};

}  // namespace

OperatorDescriptor MakeSort(int parallelism, TupleCompare compare,
                            std::optional<size_t> limit,
                            size_t spill_budget_tuples) {
  OperatorDescriptor op;
  op.name = "sort";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.blocking_ports = {0};
  op.memory_intensive = true;
  op.factory = Lambda([compare, limit, spill_budget_tuples](
                          int partition, const std::vector<InChannel*>& in,
                          Emitter* out) {
    // External merge sort: sorted runs spill to disk once the in-memory
    // budget — tuple-count cap or the instance's byte budget, whichever
    // trips first — is hit; a final heap-driven k-way merge streams the
    // global order.
    MemoryBudget* budget = out->memory_budget();
    // Floor per run so a degenerate byte budget cannot degrade into one
    // run per tuple (each run costs a file and a merge stream).
    const size_t min_run_tuples = std::min<size_t>(64, spill_budget_tuples);
    std::vector<Tuple> buffer;
    size_t charged = 0;
    std::vector<SortRun> runs;
    ScratchDirGuard scratch("sort-spill");
    auto sort_buffer = [&] {
      std::stable_sort(buffer.begin(), buffer.end(),
                       [&](const Tuple& a, const Tuple& b) {
                         return compare(a, b) < 0;
                       });
    };
    auto spill = [&]() -> Status {
      sort_buffer();
      auto run = SortRun::Write(
          scratch.dir() + "/run" + std::to_string(runs.size()), buffer);
      if (!run.ok()) return run.status();
      runs.push_back(run.take());
      buffer.clear();
      if (budget != nullptr) budget->Release(charged);
      charged = 0;
      return Status::OK();
    };

    ASTERIX_RETURN_NOT_OK(ForEachInput(in[0], [&](Tuple& t) {
      if (budget != nullptr) {
        size_t d = EstimateTupleBytes(t);
        charged += d;
        budget->Charge(d);
      }
      buffer.push_back(std::move(t));
      if (buffer.size() >= spill_budget_tuples ||
          (budget != nullptr && budget->over_budget() &&
           buffer.size() >= min_run_tuples)) {
        return spill();
      }
      return Status::OK();
    }));
    (void)partition;

    if (runs.empty()) {
      // Everything fit in memory.
      sort_buffer();
      size_t n = limit.has_value() ? std::min(*limit, buffer.size())
                                   : buffer.size();
      for (size_t i = 0; i < n; ++i) out->Push(std::move(buffer[i]));
      if (budget != nullptr) budget->Release(charged);
      return Status::OK();
    }
    if (!buffer.empty()) ASTERIX_RETURN_NOT_OK(spill());

    uint64_t run_bytes = 0;
    for (const auto& run : runs) run_bytes += run.file_bytes();
    out->AddSpill(run_bytes, runs.size());

    // K-way merge: a binary heap of run heads replaces the O(k) scan per
    // output tuple. Ties break toward the earlier run, preserving the
    // stable order sequential spilling produced.
    for (auto& run : runs) {
      run.PrepareRead();
      ASTERIX_RETURN_NOT_OK(run.Open());
    }
    auto heap_after = [&](size_t a, size_t b) {
      int c = compare(runs[a].head(), runs[b].head());
      if (c != 0) return c > 0;  // larger head pops later
      return a > b;
    };
    std::vector<size_t> heap;
    for (size_t i = 0; i < runs.size(); ++i) {
      if (!runs[i].exhausted()) heap.push_back(i);
    }
    std::make_heap(heap.begin(), heap.end(), heap_after);
    size_t emitted = 0;
    while (!heap.empty() && (!limit.has_value() || emitted < *limit)) {
      std::pop_heap(heap.begin(), heap.end(), heap_after);
      size_t best = heap.back();
      heap.pop_back();
      out->Push(runs[best].head());
      ++emitted;
      ASTERIX_RETURN_NOT_OK(runs[best].Advance());
      if (!runs[best].exhausted()) {
        heap.push_back(best);
        std::push_heap(heap.begin(), heap.end(), heap_after);
      }
    }
    for (auto& run : runs) run.Remove();
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeHybridHashJoin(int parallelism,
                                      std::vector<TupleEval> build_keys,
                                      std::vector<TupleEval> probe_keys,
                                      size_t build_arity, bool left_outer) {
  OperatorDescriptor op;
  op.name = "hybrid-hash-join";
  op.parallelism = parallelism;
  op.num_inputs = 2;
  op.blocking_ports = {0};  // Join Build activity blocks before probing
  op.memory_intensive = true;
  op.factory = Lambda([build_keys, probe_keys, build_arity, left_outer](
                          int, const std::vector<InChannel*>& in,
                          Emitter* out) {
    GraceHashJoin join(&build_keys, &probe_keys, build_arity, left_outer, out);
    Status st =
        join.Execute(ChannelSource(in[0]), ChannelSource(in[1]), /*depth=*/0);
    join.Report();
    return st;
  });
  return op;
}

namespace {

// --- Budgeted block nested-loop join ---------------------------------------
//
// Classic block-NLJ: build tuples fill one budget-bounded resident block;
// overflow diverts to a build run. The probe side streams once against the
// resident block — and, when anything overflowed, is copied to a probe run
// so each further build block (reloaded from the run) can re-scan it.
// Left-outer emission is deferred behind per-probe matched flags: a probe
// tuple whose only match lives in a late block must not be emitted
// null-padded after an early block misses it.
class BlockNestedLoopJoin {
 public:
  BlockNestedLoopJoin(const TupleEval* predicate, size_t build_arity,
                      bool left_outer, Emitter* out)
      : predicate_(predicate),
        build_arity_(build_arity),
        left_outer_(left_outer),
        ctx_(out, "nlj-spill") {}

  Status Execute(InChannel* build_in, InChannel* probe_in);

  void Report() { ctx_.Report(); }

 private:
  /// Tests one (build, probe) pair, pushing the joined tuple on a match.
  Result<bool> Match(const Tuple& b, const Tuple& p) {
    Tuple joined = b;
    joined.insert(joined.end(), p.begin(), p.end());
    auto v = (*predicate_)(joined);
    if (!v.ok()) return v.status();
    if (functions::ValueToTri(v.value()) != functions::Tri::kTrue) return false;
    ctx_.out->Push(std::move(joined));
    return true;
  }

  const TupleEval* predicate_;
  size_t build_arity_;
  bool left_outer_;
  SpillContext ctx_;
};

Status BlockNestedLoopJoin::Execute(InChannel* build_in, InChannel* probe_in) {
  MemoryBudget* budget = ctx_.budget;
  std::vector<Tuple> block;
  size_t charged = 0;
  std::unique_ptr<SpillRun> build_run;

  // Build: resident until the budget trips, everything after to the run.
  ASTERIX_RETURN_NOT_OK(ForEachInput(build_in, [&](Tuple& t) {
    if (budget != nullptr && budget->over_budget() && !block.empty()) {
      if (!build_run) {
        build_run = std::make_unique<SpillRun>(ctx_.NextRunPath());
      }
      return build_run->AppendTuple(t);
    }
    if (budget != nullptr) {
      size_t d = EstimateTupleBytes(t);
      charged += d;
      budget->Charge(d);
    }
    block.push_back(std::move(t));
    return Status::OK();
  }));

  std::unique_ptr<SpillRun> probe_run;
  std::vector<bool> matched;  // per probe-run position, across all blocks
  if (build_run) {
    ASTERIX_RETURN_NOT_OK(build_run->Finish());
    ctx_.spill_bytes += build_run->bytes();
    ++ctx_.spilled_partitions;
    probe_run = std::make_unique<SpillRun>(ctx_.NextRunPath());
  }

  // Probe once against the resident block. With no overflow this is the
  // whole join and left-outer tuples can be emitted immediately.
  ASTERIX_RETURN_NOT_OK(ForEachInput(probe_in, [&](Tuple& t) -> Status {
    bool hit = false;
    for (const auto& b : block) {
      ASTERIX_ASSIGN_OR_RETURN(bool m, Match(b, t));
      hit = hit || m;
    }
    if (probe_run) {
      matched.push_back(hit);
      return probe_run->AppendTuple(t);
    }
    if (!hit && left_outer_) {
      Tuple o(build_arity_, Value::Null());
      o.insert(o.end(), t.begin(), t.end());
      ctx_.out->Push(std::move(o));
    }
    return Status::OK();
  }));

  if (!probe_run) {
    if (budget != nullptr) budget->Release(charged);
    return Status::OK();
  }
  ASTERIX_RETURN_NOT_OK(probe_run->Finish());
  ctx_.spill_bytes += probe_run->bytes();
  std::vector<Tuple>().swap(block);
  if (budget != nullptr) budget->Release(charged);
  charged = 0;

  // Remaining build blocks: load a budget's worth from the run (the scan
  // skips records outside the window), re-scan the probe run against it.
  uint64_t offset = 0;
  const uint64_t overflow = build_run->records();
  while (offset < overflow) {
    uint64_t idx = 0;
    uint64_t loaded = 0;
    ASTERIX_RETURN_NOT_OK(build_run->ForEach([&](Tuple& t) {
      uint64_t i = idx++;
      if (i < offset) return Status::OK();
      // The first tuple always loads, so each pass strictly advances.
      if (!block.empty() && budget != nullptr && budget->over_budget()) {
        return Status::OK();
      }
      if (budget != nullptr) {
        size_t d = EstimateTupleBytes(t);
        charged += d;
        budget->Charge(d);
      }
      block.push_back(std::move(t));
      ++loaded;
      return Status::OK();
    }));
    offset += loaded;
    uint64_t pidx = 0;
    ASTERIX_RETURN_NOT_OK(probe_run->ForEach([&](Tuple& t) -> Status {
      uint64_t i = pidx++;
      bool hit = false;
      for (const auto& b : block) {
        ASTERIX_ASSIGN_OR_RETURN(bool m, Match(b, t));
        hit = hit || m;
      }
      if (hit) matched[i] = true;
      return Status::OK();
    }));
    std::vector<Tuple>().swap(block);
    if (budget != nullptr) budget->Release(charged);
    charged = 0;
  }

  if (left_outer_) {
    uint64_t pidx = 0;
    ASTERIX_RETURN_NOT_OK(probe_run->ForEach([&](Tuple& t) {
      if (!matched[pidx++]) {
        Tuple o(build_arity_, Value::Null());
        o.insert(o.end(), t.begin(), t.end());
        ctx_.out->Push(std::move(o));
      }
      return Status::OK();
    }));
  }
  build_run->Remove();
  probe_run->Remove();
  return Status::OK();
}

}  // namespace

OperatorDescriptor MakeNestedLoopJoin(int parallelism, TupleEval predicate,
                                      size_t build_arity, bool left_outer) {
  OperatorDescriptor op;
  op.name = "nested-loop-join";
  op.parallelism = parallelism;
  op.num_inputs = 2;
  op.blocking_ports = {0};
  op.memory_intensive = true;  // buffers the build side
  op.factory = Lambda([predicate, build_arity, left_outer](
                          int, const std::vector<InChannel*>& in,
                          Emitter* out) {
    BlockNestedLoopJoin join(&predicate, build_arity, left_outer, out);
    Status st = join.Execute(in[0], in[1]);
    join.Report();
    return st;
  });
  return op;
}

namespace {

// --- Budgeted hash group-by ------------------------------------------------
//
// Spills group state, not raw input: when a partition is evicted, each of
// its groups is written as one partial tuple [keys..., Partial()...] (the
// same layout the local/global aggregation split ships over the network) and
// reloaded at the next recursion level via Aggregator::Combine. Raw input
// arriving for an already-spilled partition goes to a second run unchanged.
class SpillingHashGroupBy {
 public:
  SpillingHashGroupBy(const std::vector<TupleEval>* keys,
                      const std::vector<AggSpec>* aggs, AggMode mode,
                      Emitter* out)
      : keys_(keys), aggs_(aggs), mode_(mode), ctx_(out, "group-spill") {}

  /// `raw` feeds input tuples in the operator's own mode; `partials` feeds
  /// previously spilled [keys..., Partial()...] tuples (combined regardless
  /// of mode).
  Status Execute(const TupleSource& raw, const TupleSource& partials,
                 int depth);

  void Report() { ctx_.Report(); }

 private:
  struct Partition {
    SerializedKeyTable table;  // payload = index into group_keys/groups
    std::vector<std::vector<Value>> group_keys;
    std::vector<GroupState> groups;
    size_t charged = 0;
    bool spilled = false;
    std::unique_ptr<SpillRun> raw_run, partial_run;
  };

  Status Feed(std::vector<Partition>* parts, Tuple& t, bool is_partial,
              int depth, bool can_spill) {
    // Partial tuples carry their key VALUES as the leading columns (the
    // spill/kLocal layout); the key expressions only apply to raw input.
    std::vector<Value> key_values;
    if (is_partial) {
      key_values.assign(t.begin(),
                        t.begin() + static_cast<ptrdiff_t>(keys_->size()));
    } else {
      auto keys_r = EvalKeys(*keys_, t);
      if (!keys_r.ok()) return keys_r.status();
      key_values = keys_r.take();
    }
    key_.Clear();
    for (const auto& v : key_values) {
      adm::SerializeNormalizedKey(v, &key_);
    }
    uint64_t h = Hash64(key_.data().data(), key_.size());
    Partition& p = (*parts)[SpillPartitionOf(h, depth)];
    if (p.spilled) {
      auto& run = is_partial ? p.partial_run : p.raw_run;
      if (!run) run = std::make_unique<SpillRun>(ctx_.NextRunPath());
      return run->AppendTuple(t);
    }
    size_t table_before = p.table.bytes();
    bool inserted;
    uint32_t* slot =
        p.table.FindOrInsert(key_.data().data(), key_.size(), h, &inserted);
    if (inserted) {
      *slot = static_cast<uint32_t>(p.groups.size());
      size_t delta = p.table.bytes() - table_before +
                     EstimateTupleBytes(key_values) + kGroupStateBytes +
                     aggs_->size() * kAggregatorBytes;
      p.group_keys.push_back(std::move(key_values));
      p.groups.push_back(NewGroup(*aggs_));
      p.charged += delta;
      if (ctx_.budget != nullptr) ctx_.budget->Charge(delta);
    }
    // Feed before any eviction so a spilled partial always reflects this
    // tuple; eviction (below) may take this very partition.
    ASTERIX_RETURN_NOT_OK(FeedGroup(&p.groups[*slot], *aggs_, t,
                                    is_partial ? AggMode::kGlobal : mode_,
                                    keys_->size()));
    if (inserted && ctx_.budget != nullptr) {
      while (can_spill && ctx_.budget->over_budget()) {
        ASTERIX_ASSIGN_OR_RETURN(bool spilled, SpillVictim(parts));
        if (!spilled) break;
      }
    }
    return Status::OK();
  }

  Result<bool> SpillVictim(std::vector<Partition>* parts) {
    Partition* victim = nullptr;
    for (auto& p : *parts) {
      if (p.spilled || p.groups.empty()) continue;
      if (victim == nullptr || p.charged > victim->charged) victim = &p;
    }
    if (victim == nullptr) return false;
    victim->partial_run = std::make_unique<SpillRun>(ctx_.NextRunPath());
    for (size_t i = 0; i < victim->groups.size(); ++i) {
      // kLocal emission = [keys..., Partial()...], the spill format.
      Tuple partial = FinishGroup(victim->group_keys[i], &victim->groups[i],
                                  AggMode::kLocal);
      ASTERIX_RETURN_NOT_OK(victim->partial_run->AppendTuple(partial));
    }
    if (ctx_.budget != nullptr) ctx_.budget->Release(victim->charged);
    victim->charged = 0;
    victim->spilled = true;
    victim->table = SerializedKeyTable();
    std::vector<std::vector<Value>>().swap(victim->group_keys);
    std::vector<GroupState>().swap(victim->groups);
    ++ctx_.spilled_partitions;
    return true;
  }

  // Aggregator state is opaque; charge a flat estimate per group/agg.
  static constexpr size_t kGroupStateBytes = 64;
  static constexpr size_t kAggregatorBytes = 96;

  const std::vector<TupleEval>* keys_;
  const std::vector<AggSpec>* aggs_;
  AggMode mode_;
  SpillContext ctx_;
  BytesWriter key_;
};

Status SpillingHashGroupBy::Execute(const TupleSource& raw,
                                    const TupleSource& partials, int depth) {
  const bool can_spill = ctx_.budget != nullptr && depth < kMaxSpillDepth;
  std::vector<Partition> parts(kSpillFanout);
  ASTERIX_RETURN_NOT_OK(partials([&](Tuple& t) {
    return Feed(&parts, t, /*is_partial=*/true, depth, can_spill);
  }));
  ASTERIX_RETURN_NOT_OK(raw([&](Tuple& t) {
    return Feed(&parts, t, /*is_partial=*/false, depth, can_spill);
  }));

  // Resident groups finish here; then free them before recursing.
  for (auto& p : parts) {
    if (p.spilled) continue;
    for (size_t i = 0; i < p.groups.size(); ++i) {
      ctx_.out->Push(FinishGroup(p.group_keys[i], &p.groups[i], mode_));
    }
    ctx_.hash_build_bytes += p.charged;
    if (ctx_.budget != nullptr) ctx_.budget->Release(p.charged);
    p.charged = 0;
    p.table = SerializedKeyTable();
    std::vector<std::vector<Value>>().swap(p.group_keys);
    std::vector<GroupState>().swap(p.groups);
  }

  for (auto& p : parts) {
    if (!p.spilled) continue;
    if (p.partial_run) {
      ASTERIX_RETURN_NOT_OK(p.partial_run->Finish());
      ctx_.spill_bytes += p.partial_run->bytes();
    }
    if (p.raw_run) {
      ASTERIX_RETURN_NOT_OK(p.raw_run->Finish());
      ctx_.spill_bytes += p.raw_run->bytes();
    }
    ASTERIX_RETURN_NOT_OK(Execute(
        p.raw_run ? RunSource(p.raw_run.get()) : EmptySource(),
        p.partial_run ? RunSource(p.partial_run.get()) : EmptySource(),
        depth + 1));
    if (p.raw_run) p.raw_run->Remove();
    if (p.partial_run) p.partial_run->Remove();
  }
  return Status::OK();
}

OperatorDescriptor MakeGroupByImpl(const char* name, int parallelism,
                                   std::vector<TupleEval> keys,
                                   std::vector<AggSpec> aggs, AggMode mode,
                                   bool preclustered) {
  OperatorDescriptor op;
  op.name = name;
  op.parallelism = parallelism;
  op.num_inputs = 1;
  if (!preclustered) {
    op.blocking_ports = {0};
    op.memory_intensive = true;  // hash table over all groups
  }
  op.factory = Lambda([keys, aggs, mode, preclustered](
                          int, const std::vector<InChannel*>& in,
                          Emitter* out) {
    size_t key_arity = keys.size();
    if (preclustered) {
      // Streaming: groups arrive contiguously.
      bool has_group = false;
      std::vector<Value> cur_keys;
      GroupState cur = NewGroup(aggs);
      Status st = ForEachInput(in[0], [&](Tuple& t) {
        auto keys_r = EvalKeys(keys, t);
        if (!keys_r.ok()) return keys_r.status();
        bool same_group = has_group &&
                          !TupleKeyLess{}(cur_keys, keys_r.value()) &&
                          !TupleKeyLess{}(keys_r.value(), cur_keys);
        if (has_group && !same_group) {
          out->Push(FinishGroup(cur_keys, &cur, mode));
          cur = NewGroup(aggs);
        }
        cur_keys = keys_r.take();
        has_group = true;
        return FeedGroup(&cur, aggs, t, mode, key_arity);
      });
      ASTERIX_RETURN_NOT_OK(st);
      if (has_group) out->Push(FinishGroup(cur_keys, &cur, mode));
      return Status::OK();
    }
    (void)key_arity;
    SpillingHashGroupBy grouper(&keys, &aggs, mode, out);
    Status st =
        grouper.Execute(ChannelSource(in[0]), EmptySource(), /*depth=*/0);
    grouper.Report();
    return st;
  });
  return op;
}

// --- Budgeted bag group-by -------------------------------------------------
//
// Same spill scheme as SpillingHashGroupBy, with the group state being the
// collected bags themselves. An evicted partition writes each group as one
// [keys..., Bag(col0...), Bag(col1...)] tuple — exactly the operator's
// output shape — and the recursion level concatenates bags out of such
// partial tuples (bag collection is trivially combinable); raw input
// arriving for an already-spilled partition diverts to a second run
// unchanged.
class SpillingBagGroupBy {
 public:
  SpillingBagGroupBy(const std::vector<TupleEval>* keys,
                     const std::vector<int>* collect_columns, Emitter* out)
      : keys_(keys), collect_(collect_columns), ctx_(out, "bag-group-spill") {}

  Status Execute(const TupleSource& raw, const TupleSource& partials,
                 int depth);

  void Report() { ctx_.Report(); }

 private:
  struct Partition {
    SerializedKeyTable table;  // payload = index into group_keys/bags
    std::vector<std::vector<Value>> group_keys;
    std::vector<std::vector<std::vector<Value>>> bags;  // [group][col][elem]
    size_t charged = 0;
    bool spilled = false;
    std::unique_ptr<SpillRun> raw_run, partial_run;
  };

  /// The output (and spill-partial) tuple for one group; consumes the bags.
  Tuple MakeOutput(const std::vector<Value>& gkeys,
                   std::vector<std::vector<Value>>* bags) const {
    Tuple o = gkeys;
    for (auto& b : *bags) o.push_back(Value::Bag(std::move(b)));
    return o;
  }

  Status Feed(std::vector<Partition>* parts, Tuple& t, bool is_partial,
              int depth, bool can_spill) {
    // Partial tuples carry their key VALUES as the leading columns (the
    // output layout); key expressions only apply to raw input.
    std::vector<Value> key_values;
    if (is_partial) {
      key_values.assign(t.begin(),
                        t.begin() + static_cast<ptrdiff_t>(keys_->size()));
    } else {
      auto keys_r = EvalKeys(*keys_, t);
      if (!keys_r.ok()) return keys_r.status();
      key_values = keys_r.take();
    }
    key_.Clear();
    for (const auto& v : key_values) {
      adm::SerializeNormalizedKey(v, &key_);
    }
    uint64_t h = Hash64(key_.data().data(), key_.size());
    Partition& p = (*parts)[SpillPartitionOf(h, depth)];
    if (p.spilled) {
      auto& run = is_partial ? p.partial_run : p.raw_run;
      if (!run) run = std::make_unique<SpillRun>(ctx_.NextRunPath());
      return run->AppendTuple(t);
    }
    size_t table_before = p.table.bytes();
    bool inserted;
    uint32_t* slot =
        p.table.FindOrInsert(key_.data().data(), key_.size(), h, &inserted);
    size_t delta = 0;
    if (inserted) {
      *slot = static_cast<uint32_t>(p.bags.size());
      delta += p.table.bytes() - table_before +
               EstimateTupleBytes(key_values) + kGroupOverheadBytes;
      p.group_keys.push_back(std::move(key_values));
      p.bags.emplace_back(collect_->size());
    }
    std::vector<std::vector<Value>>& bags = p.bags[*slot];
    if (is_partial) {
      for (size_t i = 0; i < collect_->size(); ++i) {
        Value& bag = t[keys_->size() + i];
        for (const Value& v : bag.AsList()) {
          delta += EstimateValueBytes(v) + sizeof(Value);
          bags[i].push_back(v);
        }
      }
    } else {
      for (size_t i = 0; i < collect_->size(); ++i) {
        Value& v = t[static_cast<size_t>((*collect_)[i])];
        delta += EstimateValueBytes(v) + sizeof(Value);
        bags[i].push_back(std::move(v));
      }
    }
    // Unlike aggregate group-by, state grows with every fed tuple, so the
    // budget is charged (and checked) per tuple, not just per new group.
    p.charged += delta;
    if (ctx_.budget != nullptr) {
      ctx_.budget->Charge(delta);
      while (can_spill && ctx_.budget->over_budget()) {
        ASTERIX_ASSIGN_OR_RETURN(bool spilled, SpillVictim(parts));
        if (!spilled) break;
      }
    }
    return Status::OK();
  }

  Result<bool> SpillVictim(std::vector<Partition>* parts) {
    Partition* victim = nullptr;
    for (auto& p : *parts) {
      if (p.spilled || p.bags.empty()) continue;
      if (victim == nullptr || p.charged > victim->charged) victim = &p;
    }
    if (victim == nullptr) return false;
    victim->partial_run = std::make_unique<SpillRun>(ctx_.NextRunPath());
    for (size_t i = 0; i < victim->bags.size(); ++i) {
      Tuple partial = MakeOutput(victim->group_keys[i], &victim->bags[i]);
      ASTERIX_RETURN_NOT_OK(victim->partial_run->AppendTuple(partial));
    }
    if (ctx_.budget != nullptr) ctx_.budget->Release(victim->charged);
    victim->charged = 0;
    victim->spilled = true;
    victim->table = SerializedKeyTable();
    std::vector<std::vector<Value>>().swap(victim->group_keys);
    std::vector<std::vector<std::vector<Value>>>().swap(victim->bags);
    ++ctx_.spilled_partitions;
    return true;
  }

  static constexpr size_t kGroupOverheadBytes = 64;

  const std::vector<TupleEval>* keys_;
  const std::vector<int>* collect_;
  SpillContext ctx_;
  BytesWriter key_;
};

Status SpillingBagGroupBy::Execute(const TupleSource& raw,
                                   const TupleSource& partials, int depth) {
  const bool can_spill = ctx_.budget != nullptr && depth < kMaxSpillDepth;
  std::vector<Partition> parts(kSpillFanout);
  ASTERIX_RETURN_NOT_OK(partials([&](Tuple& t) {
    return Feed(&parts, t, /*is_partial=*/true, depth, can_spill);
  }));
  ASTERIX_RETURN_NOT_OK(raw([&](Tuple& t) {
    return Feed(&parts, t, /*is_partial=*/false, depth, can_spill);
  }));

  // Resident groups finish here; then free them before recursing.
  for (auto& p : parts) {
    if (p.spilled) continue;
    for (size_t i = 0; i < p.bags.size(); ++i) {
      ctx_.out->Push(MakeOutput(p.group_keys[i], &p.bags[i]));
    }
    ctx_.hash_build_bytes += p.charged;
    if (ctx_.budget != nullptr) ctx_.budget->Release(p.charged);
    p.charged = 0;
    p.table = SerializedKeyTable();
    std::vector<std::vector<Value>>().swap(p.group_keys);
    std::vector<std::vector<std::vector<Value>>>().swap(p.bags);
  }

  for (auto& p : parts) {
    if (!p.spilled) continue;
    if (p.partial_run) {
      ASTERIX_RETURN_NOT_OK(p.partial_run->Finish());
      ctx_.spill_bytes += p.partial_run->bytes();
    }
    if (p.raw_run) {
      ASTERIX_RETURN_NOT_OK(p.raw_run->Finish());
      ctx_.spill_bytes += p.raw_run->bytes();
    }
    ASTERIX_RETURN_NOT_OK(Execute(
        p.raw_run ? RunSource(p.raw_run.get()) : EmptySource(),
        p.partial_run ? RunSource(p.partial_run.get()) : EmptySource(),
        depth + 1));
    if (p.raw_run) p.raw_run->Remove();
    if (p.partial_run) p.partial_run->Remove();
  }
  return Status::OK();
}

}  // namespace

OperatorDescriptor MakeHashGroupBy(int parallelism, std::vector<TupleEval> keys,
                                   std::vector<AggSpec> aggs, AggMode mode) {
  return MakeGroupByImpl("hash-group-by", parallelism, std::move(keys),
                         std::move(aggs), mode, /*preclustered=*/false);
}

OperatorDescriptor MakePreclusteredGroupBy(int parallelism,
                                           std::vector<TupleEval> keys,
                                           std::vector<AggSpec> aggs,
                                           AggMode mode) {
  return MakeGroupByImpl("preclustered-group-by", parallelism, std::move(keys),
                         std::move(aggs), mode, /*preclustered=*/true);
}

OperatorDescriptor MakeAggregate(int parallelism, std::vector<AggSpec> aggs,
                                 AggMode mode) {
  OperatorDescriptor op;
  op.name = mode == AggMode::kLocal    ? "local-aggregate"
            : mode == AggMode::kGlobal ? "global-aggregate"
                                       : "aggregate";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.blocking_ports = {0};
  op.factory = Lambda([aggs, mode](int, const std::vector<InChannel*>& in,
                                   Emitter* out) {
    GroupState g = NewGroup(aggs);
    ASTERIX_RETURN_NOT_OK(ForEachInput(in[0], [&](Tuple& t) {
      return FeedGroup(&g, aggs, t, mode, /*key_arity=*/0);
    }));
    out->Push(FinishGroup({}, &g, mode));
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeBagGroupBy(int parallelism, std::vector<TupleEval> keys,
                                  std::vector<int> collect_columns) {
  OperatorDescriptor op;
  op.name = "bag-group-by";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.blocking_ports = {0};
  op.memory_intensive = true;  // bags buffer every collected input value
  op.factory = Lambda([keys, collect_columns](
                          int, const std::vector<InChannel*>& in, Emitter* out) {
    SpillingBagGroupBy grouper(&keys, &collect_columns, out);
    Status st =
        grouper.Execute(ChannelSource(in[0]), EmptySource(), /*depth=*/0);
    grouper.Report();
    return st;
  });
  return op;
}

namespace {

// --- Budgeted distinct -----------------------------------------------------
//
// Streaming set semantics over the serialized-key table (the table IS the
// set; no values are stored): the first tuple of each key is emitted as it
// arrives. When a partition is evicted, its already-emitted keys are written
// to the run as raw key-byte markers ahead of the diverted tuples, so the
// recursion level knows which keys must stay suppressed.
class SpillingDistinct {
 public:
  SpillingDistinct(const std::vector<TupleEval>* keys, Emitter* out)
      : keys_(keys), ctx_(out, "distinct-spill") {}

  using Level =
      std::function<Status(const TupleSink&,
                           const std::function<Status(const uint8_t*, size_t)>&)>;

  Status Execute(const Level& source, int depth);

  void Report() { ctx_.Report(); }

 private:
  struct Partition {
    SerializedKeyTable table;  // membership only; payloads unused
    size_t charged = 0;
    bool spilled = false;
    std::unique_ptr<SpillRun> run;
  };

  /// Inserts key bytes into the partition's set. Returns true if new.
  bool Insert(Partition* p, const uint8_t* kb, size_t n, uint64_t h) {
    size_t table_before = p->table.bytes();
    bool inserted;
    p->table.FindOrInsert(kb, n, h, &inserted);
    if (inserted) {
      size_t delta = p->table.bytes() - table_before + 16;
      p->charged += delta;
      if (ctx_.budget != nullptr) ctx_.budget->Charge(delta);
    }
    return inserted;
  }

  Result<bool> SpillVictim(std::vector<Partition>* parts) {
    Partition* victim = nullptr;
    for (auto& p : *parts) {
      if (p.spilled || p.table.empty()) continue;
      if (victim == nullptr || p.charged > victim->charged) victim = &p;
    }
    if (victim == nullptr) return false;
    victim->run = std::make_unique<SpillRun>(ctx_.NextRunPath());
    for (const auto& e : victim->table.entries()) {
      ASTERIX_RETURN_NOT_OK(victim->run->AppendKeyBytes(e.key, e.key_len));
    }
    if (ctx_.budget != nullptr) ctx_.budget->Release(victim->charged);
    victim->charged = 0;
    victim->spilled = true;
    victim->table = SerializedKeyTable();
    ++ctx_.spilled_partitions;
    return true;
  }

  const std::vector<TupleEval>* keys_;
  SpillContext ctx_;
  BytesWriter key_;
};

Status SpillingDistinct::Execute(const Level& source, int depth) {
  const bool can_spill = ctx_.budget != nullptr && depth < kMaxSpillDepth;
  std::vector<Partition> parts(kSpillFanout);
  ASTERIX_RETURN_NOT_OK(source(
      [&](Tuple& t) -> Status {
        key_.Clear();
        ASTERIX_RETURN_NOT_OK(
            SerializeKeyOf(*keys_, t, &key_, /*unknown=*/nullptr));
        uint64_t h = Hash64(key_.data().data(), key_.size());
        Partition& p = parts[SpillPartitionOf(h, depth)];
        if (p.spilled) return p.run->AppendTuple(t);
        if (Insert(&p, key_.data().data(), key_.size(), h)) {
          ctx_.out->Push(std::move(t));
          if (ctx_.budget != nullptr) {
            while (can_spill && ctx_.budget->over_budget()) {
              ASTERIX_ASSIGN_OR_RETURN(bool spilled, SpillVictim(&parts));
              if (!spilled) break;
            }
          }
        }
        return Status::OK();
      },
      [&](const uint8_t* kb, size_t n) -> Status {
        // A key marker from the parent level: mark emitted, never emit.
        uint64_t h = Hash64(kb, n);
        Partition& p = parts[SpillPartitionOf(h, depth)];
        if (p.spilled) return p.run->AppendKeyBytes(kb, n);
        Insert(&p, kb, n, h);
        if (ctx_.budget != nullptr) {
          while (can_spill && ctx_.budget->over_budget()) {
            ASTERIX_ASSIGN_OR_RETURN(bool spilled, SpillVictim(&parts));
            if (!spilled) break;
          }
        }
        return Status::OK();
      }));

  for (auto& p : parts) {
    if (p.spilled) continue;
    ctx_.hash_build_bytes += p.charged;
    if (ctx_.budget != nullptr) ctx_.budget->Release(p.charged);
    p.charged = 0;
    p.table = SerializedKeyTable();
  }
  for (auto& p : parts) {
    if (!p.spilled) continue;
    ASTERIX_RETURN_NOT_OK(p.run->Finish());
    ctx_.spill_bytes += p.run->bytes();
    SpillRun* run = p.run.get();
    ASTERIX_RETURN_NOT_OK(Execute(
        [run](const TupleSink& on_tuple,
              const std::function<Status(const uint8_t*, size_t)>& on_key) {
          return run->ForEach(on_tuple, on_key);
        },
        depth + 1));
    p.run->Remove();
  }
  return Status::OK();
}

}  // namespace

OperatorDescriptor MakeDistinct(int parallelism, std::vector<TupleEval> keys) {
  OperatorDescriptor op;
  op.name = "distinct";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.memory_intensive = true;  // the seen-key set grows with distinct keys
  op.factory = Lambda([keys](int, const std::vector<InChannel*>& in,
                             Emitter* out) {
    SpillingDistinct distinct(&keys, out);
    Status st = distinct.Execute(
        [&in](const TupleSink& on_tuple,
              const std::function<Status(const uint8_t*, size_t)>&) {
          return ForEachInput(in[0], on_tuple);
        },
        /*depth=*/0);
    distinct.Report();
    return st;
  });
  return op;
}

OperatorDescriptor MakeLimit(size_t limit, size_t offset) {
  OperatorDescriptor op;
  op.name = "limit";
  op.parallelism = 1;
  op.num_inputs = 1;
  op.factory = Lambda([limit, offset](int, const std::vector<InChannel*>& in,
                                      Emitter* out) {
    size_t seen = 0;
    size_t emitted = 0;
    return ForEachInput(in[0], [&](Tuple& t) {
      if (seen++ < offset) return Status::OK();
      if (emitted < limit) {
        ++emitted;
        out->Push(std::move(t));
      }
      // Keep draining: channels are bounded now, so abandoning the input
      // would leave upstream producers blocked on a full channel.
      return Status::OK();
    });
  });
  return op;
}

OperatorDescriptor MakeUnnest(int parallelism, TupleEval collection_eval,
                              bool outer, bool with_position) {
  OperatorDescriptor op;
  op.name = outer ? "outer-unnest" : "unnest";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.factory = Lambda([collection_eval, outer, with_position](
                          int, const std::vector<InChannel*>& in, Emitter* out) {
    return ForEachInput(in[0], [&](Tuple& t) {
      auto v = collection_eval(t);
      if (!v.ok()) return v.status();
      const Value& coll = v.value();
      if (coll.IsList() && !coll.AsList().empty()) {
        int64_t pos = 0;
        for (const auto& item : coll.AsList()) {
          Tuple o = t;
          o.push_back(item);
          if (with_position) o.push_back(Value::Int64(++pos));
          out->Push(std::move(o));
        }
      } else if (!coll.IsList() && !coll.IsUnknown()) {
        Tuple o = std::move(t);
        o.push_back(coll);
        if (with_position) o.push_back(Value::Int64(1));
        out->Push(std::move(o));
      } else if (outer) {
        Tuple o = std::move(t);
        o.push_back(Value::Missing());
        if (with_position) o.push_back(Value::Missing());
        out->Push(std::move(o));
      }
      return Status::OK();
    });
  });
  return op;
}

OperatorDescriptor MakeInsert(storage::PartitionedDataset* dataset,
                              int record_column) {
  OperatorDescriptor op;
  op.name = "insert(" + dataset->def().name + ")";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 1;
  op.factory = Lambda([dataset, record_column](
                          int, const std::vector<InChannel*>& in, Emitter* out) {
    int64_t count = 0;
    ASTERIX_RETURN_NOT_OK(ForEachInput(in[0], [&](Tuple& t) {
      ASTERIX_RETURN_NOT_OK(
          dataset->Insert(t[static_cast<size_t>(record_column)]));
      ++count;
      return Status::OK();
    }));
    out->Push({Value::Int64(count)});
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeDelete(storage::PartitionedDataset* dataset,
                              std::vector<int> key_columns) {
  OperatorDescriptor op;
  op.name = "delete(" + dataset->def().name + ")";
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 1;
  op.factory = Lambda([dataset, key_columns](
                          int, const std::vector<InChannel*>& in, Emitter* out) {
    int64_t count = 0;
    ASTERIX_RETURN_NOT_OK(ForEachInput(in[0], [&](Tuple& t) {
      storage::CompositeKey pk;
      for (int c : key_columns) pk.push_back(t[static_cast<size_t>(c)]);
      bool found = false;
      ASTERIX_RETURN_NOT_OK(dataset->DeleteByKey(pk, &found));
      if (found) ++count;
      return Status::OK();
    }));
    out->Push({Value::Int64(count)});
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeResultSink(std::shared_ptr<std::vector<Tuple>> sink) {
  OperatorDescriptor op;
  op.name = "result-sink";
  op.parallelism = 1;
  op.num_inputs = 1;
  auto mu = std::make_shared<std::mutex>();
  op.factory = Lambda([sink, mu](int, const std::vector<InChannel*>& in,
                                 Emitter*) {
    return ForEachInput(in[0], [&](Tuple& t) {
      std::lock_guard<std::mutex> lock(*mu);
      sink->push_back(std::move(t));
      return Status::OK();
    });
  });
  return op;
}

// ---------------------------------------------------------------------------
// Vectorized operators.
// ---------------------------------------------------------------------------

OperatorDescriptor MakeVectorScan(storage::PartitionedDataset* dataset,
                                  storage::column::Projection projection,
                                  storage::ScanBounds bounds) {
  OperatorDescriptor op;
  // Keep "column-scan(name)" as a substring: plan listings and their tests
  // recognize columnar scans by that tag.
  op.name = "vector-column-scan(" + dataset->def().name + ")";
  std::string ptag = projection.ToString();
  if (!ptag.empty()) op.name += " " + ptag;
  op.parallelism = static_cast<int>(dataset->num_partitions());
  op.num_inputs = 0;
  auto proj = std::make_shared<storage::column::Projection>(std::move(projection));
  auto shared = std::make_shared<storage::ScanBounds>(std::move(bounds));
  op.factory = Lambda([dataset, proj, shared](int p,
                                              const std::vector<InChannel*>&,
                                              Emitter* out) {
    auto* part = dataset->partition(static_cast<uint32_t>(p));
    storage::column::ProjectedScanStats stats;
    uint64_t batches = 0, rows_selected = 0, rows_total = 0;
    auto emit =
        [&](const std::shared_ptr<storage::column::ColumnBatch>& batch) {
          if (batch == nullptr || batch->sel.empty()) return Status::OK();
          ++batches;
          rows_selected += batch->sel.size();
          rows_total += batch->num_rows;
          out->PushBatch(batch);
          return Status::OK();
        };
    Status st = part->BatchScan(*shared, *proj, emit, &stats);
    if (st.code() == StatusCode::kNotImplemented) {
      // Not in columnar steady state (memory component, multiple disk
      // components, row format, unresolved fields): assemble projected rows
      // the usual way and re-batch them. Same rows, same order.
      stats = storage::column::ProjectedScanStats{};
      storage::column::BatchBuilder builder(proj->fields);
      st = part->ProjectedScan(*shared, *proj,
                               [&](const Value& rec) {
                                 builder.Add(rec);
                                 if (builder.Full()) {
                                   return emit(builder.Take());
                                 }
                                 return Status::OK();
                               },
                               &stats);
      if (st.ok() && !builder.Empty()) st = emit(builder.Take());
    }
    out->AddBytesRead(stats.bytes_read);
    out->AddBatchStats(batches, rows_selected, rows_total);
    return st;
  });
  return op;
}

OperatorDescriptor MakeVectorSelect(int parallelism,
                                    std::shared_ptr<vector::PredNode> pred,
                                    TupleEval fallback) {
  OperatorDescriptor op;
  op.name = "vector-select";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.factory = Lambda([pred, fallback](int, const std::vector<InChannel*>& in,
                                       Emitter* out) {
    Frame frame;
    uint64_t batches = 0, rows_selected = 0, rows_total = 0, kernel_us = 0;
    while (true) {
      auto r = in[0]->NextFrame(&frame);
      if (!r.ok()) return r.status();
      if (!r.value()) break;
      for (Tuple& t : frame.tuples) {
        auto v = fallback(t);
        if (!v.ok()) return v.status();
        if (functions::ValueToTri(v.value()) == functions::Tri::kTrue) {
          out->Push(std::move(t));
        }
      }
      if (frame.batch != nullptr) {
        ++batches;
        rows_total += frame.batch->sel.size();
        auto t0 = std::chrono::steady_clock::now();
        Status st = vector::Filter(*pred, frame.batch.get());
        kernel_us += ElapsedUs(t0);
        if (!st.ok()) return st;
        rows_selected += frame.batch->sel.size();
        if (!frame.batch->sel.empty()) {
          out->PushBatch(std::move(frame.batch));
        }
      }
    }
    out->AddBatchStats(batches, rows_selected, rows_total);
    out->AddKernelTime(kernel_us);
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeVectorAggregate(int parallelism,
                                       std::vector<VectorAggSpec> aggs,
                                       AggMode mode) {
  OperatorDescriptor op;
  // Substring-compatible with the interpreted names ("local-aggregate" /
  // "aggregate") for plan assertions.
  op.name = mode == AggMode::kLocal ? "vector-local-aggregate"
                                    : "vector-aggregate";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.blocking_ports = {0};
  op.factory = Lambda([aggs, mode](int, const std::vector<InChannel*>& in,
                                   Emitter* out) {
    std::vector<vector::VectorAgg> states;
    states.reserve(aggs.size());
    std::vector<std::string> fields;
    for (const auto& a : aggs) {
      states.emplace_back(a.function, a.field);
      if (!a.field.empty() &&
          std::find(fields.begin(), fields.end(), a.field) == fields.end()) {
        fields.push_back(a.field);
      }
    }
    uint64_t batches = 0, rows = 0, kernel_us = 0;
    auto feed = [&](const storage::column::ColumnBatch& batch) {
      ++batches;
      rows += batch.sel.size();
      auto t0 = std::chrono::steady_clock::now();
      for (auto& s : states) {
        ASTERIX_RETURN_NOT_OK(s.AddBatch(batch));
      }
      kernel_us += ElapsedUs(t0);
      return Status::OK();
    };
    Frame frame;
    Status st = Status::OK();
    while (true) {
      auto r = in[0]->NextFrame(&frame);
      if (!r.ok()) { st = r.status(); break; }
      if (!r.value()) break;
      if (!frame.tuples.empty()) {
        // Row tuples from a non-batch producer: re-batch the records so the
        // same kernels (and the same NULL/MISSING rules) apply.
        storage::column::BatchBuilder builder(fields);
        for (Tuple& t : frame.tuples) builder.Add(std::move(t[0]));
        auto b = builder.Take();
        if (b != nullptr) {
          st = feed(*b);
          if (!st.ok()) break;
        }
      }
      if (frame.batch != nullptr) {
        st = feed(*frame.batch);
        if (!st.ok()) break;
      }
    }
    out->AddBatchStats(batches, rows, rows);
    out->AddKernelTime(kernel_us);
    ASTERIX_RETURN_NOT_OK(st);
    Tuple result;
    result.reserve(states.size());
    for (const auto& s : states) {
      result.push_back(mode == AggMode::kLocal ? s.Partial() : s.Finish());
    }
    out->Push(std::move(result));
    return Status::OK();
  });
  return op;
}

OperatorDescriptor MakeVectorMaterialize(int parallelism) {
  OperatorDescriptor op;
  op.name = "vector-materialize";
  op.parallelism = parallelism;
  op.num_inputs = 1;
  op.factory = Lambda([](int, const std::vector<InChannel*>& in,
                         Emitter* out) {
    Frame frame;
    uint64_t batches = 0, rows = 0;
    while (true) {
      auto r = in[0]->NextFrame(&frame);
      if (!r.ok()) return r.status();
      if (!r.value()) break;
      for (Tuple& t : frame.tuples) out->Push(std::move(t));
      if (frame.batch != nullptr) {
        ++batches;
        rows += frame.batch->sel.size();
        for (uint32_t row : frame.batch->sel.rows) {
          out->Push({frame.batch->MaterializeRow(row)});
        }
      }
    }
    out->AddBatchStats(batches, rows, rows);
    return Status::OK();
  });
  return op;
}

}  // namespace hyracks
}  // namespace asterix
