#include "hyracks/job.h"

#include <algorithm>
#include <map>

namespace asterix {
namespace hyracks {

void Emitter::PushBatch(std::shared_ptr<storage::column::ColumnBatch> batch) {
  if (batch == nullptr) return;
  for (uint32_t row : batch->sel.rows) {
    Push({batch->MaterializeRow(row)});
  }
}

const char* ConnectorTypeName(ConnectorType t) {
  switch (t) {
    case ConnectorType::kOneToOne: return "OneToOne";
    case ConnectorType::kMToNPartitioning: return "MToNPartitioning";
    case ConnectorType::kMToNReplicating: return "MToNReplicating";
    case ConnectorType::kMToNPartitioningMerging: return "MToNPartitioningMerging";
    case ConnectorType::kLocalityAwareMToNPartitioning:
      return "LocalityAwareMToNPartitioning";
    case ConnectorType::kHashPartitioningShuffle: return "HashPartitioningShuffle";
  }
  return "?";
}

int JobSpec::AddOperator(OperatorDescriptor op) {
  op.id = static_cast<int>(operators.size());
  operators.push_back(std::move(op));
  return operators.back().id;
}

int JobSpec::Connect(ConnectorType type, int src_op, int dst_op, int dst_port,
                     std::function<uint64_t(const Tuple&)> hash,
                     TupleCompare merge) {
  ConnectorDescriptor c;
  c.id = static_cast<int>(connectors.size());
  c.type = type;
  c.src_op = src_op;
  c.dst_op = dst_op;
  c.dst_port = dst_port;
  c.partition_hash = std::move(hash);
  c.merge_compare = std::move(merge);
  connectors.push_back(std::move(c));
  return connectors.back().id;
}

const OperatorDescriptor* JobSpec::FindOperator(int id) const {
  for (const auto& op : operators) {
    if (op.id == id) return &op;
  }
  return nullptr;
}

std::string JobSpec::ToString() const {
  // Topological listing sources-first, each operator annotated with its
  // incoming connector edge(s) — mirrors Figure 6's rendering.
  std::string out;
  std::map<int, std::vector<const ConnectorDescriptor*>> incoming;
  for (const auto& c : connectors) incoming[c.dst_op].push_back(&c);

  std::vector<int> order;
  std::map<int, int> indegree;
  for (const auto& op : operators) indegree[op.id] = 0;
  for (const auto& c : connectors) ++indegree[c.dst_op];
  std::vector<int> frontier;
  for (const auto& op : operators) {
    if (indegree[op.id] == 0) frontier.push_back(op.id);
  }
  std::map<int, int> remaining = indegree;
  while (!frontier.empty()) {
    int id = frontier.back();
    frontier.pop_back();
    order.push_back(id);
    for (const auto& c : connectors) {
      if (c.src_op == id && --remaining[c.dst_op] == 0) {
        frontier.push_back(c.dst_op);
      }
    }
  }
  for (int id : order) {
    const OperatorDescriptor* op = FindOperator(id);
    for (const auto* c : incoming[id]) {
      const OperatorDescriptor* src = FindOperator(c->src_op);
      std::string edge;
      switch (c->type) {
        case ConnectorType::kOneToOne:
          edge = "1:1";
          break;
        case ConnectorType::kMToNReplicating:
          edge = "n:" + std::to_string(op->parallelism) + " replicating";
          break;
        case ConnectorType::kMToNPartitioningMerging:
          edge = "n:m partitioning-merging";
          break;
        default:
          edge = "n:m partitioning";
      }
      out += "  |" + edge + "|  (from " + src->name + ")\n";
    }
    out += op->name + "  [x" + std::to_string(op->parallelism) + "]\n";
  }
  return out;
}

StagePlan ComputeStages(const JobSpec& job) {
  // Expand to activities: an operator with blocking ports becomes
  // (consume-activity per blocking port) -> output-activity; otherwise a
  // single pipelined activity.
  StagePlan plan;
  // stage level per operator output activity.
  std::map<int, int> out_level;
  // Iterate to fixpoint (DAG, so bounded by |ops|).
  for (size_t iter = 0; iter < job.operators.size() + 1; ++iter) {
    bool changed = false;
    for (const auto& op : job.operators) {
      int level = 0;
      for (const auto& c : job.connectors) {
        if (c.dst_op != op.id) continue;
        auto it = out_level.find(c.src_op);
        int src_level = it == out_level.end() ? 0 : it->second;
        bool blocking =
            std::find(op.blocking_ports.begin(), op.blocking_ports.end(),
                      c.dst_port) != op.blocking_ports.end();
        level = std::max(level, src_level + (blocking ? 1 : 0));
      }
      if (!out_level.count(op.id) || out_level[op.id] != level) {
        out_level[op.id] = level;
        changed = true;
      }
    }
    if (!changed) break;
  }
  int max_level = 0;
  for (const auto& [id, level] : out_level) {
    (void)id;
    max_level = std::max(max_level, level);
  }
  plan.stages.resize(max_level + 1);
  for (const auto& op : job.operators) {
    int level = out_level[op.id];
    if (!op.blocking_ports.empty()) {
      // Consume-activities run one stage earlier than the output activity.
      plan.stages[std::max(0, level - 1)].push_back(
          Activity{op.id, op.name + ":build", false});
      plan.stages[level].push_back(Activity{op.id, op.name + ":emit", true});
    } else {
      plan.stages[level].push_back(Activity{op.id, op.name, true});
    }
  }
  return plan;
}

std::string StagePlan::ToString() const {
  std::string out;
  for (size_t i = 0; i < stages.size(); ++i) {
    out += "stage " + std::to_string(i) + ":";
    for (const auto& a : stages[i]) out += " " + a.name;
    out += "\n";
  }
  return out;
}

}  // namespace hyracks
}  // namespace asterix
