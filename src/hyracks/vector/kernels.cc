#include "hyracks/vector/kernels.h"

#include <utility>

#include "functions/arith.h"

namespace asterix {
namespace hyracks {
namespace vector {

using adm::TypeTag;
using adm::Value;
using functions::Tri;
using storage::column::ColumnBatch;
using storage::column::ColumnLane;
using storage::column::LaneKind;

namespace {

constexpr uint8_t kRowPresent = 2;

// Tri values as bytes: 0 = false, 1 = true, 2 = unknown (functions::Tri).
using TriVec = std::vector<uint8_t>;

bool IsIntTag(TypeTag t) {
  return t >= TypeTag::kInt8 && t <= TypeTag::kInt64;
}

inline int CmpI64(int64_t a, int64_t b) { return (a > b) - (a < b); }
inline int CmpF64(double a, double b) { return (a > b) - (a < b); }

inline uint8_t TriOfCmp(CmpOp op, int c) {
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return 0;
}

// Value-level comparison with exactly the interpreter's mapping
// (=, != via EqualsTri; </<=/>/>= via LessTri/LessEqTri with swaps).
Tri TriCmpValues(CmpOp op, const Value& a, const Value& b) {
  switch (op) {
    case CmpOp::kEq: return functions::EqualsTri(a, b);
    case CmpOp::kNe: return functions::TriNot(functions::EqualsTri(a, b));
    case CmpOp::kLt: return functions::LessTri(a, b);
    case CmpOp::kLe: return functions::LessEqTri(a, b);
    case CmpOp::kGt: return functions::LessTri(b, a);
    case CmpOp::kGe: return functions::LessEqTri(b, a);
  }
  return Tri::kUnknown;
}

CmpOp MirrorOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;  // =, != are symmetric
  }
}

// Integer arithmetic result truncation: the interpreter materializes int
// results at the wider operand width (MakeNumeric), so int8+int8 wraps at
// 8 bits. Replicate it.
int64_t TruncInt(TypeTag tag, int64_t v) {
  switch (tag) {
    case TypeTag::kInt8: return static_cast<int8_t>(v);
    case TypeTag::kInt16: return static_cast<int16_t>(v);
    case TypeTag::kInt32: return static_cast<int32_t>(v);
    default: return v;
  }
}

double TruncDbl(TypeTag tag, double v) {
  return tag == TypeTag::kFloat ? static_cast<double>(static_cast<float>(v))
                                : v;
}

TypeTag WiderNumeric(TypeTag a, TypeTag b) { return a >= b ? a : b; }

// One evaluated side of a comparison / arithmetic node, aligned to the
// batch's selection positions. Typed reps (int/double arrays + unknown
// mask) run tight loops; the generic rep holds adm::Values and goes through
// the functions layer row by row.
struct SideVec {
  enum class Rep { kInt, kDbl, kGen };
  Rep rep = Rep::kGen;
  TypeTag tag = TypeTag::kDouble;  // numeric result tag of typed reps
  bool is_const = false;           // broadcast: payload arrays hold one slot
  std::vector<int64_t> i;
  std::vector<double> d;
  std::vector<Value> v;
  std::vector<uint8_t> unknown;  // typed reps; kGen uses v[p].IsUnknown()

  int64_t IAt(size_t p) const { return i[is_const ? 0 : p]; }
  double DAt(size_t p) const { return d[is_const ? 0 : p]; }
  const Value& VAt(size_t p) const { return v[is_const ? 0 : p]; }
  bool UnknownAt(size_t p) const {
    if (rep == Rep::kGen) return VAt(p).IsUnknown();
    return is_const ? false : unknown[p] != 0;
  }
  double NumAt(size_t p) const {
    return rep == Rep::kInt ? static_cast<double>(IAt(p)) : DAt(p);
  }

  // Typed slot rematerialized as a Value (generic fallback interop).
  Value ToValue(size_t p) const {
    if (rep == Rep::kGen) return VAt(p);
    if (UnknownAt(p)) return Value::Null();
    if (rep == Rep::kInt) {
      switch (tag) {
        case TypeTag::kInt8: return Value::Int8(static_cast<int8_t>(IAt(p)));
        case TypeTag::kInt16:
          return Value::Int16(static_cast<int16_t>(IAt(p)));
        case TypeTag::kInt32:
          return Value::Int32(static_cast<int32_t>(IAt(p)));
        default: return Value::Int64(IAt(p));
      }
    }
    return tag == TypeTag::kFloat
               ? Value::Float(static_cast<float>(DAt(p)))
               : Value::Double(DAt(p));
  }
};

// Degrades a typed side to the generic rep (both operands must be generic
// when either is).
void ToGeneric(SideVec* s, size_t n) {
  if (s->rep == SideVec::Rep::kGen) return;
  std::vector<Value> vals;
  if (s->is_const) {
    vals.push_back(s->ToValue(0));
  } else {
    vals.resize(n);
    for (size_t p = 0; p < n; ++p) vals[p] = s->ToValue(p);
  }
  s->v = std::move(vals);
  s->rep = SideVec::Rep::kGen;
  s->i.clear();
  s->d.clear();
  s->unknown.clear();
}

Result<SideVec> EvalVal(const ValNode& node, const ColumnBatch& batch);

Result<SideVec> EvalArith(const ValNode& node, const ColumnBatch& batch) {
  auto ra = EvalVal(*node.a, batch);
  if (!ra.ok()) return ra.status();
  SideVec a = ra.take();
  SideVec b;
  bool unary = node.kind == ValNode::Kind::kNeg;
  if (!unary) {
    auto rb = EvalVal(*node.b, batch);
    if (!rb.ok()) return rb.status();
    b = rb.take();
  }
  size_t n = batch.sel.size();
  SideVec out;
  out.is_const = a.is_const && (unary || b.is_const);
  size_t slots = out.is_const ? 1 : n;

  bool generic = a.rep == SideVec::Rep::kGen ||
                 (!unary && b.rep == SideVec::Rep::kGen);
  if (generic) {
    ToGeneric(&a, n);
    if (!unary) ToGeneric(&b, n);
    out.rep = SideVec::Rep::kGen;
    out.v.resize(slots);
    for (size_t p = 0; p < slots; ++p) {
      Result<Value> r = Status::OK();
      switch (node.kind) {
        case ValNode::Kind::kAdd: r = functions::Add(a.VAt(p), b.VAt(p)); break;
        case ValNode::Kind::kSub:
          r = functions::Subtract(a.VAt(p), b.VAt(p));
          break;
        case ValNode::Kind::kMul:
          r = functions::Multiply(a.VAt(p), b.VAt(p));
          break;
        default: r = functions::Negate(a.VAt(p)); break;
      }
      if (!r.ok()) return r.status();
      out.v[p] = r.take();
    }
    return out;
  }

  // Typed: both sides int -> int at the wider width; any double -> double
  // (float results round-trip through float, like MakeNumeric).
  bool both_int = a.rep == SideVec::Rep::kInt &&
                  (unary || b.rep == SideVec::Rep::kInt);
  out.tag = unary ? a.tag : WiderNumeric(a.tag, b.tag);
  out.unknown.assign(out.is_const ? 0 : n, 0);
  if (both_int) {
    out.rep = SideVec::Rep::kInt;
    out.i.resize(slots);
    for (size_t p = 0; p < slots; ++p) {
      if (!out.is_const &&
          (a.UnknownAt(p) || (!unary && b.UnknownAt(p)))) {
        out.unknown[p] = 1;
        out.i[p] = 0;
        continue;
      }
      int64_t r;
      switch (node.kind) {
        case ValNode::Kind::kAdd: r = a.IAt(p) + b.IAt(p); break;
        case ValNode::Kind::kSub: r = a.IAt(p) - b.IAt(p); break;
        case ValNode::Kind::kMul: r = a.IAt(p) * b.IAt(p); break;
        default: r = -a.IAt(p); break;
      }
      out.i[p] = TruncInt(out.tag, r);
    }
    return out;
  }
  out.rep = SideVec::Rep::kDbl;
  out.d.resize(slots);
  for (size_t p = 0; p < slots; ++p) {
    if (!out.is_const && (a.UnknownAt(p) || (!unary && b.UnknownAt(p)))) {
      out.unknown[p] = 1;
      out.d[p] = 0;
      continue;
    }
    double r;
    switch (node.kind) {
      case ValNode::Kind::kAdd: r = a.NumAt(p) + b.NumAt(p); break;
      case ValNode::Kind::kSub: r = a.NumAt(p) - b.NumAt(p); break;
      case ValNode::Kind::kMul: r = a.NumAt(p) * b.NumAt(p); break;
      default: r = -a.NumAt(p); break;
    }
    out.d[p] = TruncDbl(out.tag, r);
  }
  return out;
}

Result<SideVec> EvalVal(const ValNode& node, const ColumnBatch& batch) {
  size_t n = batch.sel.size();
  SideVec out;
  switch (node.kind) {
    case ValNode::Kind::kConst: {
      out.is_const = true;
      const Value& c = node.constant;
      if (IsIntTag(c.tag())) {
        out.rep = SideVec::Rep::kInt;
        out.tag = c.tag();
        out.i.push_back(c.AsInt());
      } else if (c.tag() == TypeTag::kFloat || c.tag() == TypeTag::kDouble) {
        out.rep = SideVec::Rep::kDbl;
        out.tag = c.tag();
        out.d.push_back(TruncDbl(c.tag(), c.AsDouble()));
      } else {
        out.rep = SideVec::Rep::kGen;
        out.v.push_back(c);
      }
      return out;
    }
    case ValNode::Kind::kField: {
      int li = batch.LaneIndex(node.field);
      if (li < 0) {
        // Field not carried by the batch: MISSING for every row.
        out.is_const = true;
        out.rep = SideVec::Rep::kGen;
        out.v.push_back(Value::Missing());
        return out;
      }
      const ColumnLane& lane = batch.lanes[static_cast<size_t>(li)];
      if (lane.kind == LaneKind::kI64 && IsIntTag(lane.tag) &&
          batch.rows.empty()) {
        out.rep = SideVec::Rep::kInt;
        out.tag = lane.tag;
        out.i.resize(n);
        out.unknown.resize(n);
        for (size_t p = 0; p < n; ++p) {
          uint32_t row = batch.sel.rows[p];
          out.unknown[p] = lane.presence[row] != kRowPresent;
          out.i[p] = lane.i64[row];
        }
        return out;
      }
      if (lane.kind == LaneKind::kF64 && batch.rows.empty()) {
        out.rep = SideVec::Rep::kDbl;
        out.tag = lane.tag;
        out.d.resize(n);
        out.unknown.resize(n);
        for (size_t p = 0; p < n; ++p) {
          uint32_t row = batch.sel.rows[p];
          out.unknown[p] = lane.presence[row] != kRowPresent;
          out.d[p] = lane.f64[row];
        }
        return out;
      }
      // Builder batches keep the original rows: read through them so lane
      // inference can never change semantics. Dict/value lanes go generic.
      out.rep = SideVec::Rep::kGen;
      out.v.resize(n);
      for (size_t p = 0; p < n; ++p) {
        out.v[p] = batch.FieldValue(li, batch.sel.rows[p]);
      }
      return out;
    }
    default: return EvalArith(node, batch);
  }
}

// field-vs-constant fast path over a lane: the common predicate shape.
// Returns false when this lane/constant combination has no typed kernel
// (caller falls through to the general evaluator).
bool CmpLaneConstFast(const ColumnLane& lane, CmpOp op, const Value& c,
                      const ColumnBatch& batch, TriVec* out) {
  size_t n = batch.sel.size();
  const auto& sel = batch.sel.rows;
  if (lane.kind == LaneKind::kI64 && IsIntTag(lane.tag)) {
    if (IsIntTag(c.tag())) {
      int64_t rhs = c.AsInt();
      for (size_t p = 0; p < n; ++p) {
        uint32_t row = sel[p];
        (*out)[p] = lane.presence[row] == kRowPresent
                        ? TriOfCmp(op, CmpI64(lane.i64[row], rhs))
                        : static_cast<uint8_t>(Tri::kUnknown);
      }
      return true;
    }
    if (c.tag() == TypeTag::kFloat || c.tag() == TypeTag::kDouble) {
      double rhs = c.AsDouble();
      for (size_t p = 0; p < n; ++p) {
        uint32_t row = sel[p];
        (*out)[p] =
            lane.presence[row] == kRowPresent
                ? TriOfCmp(op,
                           CmpF64(static_cast<double>(lane.i64[row]), rhs))
                : static_cast<uint8_t>(Tri::kUnknown);
      }
      return true;
    }
    return false;
  }
  if (lane.kind == LaneKind::kI64 && lane.tag == c.tag() &&
      (lane.tag == TypeTag::kBoolean || lane.tag == TypeTag::kDate ||
       lane.tag == TypeTag::kTime || lane.tag == TypeTag::kDatetime)) {
    int64_t rhs = lane.tag == TypeTag::kBoolean ? (c.AsBoolean() ? 1 : 0)
                                                : c.AsInt();
    for (size_t p = 0; p < n; ++p) {
      uint32_t row = sel[p];
      (*out)[p] = lane.presence[row] == kRowPresent
                      ? TriOfCmp(op, CmpI64(lane.i64[row], rhs))
                      : static_cast<uint8_t>(Tri::kUnknown);
    }
    return true;
  }
  if (lane.kind == LaneKind::kF64 && c.IsNumeric()) {
    double rhs = c.AsDouble();
    for (size_t p = 0; p < n; ++p) {
      uint32_t row = sel[p];
      (*out)[p] = lane.presence[row] == kRowPresent
                      ? TriOfCmp(op, CmpF64(lane.f64[row], rhs))
                      : static_cast<uint8_t>(Tri::kUnknown);
    }
    return true;
  }
  if (lane.kind == LaneKind::kDict && c.tag() == TypeTag::kString) {
    // Dictionary-aware: decide the predicate once per distinct value, then
    // map codes.
    const std::string& rhs = c.AsString();
    std::vector<uint8_t> dict_tri(lane.dict.size());
    for (size_t k = 0; k < lane.dict.size(); ++k) {
      int cc = lane.dict[k].compare(rhs);
      dict_tri[k] = TriOfCmp(op, (cc > 0) - (cc < 0));
    }
    for (size_t p = 0; p < n; ++p) {
      uint32_t row = sel[p];
      (*out)[p] = lane.presence[row] == kRowPresent
                      ? dict_tri[lane.code[row]]
                      : static_cast<uint8_t>(Tri::kUnknown);
    }
    return true;
  }
  return false;
}

Result<TriVec> EvalPred(const PredNode& node, const ColumnBatch& batch);

Result<TriVec> EvalCmp(const PredNode& node, const ColumnBatch& batch) {
  size_t n = batch.sel.size();
  TriVec out(n);

  // Normalize const-vs-field to field-vs-const for the fast path.
  const ValNode* l = node.lhs.get();
  const ValNode* r = node.rhs.get();
  CmpOp op = node.op;
  if (l->kind == ValNode::Kind::kConst && r->kind == ValNode::Kind::kField) {
    std::swap(l, r);
    op = MirrorOp(op);
  }
  if (l->kind == ValNode::Kind::kField && r->kind == ValNode::Kind::kConst) {
    int li = batch.LaneIndex(l->field);
    if (li >= 0 && batch.rows.empty() &&
        CmpLaneConstFast(batch.lanes[static_cast<size_t>(li)], op,
                         r->constant, batch, &out)) {
      return out;
    }
  }

  auto ra = EvalVal(*l, batch);
  if (!ra.ok()) return ra.status();
  auto rb = EvalVal(*r, batch);
  if (!rb.ok()) return rb.status();
  SideVec a = ra.take();
  SideVec b = rb.take();

  if (a.rep == SideVec::Rep::kGen || b.rep == SideVec::Rep::kGen) {
    for (size_t p = 0; p < n; ++p) {
      Value av = a.ToValue(p);
      Value bv = b.ToValue(p);
      out[p] = static_cast<uint8_t>(TriCmpValues(op, av, bv));
    }
    return out;
  }
  if (a.rep == SideVec::Rep::kInt && b.rep == SideVec::Rep::kInt) {
    for (size_t p = 0; p < n; ++p) {
      out[p] = (a.UnknownAt(p) || b.UnknownAt(p))
                   ? static_cast<uint8_t>(Tri::kUnknown)
                   : TriOfCmp(op, CmpI64(a.IAt(p), b.IAt(p)));
    }
    return out;
  }
  for (size_t p = 0; p < n; ++p) {
    out[p] = (a.UnknownAt(p) || b.UnknownAt(p))
                 ? static_cast<uint8_t>(Tri::kUnknown)
                 : TriOfCmp(op, CmpF64(a.NumAt(p), b.NumAt(p)));
  }
  return out;
}

Result<TriVec> EvalPred(const PredNode& node, const ColumnBatch& batch) {
  switch (node.kind) {
    case PredNode::Kind::kCmp: return EvalCmp(node, batch);
    case PredNode::Kind::kNot: {
      auto r = EvalPred(*node.a, batch);
      if (!r.ok()) return r.status();
      TriVec t = r.take();
      for (auto& x : t) x = x == 2 ? 2 : (x ^ 1);
      return t;
    }
    case PredNode::Kind::kAnd:
    case PredNode::Kind::kOr: {
      auto ra = EvalPred(*node.a, batch);
      if (!ra.ok()) return ra.status();
      auto rb = EvalPred(*node.b, batch);
      if (!rb.ok()) return rb.status();
      TriVec a = ra.take();
      TriVec b = rb.take();
      if (node.kind == PredNode::Kind::kAnd) {
        for (size_t p = 0; p < a.size(); ++p) {
          uint8_t x = a[p], y = b[p];
          a[p] = (x == 0 || y == 0) ? 0 : ((x == 2 || y == 2) ? 2 : 1);
        }
      } else {
        for (size_t p = 0; p < a.size(); ++p) {
          uint8_t x = a[p], y = b[p];
          a[p] = (x == 1 || y == 1) ? 1 : ((x == 2 || y == 2) ? 2 : 0);
        }
      }
      return a;
    }
  }
  return Status::Internal("bad predicate node");
}

}  // namespace

std::unique_ptr<ValNode> Field(std::string name) {
  auto n = std::make_unique<ValNode>();
  n->kind = ValNode::Kind::kField;
  n->field = std::move(name);
  return n;
}

std::unique_ptr<ValNode> Const(Value v) {
  auto n = std::make_unique<ValNode>();
  n->kind = ValNode::Kind::kConst;
  n->constant = std::move(v);
  return n;
}

std::unique_ptr<ValNode> Arith(ValNode::Kind op, std::unique_ptr<ValNode> a,
                               std::unique_ptr<ValNode> b) {
  auto n = std::make_unique<ValNode>();
  n->kind = op;
  n->a = std::move(a);
  n->b = std::move(b);
  return n;
}

std::unique_ptr<PredNode> Cmp(CmpOp op, std::unique_ptr<ValNode> lhs,
                              std::unique_ptr<ValNode> rhs) {
  auto n = std::make_unique<PredNode>();
  n->kind = PredNode::Kind::kCmp;
  n->op = op;
  n->lhs = std::move(lhs);
  n->rhs = std::move(rhs);
  return n;
}

std::unique_ptr<PredNode> And(std::unique_ptr<PredNode> a,
                              std::unique_ptr<PredNode> b) {
  auto n = std::make_unique<PredNode>();
  n->kind = PredNode::Kind::kAnd;
  n->a = std::move(a);
  n->b = std::move(b);
  return n;
}

std::unique_ptr<PredNode> Or(std::unique_ptr<PredNode> a,
                             std::unique_ptr<PredNode> b) {
  auto n = std::make_unique<PredNode>();
  n->kind = PredNode::Kind::kOr;
  n->a = std::move(a);
  n->b = std::move(b);
  return n;
}

std::unique_ptr<PredNode> Not(std::unique_ptr<PredNode> a) {
  auto n = std::make_unique<PredNode>();
  n->kind = PredNode::Kind::kNot;
  n->a = std::move(a);
  return n;
}

Status Filter(const PredNode& pred, ColumnBatch* batch) {
  if (batch->sel.empty()) return Status::OK();
  auto r = EvalPred(pred, *batch);
  if (!r.ok()) return r.status();
  const TriVec& tri = r.value();
  size_t kept = 0;
  auto& rows = batch->sel.rows;
  for (size_t p = 0; p < rows.size(); ++p) {
    rows[kept] = rows[p];
    kept += tri[p] == 1;
  }
  rows.resize(kept);
  return Status::OK();
}

VectorAgg::VectorAgg(const std::string& fn, std::string field)
    : field_(std::move(field)) {
  sql_ = fn.rfind("sql-", 0) == 0;
  std::string base = sql_ ? fn.substr(4) : fn;
  if (base == "min") fn_ = Fn::kMin;
  else if (base == "max") fn_ = Fn::kMax;
  else if (base == "sum") fn_ = Fn::kSum;
  else if (base == "avg") fn_ = Fn::kAvg;
  else fn_ = Fn::kCount;
}

Status VectorAgg::AddBatch(const ColumnBatch& batch) {
  const auto& sel = batch.sel.rows;
  if (sel.empty()) return Status::OK();

  if (fn_ == Fn::kCount && field_.empty()) {
    count_ += static_cast<int64_t>(sel.size());
    return Status::OK();
  }

  int li = batch.LaneIndex(field_);
  if (li < 0) {
    // Field absent from every row: MISSING input per row.
    if (fn_ == Fn::kCount) return Status::OK();
    if (!sql_) saw_null_ = true;
    return Status::OK();
  }
  const ColumnLane& lane = batch.lanes[static_cast<size_t>(li)];

  if (fn_ == Fn::kCount) {
    // count(v) counts non-missing inputs (nulls included).
    int64_t c = 0;
    for (uint32_t row : sel) c += lane.presence[row] != 0;
    count_ += c;
    return Status::OK();
  }

  if (fn_ == Fn::kMin || fn_ == Fn::kMax) {
    bool is_min = fn_ == Fn::kMin;
    bool have = false;
    uint32_t best_row = 0;
    switch (lane.kind) {
      case LaneKind::kI64: {
        int64_t best = 0;
        for (uint32_t row : sel) {
          if (lane.presence[row] != kRowPresent) {
            if (!sql_) saw_null_ = true;
            continue;
          }
          int64_t v = lane.i64[row];
          if (!have || (is_min ? v < best : v > best)) {
            best = v;
            best_row = row;
            have = true;
          }
        }
        break;
      }
      case LaneKind::kF64: {
        double best = 0;
        for (uint32_t row : sel) {
          if (lane.presence[row] != kRowPresent) {
            if (!sql_) saw_null_ = true;
            continue;
          }
          double v = lane.f64[row];
          if (!have || (is_min ? v < best : v > best)) {
            best = v;
            best_row = row;
            have = true;
          }
        }
        break;
      }
      case LaneKind::kDict: {
        const std::string* best = nullptr;
        for (uint32_t row : sel) {
          if (lane.presence[row] != kRowPresent) {
            if (!sql_) saw_null_ = true;
            continue;
          }
          const std::string& v = lane.dict[lane.code[row]];
          if (!best || (is_min ? v < *best : v > *best)) {
            best = &v;
            best_row = row;
            have = true;
          }
        }
        break;
      }
      case LaneKind::kValue: {
        Value best;
        for (uint32_t row : sel) {
          if (lane.presence[row] != kRowPresent) {
            if (!sql_) saw_null_ = true;
            continue;
          }
          Value v = batch.FieldValue(li, row);
          if (!have || (is_min ? v.Compare(best) < 0 : v.Compare(best) > 0)) {
            best = v;
            best_row = row;
            have = true;
          }
        }
        break;
      }
    }
    if (have) {
      Value cand = batch.FieldValue(li, best_row);
      if (!has_best_ || (is_min ? cand.Compare(best_) < 0
                                : cand.Compare(best_) > 0)) {
        best_ = std::move(cand);
        has_best_ = true;
      }
    }
    return Status::OK();
  }

  // sum / avg: double accumulation in row order, exactly like the
  // interpreted SumAvgAggregator (bit-identical FP sequence).
  bool lane_numeric =
      (lane.kind == LaneKind::kI64 && IsIntTag(lane.tag)) ||
      lane.kind == LaneKind::kF64;
  if (lane_numeric) {
    for (uint32_t row : sel) {
      if (lane.presence[row] != kRowPresent) {
        if (!sql_) saw_null_ = true;
        continue;
      }
      sum_ += lane.kind == LaneKind::kI64
                  ? static_cast<double>(lane.i64[row])
                  : lane.f64[row];
      ++count_;
    }
    return Status::OK();
  }
  if (lane.kind == LaneKind::kDict ||
      (lane.kind == LaneKind::kI64 && !IsIntTag(lane.tag))) {
    // Uniformly non-numeric present values poison; absent rows follow the
    // AQL/sql unknown rule.
    for (uint32_t row : sel) {
      if (lane.presence[row] != kRowPresent) {
        if (!sql_) saw_null_ = true;
      } else {
        saw_null_ = true;
      }
    }
    return Status::OK();
  }
  for (uint32_t row : sel) {
    if (lane.presence[row] != kRowPresent) {
      if (!sql_) saw_null_ = true;
      continue;
    }
    Value v = batch.FieldValue(li, row);
    double d;
    if (!v.GetNumeric(&d)) {
      saw_null_ = true;
      continue;
    }
    sum_ += d;
    ++count_;
  }
  return Status::OK();
}

Value VectorAgg::Finish() const {
  switch (fn_) {
    case Fn::kCount: return Value::Int64(count_);
    case Fn::kMin:
    case Fn::kMax:
      if (saw_null_) return Value::Null();
      return has_best_ ? best_ : Value::Null();
    default:
      if (saw_null_ || count_ == 0) return Value::Null();
      return fn_ == Fn::kAvg
                 ? Value::Double(sum_ / static_cast<double>(count_))
                 : Value::Double(sum_);
  }
}

Value VectorAgg::Partial() const {
  switch (fn_) {
    case Fn::kCount: return Value::Int64(count_);
    case Fn::kMin:
    case Fn::kMax:
      return Value::Record({{"v", Finish()},
                            {"null", Value::Boolean(saw_null_)},
                            {"has", Value::Boolean(has_best_)}});
    default:
      return Value::Record({{"sum", Value::Double(sum_)},
                            {"cnt", Value::Int64(count_)},
                            {"null", Value::Boolean(saw_null_)}});
  }
}

}  // namespace vector
}  // namespace hyracks
}  // namespace asterix
