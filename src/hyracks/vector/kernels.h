#ifndef ASTERIX_HYRACKS_VECTOR_KERNELS_H_
#define ASTERIX_HYRACKS_VECTOR_KERNELS_H_

#include <memory>
#include <string>
#include <vector>

#include "adm/value.h"
#include "common/status.h"
#include "storage/column/batch.h"

namespace asterix {
namespace hyracks {
namespace vector {

/// Comparison operators of a lowered predicate (the algebricks kCompare
/// shapes the expression-to-kernel pass can compile).
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// A value-producing node of a lowered expression: a batch lane, a constant,
/// or arithmetic over them. Evaluation picks a typed tight loop when the
/// operand lanes are typed in the current batch and falls back to per-row
/// adm::Value evaluation (identical semantics, including error and
/// NULL/MISSING propagation) when they are not — lowering is structural,
/// the batch decides the execution strategy.
struct ValNode {
  enum class Kind { kField, kConst, kAdd, kSub, kMul, kNeg };
  Kind kind = Kind::kConst;
  std::string field;                // kField
  adm::Value constant;              // kConst
  std::unique_ptr<ValNode> a, b;    // arithmetic operands
};

/// A tri-valued predicate tree over batch lanes. SQL three-valued logic:
/// only rows evaluating to TRUE survive a filter, exactly like the
/// interpreted Select.
struct PredNode {
  enum class Kind { kCmp, kAnd, kOr, kNot };
  Kind kind = Kind::kCmp;
  CmpOp op = CmpOp::kEq;              // kCmp
  std::unique_ptr<ValNode> lhs, rhs;  // kCmp
  std::unique_ptr<PredNode> a, b;     // kAnd/kOr; kNot uses a only
};

// Node constructors (lowering pass, tests, benches).
std::unique_ptr<ValNode> Field(std::string name);
std::unique_ptr<ValNode> Const(adm::Value v);
std::unique_ptr<ValNode> Arith(ValNode::Kind op, std::unique_ptr<ValNode> a,
                               std::unique_ptr<ValNode> b);
std::unique_ptr<PredNode> Cmp(CmpOp op, std::unique_ptr<ValNode> lhs,
                              std::unique_ptr<ValNode> rhs);
std::unique_ptr<PredNode> And(std::unique_ptr<PredNode> a,
                              std::unique_ptr<PredNode> b);
std::unique_ptr<PredNode> Or(std::unique_ptr<PredNode> a,
                             std::unique_ptr<PredNode> b);
std::unique_ptr<PredNode> Not(std::unique_ptr<PredNode> a);

/// Applies `pred` to the batch's live rows and refines `batch->sel` in
/// place (no survivor copying). Typed lanes run contiguous compare loops;
/// dictionary lanes evaluate string predicates once per distinct value and
/// map codes. Errors surface exactly as the interpreter's would.
Status Filter(const PredNode& pred, storage::column::ColumnBatch* batch);

/// One ungrouped aggregate accelerated over batches. Mirrors
/// functions/aggregates.cc exactly — same NULL/MISSING poisoning (AQL) or
/// skipping (sql-*), same partial-state record shapes, same double
/// accumulation in row order — so local partials combine with the existing
/// global Aggregator unchanged.
class VectorAgg {
 public:
  /// `fn`: count/min/max/sum/avg or their sql- variants. Empty `field`
  /// counts whole rows (count over the record variable / count(*) style).
  VectorAgg(const std::string& fn, std::string field);

  /// Accumulates every selected row of `batch`.
  Status AddBatch(const storage::column::ColumnBatch& batch);

  adm::Value Partial() const;
  adm::Value Finish() const;

 private:
  enum class Fn { kCount, kMin, kMax, kSum, kAvg };
  Fn fn_;
  bool sql_ = false;
  std::string field_;
  int64_t count_ = 0;
  double sum_ = 0;
  bool saw_null_ = false;
  bool has_best_ = false;
  adm::Value best_;
};

}  // namespace vector
}  // namespace hyracks
}  // namespace asterix

#endif  // ASTERIX_HYRACKS_VECTOR_KERNELS_H_
