#ifndef ASTERIX_HYRACKS_EXECUTOR_POOL_H_
#define ASTERIX_HYRACKS_EXECUTOR_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace asterix {
namespace hyracks {

/// Persistent worker-thread pool for operator instances. Created at cluster
/// boot and reused across jobs, so the short low-latency queries of Table 3
/// stop paying a thread spawn per operator instance per job.
///
/// Sizing rule: pipelined operators block on channel I/O served by their
/// peers, so a job makes progress only when EVERY one of its instances has
/// a live thread. RunAll() therefore reserves one thread per task — summed
/// across concurrently admitted jobs — and grows the pool to the reserved
/// total before enqueuing. The pool never admits a job it cannot fully
/// thread, and never shrinks (growth is a one-time cost, amortized forever).
class ExecutorPool {
 public:
  explicit ExecutorPool(size_t boot_threads);
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  /// Runs every task on a pool thread and blocks until all complete.
  /// Safe to call from multiple threads concurrently (concurrent jobs).
  void RunAll(std::vector<std::function<void()>> tasks);

  /// Total threads ever created — flat across repeated jobs once warm
  /// (the reuse guarantee tests assert on).
  uint64_t threads_created() const {
    return threads_created_.load(std::memory_order_relaxed);
  }
  size_t threads_alive() const;

  /// Threads currently inside a task (pool occupancy for StatusJson).
  size_t busy_threads() const {
    return busy_.load(std::memory_order_relaxed);
  }
  /// Tasks enqueued but not yet picked up by a worker.
  size_t queued_tasks() const;

 private:
  void WorkerLoop();
  /// Requires mu_. Grows the pool to `target` workers.
  void GrowLocked(size_t target);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t reserved_ = 0;  // in-flight tasks across active jobs
  bool stop_ = false;
  std::atomic<uint64_t> threads_created_{0};
  std::atomic<size_t> busy_{0};
};

}  // namespace hyracks
}  // namespace asterix

#endif  // ASTERIX_HYRACKS_EXECUTOR_POOL_H_
