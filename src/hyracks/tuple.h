#ifndef ASTERIX_HYRACKS_TUPLE_H_
#define ASTERIX_HYRACKS_TUPLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "adm/value.h"
#include "common/status.h"
#include "storage/column/batch.h"

namespace asterix {
namespace hyracks {

/// A tuple flowing through the dataflow: a fixed-width vector of ADM values.
/// Column meanings are assigned by the compiler (variable -> column index).
using Tuple = std::vector<adm::Value>;

/// Evaluates one scalar over a tuple (compiled expression).
using TupleEval = std::function<Result<adm::Value>(const Tuple&)>;
/// Tuple comparator returning <0/0/>0 (sorts, merges).
using TupleCompare = std::function<int(const Tuple&, const Tuple&)>;

/// A batch of tuples; the unit connectors move between operator instances.
/// Batching amortizes queue synchronization the way byte frames amortize
/// network calls in the real system. A frame may instead carry one typed
/// columnar batch (the vectorized path): `batch` set, `tuples` empty. Batch
/// frames only traverse 1:1 connectors — partitioning/merging connectors
/// need per-tuple routing, so producers materialize rows first.
struct Frame {
  std::vector<Tuple> tuples;
  std::shared_ptr<storage::column::ColumnBatch> batch;
};

constexpr size_t kDefaultFrameTuples = 256;

/// Accumulates tuples into frames and forwards them through a push target.
class FrameAppender {
 public:
  FrameAppender(std::function<void(Frame)> sink,
                size_t frame_tuples = kDefaultFrameTuples)
      : sink_(std::move(sink)), frame_tuples_(frame_tuples) {}

  void Push(Tuple tuple) {
    current_.tuples.push_back(std::move(tuple));
    if (current_.tuples.size() >= frame_tuples_) Flush();
  }

  void Flush() {
    if (!current_.tuples.empty()) {
      sink_(std::move(current_));
      current_ = Frame{};
    }
  }

 private:
  std::function<void(Frame)> sink_;
  size_t frame_tuples_;
  Frame current_;
};

}  // namespace hyracks
}  // namespace asterix

#endif  // ASTERIX_HYRACKS_TUPLE_H_
