#ifndef ASTERIX_HYRACKS_PROFILE_H_
#define ASTERIX_HYRACKS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace asterix {
namespace hyracks {

struct JobSpec;

/// What one operator instance (one partition of one operator) did during a
/// job: its wall-clock span relative to job submission and its tuple/frame
/// traffic. Filled in by the executor; each instance's worker thread owns
/// its span exclusively until the job joins.
struct OperatorSpan {
  int op_id = 0;
  std::string op_name;
  int instance = 0;  // partition index of this instance
  int node = 0;      // node the instance ran on
  double start_ms = 0;  // relative to job submission
  double end_ms = 0;
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t frames_flushed = 0;
  /// Storage bytes physically read by this instance (scan operators; zero
  /// for compute-only operators). On columnar scans this excludes pages
  /// skipped by projection/min-max pruning.
  uint64_t bytes_read = 0;
  /// Wall time blocked pulling input frames (waiting on upstream).
  uint64_t input_wait_us = 0;
  /// Wall time blocked pushing output frames into full channels — the
  /// backpressure this instance absorbed from downstream.
  uint64_t output_wait_us = 0;
  /// Serialized bytes this instance wrote to spill scratch runs when its
  /// memory budget tripped (join/group-by/distinct partitions, sort runs).
  uint64_t spill_bytes = 0;
  /// Hash partitions evicted to disk (0 = everything stayed in memory).
  uint64_t spilled_partitions = 0;
  /// Serialized hash-build footprint (key arena + table + tuple estimate),
  /// summed across recursion levels of a budgeted hash operator.
  uint64_t hash_build_bytes = 0;
  /// Typed columnar batches this instance processed (0 = vectorization did
  /// not engage here).
  uint64_t batches = 0;
  /// Rows surviving / carried across those batches' selection vectors —
  /// their ratio is the EXPLAIN ANALYZE `selected_ratio`.
  uint64_t vec_rows_selected = 0;
  uint64_t vec_rows_total = 0;
  /// Microseconds inside vectorized kernels (filter/aggregate tight loops).
  uint64_t kernel_us = 0;
  /// Thread CPU time (CLOCK_THREAD_CPUTIME_ID) consumed by this instance's
  /// Run() — actual compute, as opposed to the wall-clock span, which also
  /// contains input/output waits.
  uint64_t cpu_us = 0;
  bool ok = true;

  double elapsed_ms() const { return end_ms - start_ms; }
  double selected_ratio() const {
    return vec_rows_total == 0
               ? 0
               : static_cast<double>(vec_rows_selected) /
                     static_cast<double>(vec_rows_total);
  }
};

/// Per-connector hop counts: every tuple that crossed the connector, and
/// the subset whose hop crossed node boundaries.
struct ConnectorHops {
  int conn_id = 0;
  std::string type;
  int src_op = -1;
  int dst_op = -1;
  uint64_t tuples = 0;
  uint64_t network_tuples = 0;
};

/// Per-operator rollup across instances (what EXPLAIN ANALYZE prints).
struct OperatorRollup {
  int op_id = 0;
  std::string name;
  int instances = 0;
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t frames_flushed = 0;
  uint64_t bytes_read = 0;
  uint64_t input_wait_us = 0;
  uint64_t output_wait_us = 0;
  uint64_t spill_bytes = 0;
  uint64_t spilled_partitions = 0;
  uint64_t hash_build_bytes = 0;
  uint64_t batches = 0;
  uint64_t vec_rows_selected = 0;
  uint64_t vec_rows_total = 0;
  uint64_t kernel_us = 0;
  uint64_t cpu_us = 0;
  double elapsed_ms = 0;  // max instance span (critical-path view)

  double selected_ratio() const {
    return vec_rows_total == 0
               ? 0
               : static_cast<double>(vec_rows_selected) /
                     static_cast<double>(vec_rows_total);
  }
};

/// Where a query's wall-clock time went, one microsecond span per lifecycle
/// phase. The executor fills admission (ExecuteJob entry — including the
/// modeled startup cost and task wiring — until workers begin) and execute
/// (worker wall time); the api layer fills parse, optimize, and result
/// (sink draining) around the job.
struct PhaseSpans {
  uint64_t parse_us = 0;
  uint64_t optimize_us = 0;
  uint64_t admission_us = 0;
  uint64_t execute_us = 0;
  uint64_t result_us = 0;

  bool any() const {
    return parse_us | optimize_us | admission_us | execute_us | result_us;
  }
};

/// The execution profile of one Hyracks job: one span per operator instance
/// per partition plus per-connector hop counts and per-phase query spans.
/// Attached to JobStats by the executor; rendered as JSON, as a Chrome
/// trace, or as an annotated plan.
struct JobProfile {
  uint64_t job_id = 0;
  uint64_t query_id = 0;  // originating query (0 = none)
  double elapsed_ms = 0;
  double startup_ms = 0;  // modeled job generation/distribution overhead
  int num_nodes = 0;
  PhaseSpans phases;
  std::vector<OperatorSpan> spans;
  std::vector<ConnectorHops> connectors;

  /// Aggregates spans by operator, preserving first-seen (spec) order.
  std::vector<OperatorRollup> Rollup() const;

  /// Total output tuples of an operator across its instances.
  uint64_t TuplesOut(int op_id) const;
  uint64_t TuplesIn(int op_id) const;

  /// Plain JSON rendering (bench output, MetricsJson companions).
  std::string ToJson() const;

  /// Chrome trace_event JSON ("X" complete events, one per operator
  /// instance; pid = node, tid = instance). Loadable in chrome://tracing
  /// and Perfetto.
  std::string ToChromeTrace() const;
};

/// Figure-6-style job listing annotated with actuals from `profile`:
/// per-operator output tuples, max instance ms, instance count, and
/// per-connector hop/network counts on the edges.
std::string AnnotatePlan(const JobSpec& job, const JobProfile& profile);

}  // namespace hyracks
}  // namespace asterix

#endif  // ASTERIX_HYRACKS_PROFILE_H_
