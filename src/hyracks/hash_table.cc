#include "hyracks/hash_table.h"

#include <cstring>

namespace asterix {
namespace hyracks {

const uint8_t* Arena::Append(const void* data, size_t n) {
  if (chunk_used_ + n > chunk_cap_) {
    size_t cap = n > kChunkBytes ? n : kChunkBytes;
    chunks_.push_back(std::make_unique<uint8_t[]>(cap));
    chunk_used_ = 0;
    chunk_cap_ = cap;
    reserved_ += cap;
  }
  uint8_t* dst = chunks_.back().get() + chunk_used_;
  if (n > 0) std::memcpy(dst, data, n);
  chunk_used_ += n;
  used_ += n;
  return dst;
}

SerializedKeyTable::SerializedKeyTable() : slots_(16, 0), mask_(15) {}

uint32_t* SerializedKeyTable::FindOrInsert(const uint8_t* key, size_t len,
                                           uint64_t hash, bool* inserted) {
  // Grow at ~0.75 load so probe chains stay short.
  if ((entries_.size() + 1) * 4 > slots_.size() * 3) Grow();
  size_t i = hash & mask_;
  while (slots_[i] != 0) {
    Entry& e = entries_[slots_[i] - 1];
    if (e.hash == hash && e.key_len == len &&
        std::memcmp(e.key, key, len) == 0) {
      *inserted = false;
      return &e.payload;
    }
    i = (i + 1) & mask_;
  }
  entries_.push_back(
      Entry{hash, arena_.Append(key, len), static_cast<uint32_t>(len),
            kNoPayload});
  slots_[i] = static_cast<uint32_t>(entries_.size());
  *inserted = true;
  return &entries_.back().payload;
}

const uint32_t* SerializedKeyTable::Find(const uint8_t* key, size_t len,
                                         uint64_t hash) const {
  size_t i = hash & mask_;
  while (slots_[i] != 0) {
    const Entry& e = entries_[slots_[i] - 1];
    if (e.hash == hash && e.key_len == len &&
        std::memcmp(e.key, key, len) == 0) {
      return &e.payload;
    }
    i = (i + 1) & mask_;
  }
  return nullptr;
}

void SerializedKeyTable::Grow() {
  std::vector<uint32_t> next(slots_.size() * 2, 0);
  size_t mask = next.size() - 1;
  for (size_t idx = 0; idx < entries_.size(); ++idx) {
    size_t i = entries_[idx].hash & mask;
    while (next[i] != 0) i = (i + 1) & mask;
    next[i] = static_cast<uint32_t>(idx + 1);
  }
  slots_ = std::move(next);
  mask_ = mask;
}

}  // namespace hyracks
}  // namespace asterix
