#ifndef ASTERIX_HYRACKS_CLUSTER_H_
#define ASTERIX_HYRACKS_CLUSTER_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hyracks/executor_pool.h"
#include "hyracks/job.h"
#include "hyracks/profile.h"
#include "server/admission.h"

namespace asterix {
namespace hyracks {

/// Default per-job operator memory budget: the ASTERIX_OP_MEMORY_BUDGET
/// environment variable when set (bytes), else 0 (unbounded). The env knob
/// lets CI run the whole suite under an artificially tiny budget to stress
/// every spill path without per-test configuration.
size_t DefaultOpMemoryBudgetBytes();

/// Default slow-query threshold: ASTERIX_SLOW_QUERY_US when set
/// (microseconds), else 0 (slow-query logging disabled).
int64_t DefaultSlowQueryUs();

/// Shape of the simulated shared-nothing cluster: the paper's testbed is 10
/// nodes x 3 data disks = 30 partitions; defaults here scale that down.
struct ClusterConfig {
  int num_nodes = 2;
  int partitions_per_node = 2;
  /// Fixed per-job scheduling overhead in microseconds, modeling Hyracks
  /// job generation + task distribution + start-up (the cost Table 4 shows
  /// dominating single-record inserts). The simulated executor also pays a
  /// real cost for thread spawning; this constant stands in for the RPC and
  /// class-loading work a real cluster adds.
  int job_startup_us = 1200;
  /// When non-empty, the executor writes one Chrome trace_event JSON file
  /// per job (job_<id>.trace.json) into this directory — the optional trace
  /// sink for chrome://tracing / Perfetto inspection.
  std::string trace_dir;
  /// Frames a connector channel may queue before producers block
  /// (backpressure). 0 = unbounded. The bound is per channel for FIFO
  /// channels and per producer for merging channels. Generous by default —
  /// a channel holds at most capacity x kDefaultFrameTuples tuples — but
  /// finite, so a fast producer can no longer grow memory without limit.
  size_t channel_capacity_frames = 64;
  /// Executor-pool threads created at cluster boot; the pool grows on
  /// demand past this and never shrinks. 0 = 2x partitions.
  size_t executor_pool_boot_threads = 0;
  /// Per-job memory budget for operator build state, divided evenly across
  /// the job's memory-intensive operator instances (hash join, hash
  /// group-by, distinct, sort). An instance that exceeds its share spills
  /// hash partitions / sort runs to scratch files instead of growing. 0 =
  /// unbounded (no spilling unless an operator's own caps trip).
  size_t op_memory_budget_bytes = DefaultOpMemoryBudgetBytes();
  /// Queries whose end-to-end wall time exceeds this threshold (in
  /// microseconds) get their full annotated profile appended as a JSON line
  /// to the instance's slow-query log. 0 = disabled.
  int64_t slow_query_us = DefaultSlowQueryUs();
  /// Cluster-wide memory pool gating job admission. When > 0, each job with
  /// memory-intensive operators must be granted its operator budget out of
  /// this pool before it runs (FIFO queue, kOverloaded on overflow or
  /// timeout), and the *grant* — not op_memory_budget_bytes directly — is
  /// what gets divided across the job's instances. 0 = no admission gate;
  /// every job budgets independently as before.
  size_t cluster_memory_pool_bytes = 0;
  /// Max jobs queued for pool capacity before new arrivals are rejected.
  size_t admission_queue_limit = 64;
  /// Max milliseconds a job waits in the admission queue.
  uint64_t admission_timeout_ms = 10000;
  /// Background LSM compaction worker threads shared by every index on the
  /// node (flushes and merges off the ingest path). 0 = 2.
  size_t compaction_threads = 0;
  /// Max flush+merge jobs queued for the compaction pool; writers whose
  /// Schedule() is rejected fall back to an inline synchronous flush.
  size_t compaction_queue_limit = 64;
};

/// Post-execution statistics used by benches and tests.
struct JobStats {
  double elapsed_ms = 0;
  /// Tuples that crossed a connector (any distance).
  uint64_t connector_tuples = 0;
  /// Tuples whose connector hop crossed node boundaries — the "network
  /// traffic" the local/global aggregation split minimizes (Figure 6).
  uint64_t network_tuples = 0;
  /// Always-on execution profile: per-operator-instance spans, per-connector
  /// hop counts, and query-phase spans (the EXPLAIN ANALYZE backbone).
  /// Mutable so the api layer can fill in query-level phases (parse,
  /// optimize, result) it alone can measure, after the executor returns.
  std::shared_ptr<JobProfile> profile;
};

/// Point-in-time view of one job currently inside ExecuteJob (StatusJson).
struct ActiveJobSnapshot {
  uint64_t job_id = 0;
  uint64_t query_id = 0;
  double elapsed_ms = 0;  // since ExecuteJob entry
  int instances = 0;      // operator instances scheduled
  /// Live bytes charged against the job's operator memory budgets, summed
  /// across its instances.
  uint64_t budget_used_bytes = 0;
};

/// The Cluster Controller plus its Node Controllers: accepts Hyracks jobs,
/// expands and schedules them, runs every operator instance on a worker
/// thread of the node that owns its partition, and wires connectors as
/// in-memory channels (counting cross-node hops).
class Cluster {
 public:
  explicit Cluster(ClusterConfig config)
      : config_(config),
        pool_(config.executor_pool_boot_threads > 0
                  ? config.executor_pool_boot_threads
                  : static_cast<size_t>(config.num_nodes *
                                        config.partitions_per_node * 2)),
        admission_(server::AdmissionOptions{
            config.cluster_memory_pool_bytes, config.admission_queue_limit,
            config.admission_timeout_ms}) {}

  int num_partitions() const {
    return config_.num_nodes * config_.partitions_per_node;
  }
  int num_nodes() const { return config_.num_nodes; }
  int NodeOfPartition(int partition) const {
    return partition / config_.partitions_per_node;
  }
  const ClusterConfig& config() const { return config_; }

  /// Runs the job to completion. Any operator failure cancels the job and
  /// surfaces the first failure status.
  Result<JobStats> ExecuteJob(const JobSpec& job);

  /// Total jobs executed (diagnostics).
  uint64_t jobs_executed() const { return jobs_executed_.load(); }

  /// The persistent executor pool (thread-reuse diagnostics for tests).
  const ExecutorPool& pool() const { return pool_; }

  /// Jobs currently executing, with live memory-budget usage (StatusJson).
  std::vector<ActiveJobSnapshot> ActiveJobs() const;

  /// The cluster-wide memory-pool gate ExecuteJob acquires from (pool
  /// occupancy and queue depth for StatusJson; disabled when
  /// cluster_memory_pool_bytes == 0).
  server::AdmissionController& admission() { return admission_; }
  const server::AdmissionController& admission() const { return admission_; }

 private:
  struct ActiveJob {
    uint64_t query_id = 0;
    std::chrono::steady_clock::time_point start;
    int instances = 0;
    std::shared_ptr<std::atomic<uint64_t>> budget_used;
  };

  ClusterConfig config_;
  std::atomic<uint64_t> jobs_executed_{0};
  ExecutorPool pool_;
  server::AdmissionController admission_;
  mutable std::mutex active_mu_;
  std::map<uint64_t, ActiveJob> active_jobs_;  // keyed by job id
};

}  // namespace hyracks
}  // namespace asterix

#endif  // ASTERIX_HYRACKS_CLUSTER_H_
