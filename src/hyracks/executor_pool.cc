#include "hyracks/executor_pool.h"

#include <memory>

#include "common/metrics.h"

namespace asterix {
namespace hyracks {

ExecutorPool::ExecutorPool(size_t boot_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  GrowLocked(boot_threads);
}

ExecutorPool::~ExecutorPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

size_t ExecutorPool::threads_alive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

size_t ExecutorPool::queued_tasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ExecutorPool::GrowLocked(size_t target) {
  auto& reg = metrics::MetricsRegistry::Default();
  static metrics::Gauge* alive = reg.GetGauge("hyracks.pool_threads");
  static metrics::Counter* created =
      reg.GetCounter("hyracks.pool_threads_created");
  while (workers_.size() < target) {
    workers_.emplace_back([this] { WorkerLoop(); });
    threads_created_.fetch_add(1, std::memory_order_relaxed);
    created->Inc();
  }
  alive->Set(static_cast<int64_t>(workers_.size()));
}

void ExecutorPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    busy_.fetch_add(1, std::memory_order_relaxed);
    task();
    busy_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ExecutorPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto latch = std::make_shared<Latch>();
  latch->remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    reserved_ += tasks.size();
    GrowLocked(reserved_);
    for (auto& t : tasks) {
      queue_.push_back([task = std::move(t), latch] {
        task();
        std::lock_guard<std::mutex> l(latch->mu);
        if (--latch->remaining == 0) latch->cv.notify_all();
      });
    }
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> l(latch->mu);
    latch->cv.wait(l, [&] { return latch->remaining == 0; });
  }
  std::lock_guard<std::mutex> lock(mu_);
  reserved_ -= tasks.size();
}

}  // namespace hyracks
}  // namespace asterix
