#ifndef ASTERIX_HYRACKS_SPILL_H_
#define ASTERIX_HYRACKS_SPILL_H_

#include <functional>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "hyracks/tuple.h"

namespace asterix {
namespace hyracks {

/// Tuple wire format shared by every operator that writes tuples to scratch
/// files (sort runs, join/group-by/distinct spill partitions): varint column
/// count followed by schemaless ADM values.
void SerializeTuple(const Tuple& t, BytesWriter* w);
Status DeserializeTuple(BytesReader* r, Tuple* out);

/// Lazily-created scratch directory removed when the guard dies — success,
/// operator failure, and job cancellation all unwind through the operator's
/// stack, so spill scratch space can never outlive its operator instance.
class ScratchDirGuard {
 public:
  explicit ScratchDirGuard(std::string prefix) : prefix_(std::move(prefix)) {}
  ~ScratchDirGuard();
  ScratchDirGuard(const ScratchDirGuard&) = delete;
  ScratchDirGuard& operator=(const ScratchDirGuard&) = delete;

  /// Creates the directory on first use.
  const std::string& dir();
  bool created() const { return !dir_.empty(); }

 private:
  std::string prefix_;
  std::string dir_;
};

/// One spilled partition run on disk: a stream of records appended
/// incrementally (buffered, so spilling does not itself balloon memory) and
/// read back in order. Records are either whole tuples or opaque key bytes —
/// the latter carry a distinct operator's already-emitted key markers across
/// a spill. Every record is length-prefixed, so readback streams the file
/// frame-at-a-time through a rolling window (one flush-sized chunk resident,
/// growing only for a single oversized record) instead of loading the whole
/// run; each replay posts a `spill.reload` journal event with bytes read.
class SpillRun {
 public:
  explicit SpillRun(std::string path) : path_(std::move(path)) {}

  Status AppendTuple(const Tuple& t);
  Status AppendKeyBytes(const uint8_t* data, size_t n);
  /// Flushes the buffered tail to disk; call before ForEach.
  Status Finish();

  uint64_t records() const { return records_; }
  bool empty() const { return records_ == 0; }
  /// Total serialized bytes appended (the spill_bytes a run contributes).
  uint64_t bytes() const { return bytes_; }

  /// Streams records back in append order. `on_key` may be null if the run
  /// was written without key markers.
  Status ForEach(const std::function<Status(Tuple&)>& on_tuple,
                 const std::function<Status(const uint8_t*, size_t)>& on_key =
                     nullptr) const;

  void Remove();

 private:
  static constexpr uint8_t kTupleRecord = 0;
  static constexpr uint8_t kKeyRecord = 1;
  static constexpr size_t kFlushBytes = 256 * 1024;

  Status FlushBuffer();

  std::string path_;
  BytesWriter buf_;
  BytesWriter scratch_;  // per-record staging so the length prefix is known
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace hyracks
}  // namespace asterix

#endif  // ASTERIX_HYRACKS_SPILL_H_
