#include "hyracks/memory.h"

namespace asterix {
namespace hyracks {

using adm::TypeTag;
using adm::Value;

size_t EstimateValueBytes(const Value& v) {
  size_t n = sizeof(Value);
  switch (v.tag()) {
    case TypeTag::kString:
      n += v.AsString().capacity() + sizeof(std::string);
      break;
    case TypeTag::kPoint:
    case TypeTag::kLine:
    case TypeTag::kRectangle:
    case TypeTag::kCircle:
    case TypeTag::kPolygon:
      n += v.AsPoints().size() * sizeof(adm::GeoPoint) + 32;
      break;
    case TypeTag::kBag:
    case TypeTag::kOrderedList:
      n += 32;
      for (const auto& item : v.AsList()) n += EstimateValueBytes(item);
      break;
    case TypeTag::kRecord:
      n += 32;
      for (const auto& [name, val] : v.AsRecord().fields) {
        n += name.capacity() + sizeof(std::string) + EstimateValueBytes(val);
      }
      break;
    default:
      break;
  }
  return n;
}

size_t EstimateTupleBytes(const Tuple& t) {
  size_t n = sizeof(Tuple);
  for (const auto& v : t) n += EstimateValueBytes(v);
  return n;
}

}  // namespace hyracks
}  // namespace asterix
