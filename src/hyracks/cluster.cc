#include "hyracks/cluster.h"

#include <time.h>

#include <chrono>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <thread>

#include "common/env.h"
#include "common/journal.h"
#include "common/ledger.h"
#include "common/metrics.h"
#include "hyracks/memory.h"

namespace asterix {
namespace hyracks {

size_t DefaultOpMemoryBudgetBytes() {
  const char* env = std::getenv("ASTERIX_OP_MEMORY_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  return static_cast<size_t>(std::strtoull(env, nullptr, 10));
}

int64_t DefaultSlowQueryUs() {
  const char* env = std::getenv("ASTERIX_SLOW_QUERY_US");
  if (env == nullptr || *env == '\0') return 0;
  return static_cast<int64_t>(std::strtoll(env, nullptr, 10));
}

namespace {

/// Per-connector traffic counters shared by all producer instances of the
/// connector (hence atomic). Producers accumulate in plain locals and flush
/// once per frame flush, so the cross-instance cache line is touched twice
/// per ~256 tuples instead of twice per tuple.
struct ConnCounters {
  std::atomic<uint64_t> tuples{0};
  std::atomic<uint64_t> network_tuples{0};
};

/// CPU time consumed by the calling thread, in microseconds. Two syscalls
/// per operator instance (task start/end) — nowhere near any per-tuple path.
uint64_t ThreadCpuUs() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1'000'000ull +
         static_cast<uint64_t>(ts.tv_nsec) / 1000ull;
}

/// Routes one operator instance's pushes through all of its outgoing
/// connectors to the right destination channels, counting hops into the
/// connector counters and the instance's span.
class RoutingEmitter : public Emitter {
 public:
  struct Route {
    const ConnectorDescriptor* conn;
    // One channel per destination instance.
    std::vector<InChannel*> dst_channels;
    // Node of each destination instance (network accounting).
    std::vector<int> dst_nodes;
    ConnCounters* counters = nullptr;
  };

  RoutingEmitter(int src_instance, int src_node, std::vector<Route> routes,
                 OperatorSpan* span, MemoryBudget* budget)
      : src_instance_(src_instance),
        src_node_(src_node),
        routes_(std::move(routes)),
        span_(span),
        budget_(budget) {
    for (auto& r : routes_) {
      buffers_.emplace_back(r.dst_channels.size());
    }
    pending_.resize(routes_.size());
  }

  void AddBytesRead(uint64_t n) override { span_->bytes_read += n; }

  MemoryBudget* memory_budget() override { return budget_; }

  void AddSpill(uint64_t bytes, uint64_t partitions) override {
    span_->spill_bytes += bytes;
    span_->spilled_partitions += partitions;
    journal::Journal::Default().Post(journal::EventKind::kSpill, bytes,
                                     partitions, span_->op_name.c_str());
  }

  void AddHashBuildBytes(uint64_t n) override {
    span_->hash_build_bytes += n;
  }

  void AddBatchStats(uint64_t batches, uint64_t rows_selected,
                     uint64_t rows_total) override {
    span_->batches += batches;
    span_->vec_rows_selected += rows_selected;
    span_->vec_rows_total += rows_total;
  }

  void AddKernelTime(uint64_t us) override { span_->kernel_us += us; }

  /// The vectorized path: a 1:1-only route forwards the batch itself as a
  /// frame; any other topology needs per-tuple routing, so fall back to the
  /// base materializer (which calls Push per selected row).
  void PushBatch(
      std::shared_ptr<storage::column::ColumnBatch> batch) override {
    if (batch == nullptr || batch->sel.rows.empty()) return;
    if (routes_.empty()) {
      span_->tuples_out += batch->sel.size();
      return;
    }
    if (routes_.size() != 1 ||
        routes_[0].conn->type != ConnectorType::kOneToOne) {
      Emitter::PushBatch(std::move(batch));
      return;
    }
    Route& r = routes_[0];
    int n = static_cast<int>(r.dst_channels.size());
    size_t dst = static_cast<size_t>(src_instance_ % n);
    span_->tuples_out += batch->sel.size();
    PendingCounts& pc = pending_[0];
    pc.tuples += batch->sel.size();
    if (r.dst_nodes[dst] != src_node_) pc.network_tuples += batch->sel.size();
    // Preserve ordering against any row tuples already buffered for dst.
    FlushBuffer(0, dst);
    Frame frame;
    frame.batch = std::move(batch);
    auto t0 = std::chrono::steady_clock::now();
    r.dst_channels[dst]->Push(src_instance_, std::move(frame));
    span_->output_wait_us += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    ++span_->frames_flushed;
    FlushCounts(0);
  }

  void Push(Tuple tuple) override {
    ++span_->tuples_out;
    if (routes_.empty()) return;
    size_t last_route = routes_.size() - 1;
    for (size_t ri = 0; ri < routes_.size(); ++ri) {
      Route& r = routes_[ri];
      int n = static_cast<int>(r.dst_channels.size());
      bool last = ri == last_route;
      switch (r.conn->type) {
        case ConnectorType::kOneToOne: {
          RouteTo(ri, src_instance_ % n, tuple, last);
          break;
        }
        case ConnectorType::kMToNReplicating: {
          for (int d = 0; d < n; ++d) {
            RouteTo(ri, d, tuple, last && d == n - 1);
          }
          break;
        }
        case ConnectorType::kLocalityAwareMToNPartitioning: {
          int d = r.conn->locality_map
                      ? r.conn->locality_map(src_instance_, n)
                      : src_instance_ % n;
          RouteTo(ri, d, tuple, last);
          break;
        }
        case ConnectorType::kMToNPartitioning:
        case ConnectorType::kHashPartitioningShuffle:
        case ConnectorType::kMToNPartitioningMerging: {
          uint64_t h = r.conn->partition_hash ? r.conn->partition_hash(tuple) : 0;
          RouteTo(ri, static_cast<int>(h % static_cast<uint64_t>(n)), tuple,
                  last);
          break;
        }
      }
    }
  }

  void Flush() override {
    for (size_t ri = 0; ri < routes_.size(); ++ri) {
      for (size_t d = 0; d < buffers_[ri].size(); ++d) {
        FlushBuffer(ri, d);
      }
      FlushCounts(ri);
    }
  }

  /// End-of-stream to every destination.
  void Done() {
    Flush();
    for (auto& r : routes_) {
      for (auto* ch : r.dst_channels) ch->ProducerDone(src_instance_);
    }
  }

  void FailAll(const Status& status) {
    for (auto& r : routes_) {
      for (auto* ch : r.dst_channels) ch->Fail(status);
    }
  }

 private:
  struct PendingCounts {
    uint64_t tuples = 0;
    uint64_t network_tuples = 0;
  };

  /// The final delivery of a tuple moves it into the route buffer; earlier
  /// ones (multiple routes, replicating fan-out) get a copy.
  void RouteTo(size_t route, int dst, Tuple& tuple, bool take) {
    if (take) {
      Deliver(route, dst, std::move(tuple));
    } else {
      Tuple copy = tuple;
      Deliver(route, dst, std::move(copy));
    }
  }

  void Deliver(size_t route, int dst, Tuple&& tuple) {
    Frame& buf = buffers_[route][static_cast<size_t>(dst)];
    buf.tuples.push_back(std::move(tuple));
    PendingCounts& pc = pending_[route];
    ++pc.tuples;
    if (routes_[route].dst_nodes[static_cast<size_t>(dst)] != src_node_) {
      ++pc.network_tuples;
    }
    if (buf.tuples.size() >= kDefaultFrameTuples) {
      FlushBuffer(route, static_cast<size_t>(dst));
      FlushCounts(route);
    }
  }

  void FlushBuffer(size_t route, size_t dst) {
    Frame& buf = buffers_[route][dst];
    if (buf.tuples.empty()) return;
    // Push may block on a full channel (backpressure); the wall time of the
    // whole call is this instance's blocked-on-output time.
    auto t0 = std::chrono::steady_clock::now();
    routes_[route].dst_channels[dst]->Push(src_instance_, std::move(buf));
    span_->output_wait_us += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    buf = Frame{};
    ++span_->frames_flushed;
  }

  void FlushCounts(size_t route) {
    PendingCounts& pc = pending_[route];
    if (pc.tuples == 0) return;
    ConnCounters* c = routes_[route].counters;
    c->tuples.fetch_add(pc.tuples, std::memory_order_relaxed);
    if (pc.network_tuples > 0) {
      c->network_tuples.fetch_add(pc.network_tuples, std::memory_order_relaxed);
    }
    pc = PendingCounts{};
  }

  int src_instance_;
  int src_node_;
  std::vector<Route> routes_;
  std::vector<std::vector<Frame>> buffers_;  // [route][dst]
  std::vector<PendingCounts> pending_;       // [route], flushed per frame
  OperatorSpan* span_;
  MemoryBudget* budget_;  // may be null (operator is not memory-intensive)
};

}  // namespace

std::vector<ActiveJobSnapshot> Cluster::ActiveJobs() const {
  std::vector<ActiveJobSnapshot> out;
  auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(active_mu_);
  out.reserve(active_jobs_.size());
  for (const auto& [job_id, a] : active_jobs_) {
    ActiveJobSnapshot s;
    s.job_id = job_id;
    s.query_id = a.query_id;
    s.elapsed_ms =
        std::chrono::duration<double, std::milli>(now - a.start).count();
    s.instances = a.instances;
    s.budget_used_bytes = a.budget_used->load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

Result<JobStats> Cluster::ExecuteJob(const JobSpec& job) {
  auto start = std::chrono::steady_clock::now();
  auto since_start_ms = [start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  auto since_start_us = [start] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };
  // The job carries its originating query id; re-publish it on this thread
  // (SubmitAsync executes on a detached thread) so admission-side journal
  // posts are tagged too.
  uint64_t query_id =
      job.query_id != 0 ? job.query_id : journal::CurrentQueryId();
  journal::ScopedQueryId query_scope(query_id);
  uint64_t job_id = jobs_executed_.load() + 1;
  journal::Journal::Default().Post(journal::EventKind::kJobAdmit, job_id);

  // Count memory-intensive instances first: they determine what this job
  // must ask the cluster-wide admission pool for. Jobs with no build state
  // (pure scans, inserts) bypass the gate entirely.
  int budgeted_instances = 0;
  for (const auto& op : job.operators) {
    if (op.memory_intensive) budgeted_instances += op.parallelism;
  }
  uint64_t declared_bytes = 0;
  if (admission_.enabled() && budgeted_instances > 0) {
    // Declare the configured per-job operator budget; with no per-job cap
    // set, ask for a quarter of the pool so up to four unbounded jobs can
    // hold grants concurrently.
    declared_bytes = config_.op_memory_budget_bytes > 0
                         ? config_.op_memory_budget_bytes
                         : admission_.pool_bytes() / 4;
    if (declared_bytes == 0) declared_bytes = 1;
  }
  // Blocks (FIFO) until the pool can cover the declaration; the wait lands
  // in phases.admission_us below. The grant is held until this frame exits.
  server::AdmissionGrant grant;
  if (declared_bytes > 0) {
    uint64_t wait_start_us = since_start_us();
    auto admitted = admission_.Acquire(declared_bytes);
    uint64_t waited_us = since_start_us() - wait_start_us;
    ledger::ResourceLedger::Default().AddAdmissionWait(query_id, waited_us);
    if (!admitted.ok()) return admitted.status();
    grant = admitted.take();
  }

  // Model the fixed job generation/distribution overhead of a real cluster.
  if (config_.job_startup_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(config_.job_startup_us));
  }

  auto profile = std::make_shared<JobProfile>();
  profile->job_id = job_id;
  profile->query_id = query_id;
  profile->num_nodes = config_.num_nodes;
  profile->startup_ms = since_start_ms();

  std::vector<ConnCounters> conn_counters(job.connectors.size());

  // Channels: one per (connector, destination instance). Owned here. All
  // are bounded by channel_capacity_frames, so a fast producer blocks
  // instead of queueing without limit.
  std::vector<std::unique_ptr<InChannel>> channel_storage;
  // (connector id) -> channels per destination instance.
  std::map<int, std::vector<InChannel*>> conn_channels;
  for (const auto& c : job.connectors) {
    const OperatorDescriptor* src = job.FindOperator(c.src_op);
    const OperatorDescriptor* dst = job.FindOperator(c.dst_op);
    if (!src || !dst) return Status::InvalidArgument("dangling connector");
    std::vector<InChannel*> per_dst;
    for (int d = 0; d < dst->parallelism; ++d) {
      if (c.type == ConnectorType::kMToNPartitioningMerging && c.merge_compare) {
        channel_storage.push_back(std::make_unique<MergeChannel>(
            src->parallelism, c.merge_compare, config_.channel_capacity_frames));
      } else {
        channel_storage.push_back(std::make_unique<FifoChannel>(
            src->parallelism, config_.channel_capacity_frames));
      }
      per_dst.push_back(channel_storage.back().get());
    }
    conn_channels[c.id] = std::move(per_dst);
  }

  // Instance node mapping: storage-parallel operators put instance p on the
  // node owning partition p; singleton operators run on node 0.
  auto node_of_instance = [&](const OperatorDescriptor& op, int instance) {
    if (op.parallelism == num_partitions()) return NodeOfPartition(instance);
    return instance % config_.num_nodes;
  };

  // Lay out every instance's span up front so worker threads each write
  // only their own element (no resizing, no sharing).
  for (const auto& op : job.operators) {
    for (int inst = 0; inst < op.parallelism; ++inst) {
      OperatorSpan span;
      span.op_id = op.id;
      span.op_name = op.name;
      span.instance = inst;
      span.node = node_of_instance(op, inst);
      profile->spans.push_back(std::move(span));
    }
  }

  // Divide the job's operator memory budget evenly across the instances of
  // its memory-intensive operators (the ones that build join tables, group
  // tables, or sort buffers). Each instance gets a private MemoryBudget —
  // single-threaded by construction — and spills against it independently.
  // Under admission the divisor is the *granted* bytes, so what the pool
  // handed out is exactly what the operators are bounded by.
  size_t job_budget = grant.bytes() > 0
                          ? static_cast<size_t>(grant.bytes())
                          : config_.op_memory_budget_bytes;
  size_t per_instance_budget =
      budgeted_instances > 0 && job_budget > 0
          ? job_budget / static_cast<size_t>(budgeted_instances)
          : 0;
  if (job_budget > 0 && budgeted_instances > 0 && per_instance_budget == 0) {
    per_instance_budget = 1;  // a budget was asked for; never round to "off"
  }
  std::deque<MemoryBudget> budget_storage;  // stable addresses for tasks

  // Register the job for live introspection: StatusJson readers see its
  // query id, elapsed time, and memory-budget usage while it runs. The
  // shared atomic outlives this frame via shared_ptr, so a racing snapshot
  // after deregistration is still safe.
  auto budget_used = std::make_shared<std::atomic<uint64_t>>(0);
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    ActiveJob active;
    active.query_id = query_id;
    active.start = start;
    active.instances = static_cast<int>(profile->spans.size());
    active.budget_used = budget_used;
    active_jobs_[job_id] = std::move(active);
  }

  // Build one task per operator instance and hand the set to the persistent
  // executor pool (which grows to admit the whole job, then reuses its
  // threads across jobs). RunAll blocks until every instance finishes, so
  // stack captures below stay valid.
  std::vector<std::function<void()>> tasks;
  std::mutex status_mu;
  Status first_failure;

  size_t span_index = 0;
  for (const auto& op : job.operators) {
    for (int inst = 0; inst < op.parallelism; ++inst) {
      OperatorSpan* span = &profile->spans[span_index++];
      // Gather input channels by port, wrapped to count consumed tuples and
      // input-wait time into the instance's span (consumed single-threaded
      // by the instance's own worker).
      std::vector<InChannel*> inputs(static_cast<size_t>(op.num_inputs), nullptr);
      for (const auto& c : job.connectors) {
        if (c.dst_op != op.id) continue;
        channel_storage.push_back(std::make_unique<CountingChannel>(
            conn_channels[c.id][inst], &span->tuples_in, &span->input_wait_us));
        inputs[static_cast<size_t>(c.dst_port)] = channel_storage.back().get();
      }
      // Gather output routes.
      std::vector<RoutingEmitter::Route> routes;
      for (const auto& c : job.connectors) {
        if (c.src_op != op.id) continue;
        const OperatorDescriptor* dst = job.FindOperator(c.dst_op);
        RoutingEmitter::Route r;
        r.conn = &c;
        r.dst_channels = conn_channels[c.id];
        r.counters = &conn_counters[static_cast<size_t>(c.id)];
        for (int d = 0; d < dst->parallelism; ++d) {
          r.dst_nodes.push_back(node_of_instance(*dst, d));
        }
        routes.push_back(std::move(r));
      }

      MemoryBudget* budget = nullptr;
      if (op.memory_intensive && per_instance_budget > 0) {
        budget_storage.emplace_back(per_instance_budget, budget_used.get());
        budget = &budget_storage.back();
      }

      tasks.emplace_back([&, inputs, routes = std::move(routes), span, budget,
                          query_id, factory = op.factory]() mutable {
        // Tag the worker thread with the originating query so every journal
        // event posted below this frame (LSM flush/merge, lock waits, spills,
        // backpressure) carries the right query id.
        journal::ScopedQueryId task_query_scope(query_id);
        span->start_ms = since_start_ms();
        uint64_t cpu_start_us = ThreadCpuUs();
        RoutingEmitter emitter(span->instance, span->node, std::move(routes),
                               span, budget);
        std::unique_ptr<OperatorInstance> instance = factory(span->instance);
        Status st = instance->Run(inputs, &emitter);
        if (st.ok()) {
          emitter.Done();
        } else {
          span->ok = false;
          emitter.FailAll(st);
          emitter.Done();
          // Abandon this instance's inputs so producers blocked on a full
          // channel wake up and drain — no teardown deadlock.
          for (InChannel* in : inputs) {
            if (in) in->CancelConsumer();
          }
          std::lock_guard<std::mutex> lock(status_mu);
          if (first_failure.ok()) first_failure = st;
        }
        // Same thread that ran the instance, so the thread-CPU delta is
        // exactly this instance's compute (waits don't accrue CPU).
        span->cpu_us = ThreadCpuUs() - cpu_start_us;
        span->end_ms = since_start_ms();
      });
    }
  }
  // Everything up to here — modeled startup, channel wiring, task building —
  // is the job's admission wait; worker wall time is its execute span.
  profile->phases.admission_us = since_start_us();
  journal::Journal::Default().Post(journal::EventKind::kJobStart, job_id,
                                   tasks.size());
  pool_.RunAll(std::move(tasks));
  profile->phases.execute_us = since_start_us() - profile->phases.admission_us;
  ++jobs_executed_;
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    active_jobs_.erase(job_id);
  }

  JobStats stats;
  stats.elapsed_ms = since_start_ms();
  profile->elapsed_ms = stats.elapsed_ms;
  journal::Journal::Default().Post(journal::EventKind::kJobFinish, job_id,
                                   since_start_us());
  for (const auto& c : job.connectors) {
    const ConnCounters& counters = conn_counters[static_cast<size_t>(c.id)];
    ConnectorHops hops;
    hops.conn_id = c.id;
    hops.type = ConnectorTypeName(c.type);
    hops.src_op = c.src_op;
    hops.dst_op = c.dst_op;
    hops.tuples = counters.tuples.load(std::memory_order_relaxed);
    hops.network_tuples = counters.network_tuples.load(std::memory_order_relaxed);
    stats.connector_tuples += hops.tuples;
    stats.network_tuples += hops.network_tuples;
    profile->connectors.push_back(std::move(hops));
  }

  {
    auto& reg = metrics::MetricsRegistry::Default();
    static metrics::Counter* jobs = reg.GetCounter("hyracks.jobs");
    static metrics::Counter* conn_tuples =
        reg.GetCounter("hyracks.connector_tuples");
    static metrics::Counter* net_tuples =
        reg.GetCounter("hyracks.network_tuples");
    static metrics::Histogram* job_us = reg.GetHistogram("hyracks.job_us");
    static metrics::Counter* spill_bytes =
        reg.GetCounter("hyracks.spill_bytes");
    static metrics::Counter* spilled_partitions =
        reg.GetCounter("hyracks.spilled_partitions");
    static metrics::Counter* cpu_us_total = reg.GetCounter("hyracks.cpu_us");
    // Byte-scale bounds: powers of four, 1 KiB .. 1 GiB.
    static metrics::Histogram* build_bytes = [&reg] {
      std::vector<uint64_t> bounds;
      for (uint64_t b = 1024; b <= (1ull << 30); b *= 4) bounds.push_back(b);
      return reg.GetHistogram("hyracks.hash_build_bytes", std::move(bounds));
    }();
    jobs->Inc();
    conn_tuples->Inc(stats.connector_tuples);
    net_tuples->Inc(stats.network_tuples);
    job_us->Observe(static_cast<uint64_t>(stats.elapsed_ms * 1000.0));
    uint64_t job_cpu_us = 0;
    uint64_t job_bytes_read = 0;
    uint64_t job_spill_bytes = 0;
    for (const auto& span : profile->spans) {
      if (span.spill_bytes > 0) spill_bytes->Inc(span.spill_bytes);
      if (span.spilled_partitions > 0) {
        spilled_partitions->Inc(span.spilled_partitions);
      }
      if (span.hash_build_bytes > 0) build_bytes->Observe(span.hash_build_bytes);
      job_cpu_us += span.cpu_us;
      job_bytes_read += span.bytes_read;
      job_spill_bytes += span.spill_bytes;
    }
    cpu_us_total->Inc(job_cpu_us);
    // Charge the originating query's ledger entry once per job (spans were
    // joined by RunAll, so these totals are final).
    auto& led = ledger::ResourceLedger::Default();
    led.AddCpu(query_id, job_cpu_us);
    led.AddBytesRead(query_id, job_bytes_read);
    led.AddSpill(query_id, job_spill_bytes);
    led.AddBytesWritten(query_id, job_spill_bytes);
  }

  // Optional trace sink: one Chrome trace_event file per job.
  if (!config_.trace_dir.empty()) {
    (void)env::CreateDirs(config_.trace_dir);
    std::string trace = profile->ToChromeTrace();
    std::string path = config_.trace_dir + "/job_" +
                       std::to_string(profile->job_id) + ".trace.json";
    (void)env::WriteFileAtomic(path, trace.data(), trace.size());
  }

  if (!first_failure.ok()) return first_failure;
  stats.profile = std::move(profile);
  return stats;
}

}  // namespace hyracks
}  // namespace asterix
