#include "hyracks/cluster.h"

#include <chrono>
#include <map>
#include <mutex>
#include <thread>

namespace asterix {
namespace hyracks {

namespace {

/// Routes one operator instance's pushes through all of its outgoing
/// connectors to the right destination channels, counting hops.
class RoutingEmitter : public Emitter {
 public:
  struct Route {
    const ConnectorDescriptor* conn;
    // One channel per destination instance.
    std::vector<InChannel*> dst_channels;
    // Node of each destination instance (network accounting).
    std::vector<int> dst_nodes;
  };

  RoutingEmitter(int src_instance, int src_node, std::vector<Route> routes,
                 std::atomic<uint64_t>* connector_tuples,
                 std::atomic<uint64_t>* network_tuples)
      : src_instance_(src_instance),
        src_node_(src_node),
        routes_(std::move(routes)),
        connector_tuples_(connector_tuples),
        network_tuples_(network_tuples) {
    for (auto& r : routes_) {
      buffers_.emplace_back(r.dst_channels.size());
    }
  }

  void Push(Tuple tuple) override {
    for (size_t ri = 0; ri < routes_.size(); ++ri) {
      Route& r = routes_[ri];
      int n = static_cast<int>(r.dst_channels.size());
      switch (r.conn->type) {
        case ConnectorType::kOneToOne: {
          Deliver(ri, src_instance_ % n, tuple);
          break;
        }
        case ConnectorType::kMToNReplicating: {
          for (int d = 0; d < n; ++d) Deliver(ri, d, tuple);
          break;
        }
        case ConnectorType::kLocalityAwareMToNPartitioning: {
          int d = r.conn->locality_map
                      ? r.conn->locality_map(src_instance_, n)
                      : src_instance_ % n;
          Deliver(ri, d, tuple);
          break;
        }
        case ConnectorType::kMToNPartitioning:
        case ConnectorType::kHashPartitioningShuffle:
        case ConnectorType::kMToNPartitioningMerging: {
          uint64_t h = r.conn->partition_hash ? r.conn->partition_hash(tuple) : 0;
          Deliver(ri, static_cast<int>(h % static_cast<uint64_t>(n)), tuple);
          break;
        }
      }
    }
  }

  void Flush() override {
    for (size_t ri = 0; ri < routes_.size(); ++ri) {
      for (size_t d = 0; d < buffers_[ri].size(); ++d) {
        FlushBuffer(ri, d);
      }
    }
  }

  /// End-of-stream to every destination.
  void Done() {
    Flush();
    for (auto& r : routes_) {
      for (auto* ch : r.dst_channels) ch->ProducerDone(src_instance_);
    }
  }

  void FailAll(const Status& status) {
    for (auto& r : routes_) {
      for (auto* ch : r.dst_channels) ch->Fail(status);
    }
  }

 private:
  void Deliver(size_t route, int dst, const Tuple& tuple) {
    Frame& buf = buffers_[route][dst];
    buf.tuples.push_back(tuple);
    connector_tuples_->fetch_add(1, std::memory_order_relaxed);
    if (routes_[route].dst_nodes[dst] != src_node_) {
      network_tuples_->fetch_add(1, std::memory_order_relaxed);
    }
    if (buf.tuples.size() >= kDefaultFrameTuples) FlushBuffer(route, dst);
  }

  void FlushBuffer(size_t route, size_t dst) {
    Frame& buf = buffers_[route][dst];
    if (buf.tuples.empty()) return;
    routes_[route].dst_channels[dst]->Push(src_instance_, std::move(buf));
    buf = Frame{};
  }

  int src_instance_;
  int src_node_;
  std::vector<Route> routes_;
  std::vector<std::vector<Frame>> buffers_;  // [route][dst]
  std::atomic<uint64_t>* connector_tuples_;
  std::atomic<uint64_t>* network_tuples_;
};

}  // namespace

Result<JobStats> Cluster::ExecuteJob(const JobSpec& job) {
  auto start = std::chrono::steady_clock::now();
  // Model the fixed job generation/distribution overhead of a real cluster.
  if (config_.job_startup_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(config_.job_startup_us));
  }

  std::atomic<uint64_t> connector_tuples{0};
  std::atomic<uint64_t> network_tuples{0};

  // Channels: one per (connector, destination instance). Owned here.
  std::vector<std::unique_ptr<InChannel>> channel_storage;
  // (connector id) -> channels per destination instance.
  std::map<int, std::vector<InChannel*>> conn_channels;
  for (const auto& c : job.connectors) {
    const OperatorDescriptor* src = job.FindOperator(c.src_op);
    const OperatorDescriptor* dst = job.FindOperator(c.dst_op);
    if (!src || !dst) return Status::InvalidArgument("dangling connector");
    std::vector<InChannel*> per_dst;
    for (int d = 0; d < dst->parallelism; ++d) {
      if (c.type == ConnectorType::kMToNPartitioningMerging && c.merge_compare) {
        channel_storage.push_back(
            std::make_unique<MergeChannel>(src->parallelism, c.merge_compare));
      } else {
        channel_storage.push_back(
            std::make_unique<FifoChannel>(src->parallelism));
      }
      per_dst.push_back(channel_storage.back().get());
    }
    conn_channels[c.id] = std::move(per_dst);
  }

  // Instance node mapping: storage-parallel operators put instance p on the
  // node owning partition p; singleton operators run on node 0.
  auto node_of_instance = [&](const OperatorDescriptor& op, int instance) {
    if (op.parallelism == num_partitions()) return NodeOfPartition(instance);
    return instance % config_.num_nodes;
  };

  // Launch every operator instance.
  std::vector<std::thread> threads;
  std::mutex status_mu;
  Status first_failure;

  for (const auto& op : job.operators) {
    for (int inst = 0; inst < op.parallelism; ++inst) {
      // Gather input channels by port.
      std::vector<InChannel*> inputs(static_cast<size_t>(op.num_inputs), nullptr);
      for (const auto& c : job.connectors) {
        if (c.dst_op != op.id) continue;
        inputs[static_cast<size_t>(c.dst_port)] = conn_channels[c.id][inst];
      }
      // Gather output routes.
      std::vector<RoutingEmitter::Route> routes;
      for (const auto& c : job.connectors) {
        if (c.src_op != op.id) continue;
        const OperatorDescriptor* dst = job.FindOperator(c.dst_op);
        RoutingEmitter::Route r;
        r.conn = &c;
        r.dst_channels = conn_channels[c.id];
        for (int d = 0; d < dst->parallelism; ++d) {
          r.dst_nodes.push_back(node_of_instance(*dst, d));
        }
        routes.push_back(std::move(r));
      }

      int node = node_of_instance(op, inst);
      threads.emplace_back([&, inputs, routes = std::move(routes), inst, node,
                            factory = op.factory]() mutable {
        RoutingEmitter emitter(inst, node, std::move(routes), &connector_tuples,
                               &network_tuples);
        std::unique_ptr<OperatorInstance> instance = factory(inst);
        Status st = instance->Run(inputs, &emitter);
        if (st.ok()) {
          emitter.Done();
        } else {
          emitter.FailAll(st);
          emitter.Done();
          std::lock_guard<std::mutex> lock(status_mu);
          if (first_failure.ok()) first_failure = st;
        }
      });
    }
  }
  for (auto& t : threads) t.join();
  ++jobs_executed_;

  if (!first_failure.ok()) return first_failure;
  JobStats stats;
  stats.elapsed_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  stats.connector_tuples = connector_tuples.load();
  stats.network_tuples = network_tuples.load();
  return stats;
}

}  // namespace hyracks
}  // namespace asterix
