#ifndef ASTERIX_HYRACKS_OPERATORS_H_
#define ASTERIX_HYRACKS_OPERATORS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hyracks/job.h"
#include "hyracks/vector/kernels.h"
#include "storage/dataset_store.h"

namespace asterix {
namespace hyracks {

/// Aggregate call compiled into a group-by/aggregate operator.
struct AggSpec {
  std::string function;  // count/min/max/sum/avg or sql-*
  TupleEval input;       // evaluated per input tuple (ignored for count)
};

/// Local/global split of an aggregation (Figure 6's design point).
enum class AggMode {
  kComplete,  // one-shot aggregation
  kLocal,     // emit partial state records
  kGlobal,    // combine partial state records into finals
};

// ---------------------------------------------------------------------------
// Factory helpers. Each returns a fully-populated OperatorDescriptor; the
// caller adds it to a JobSpec and wires connectors.
// ---------------------------------------------------------------------------

/// Emits a fixed set of tuples from instance 0 (constant sources, DML
/// payloads, `1+1` queries).
OperatorDescriptor MakeValueScan(std::vector<Tuple> tuples);

/// Concatenates `num_inputs` input streams (UNION ALL).
OperatorDescriptor MakeUnion(int parallelism, int num_inputs);

/// Full scan of a partitioned dataset: instance p scans storage partition p,
/// emitting [record] tuples. parallelism = #partitions.
/// `projection` restricts which record fields are materialized: on columnar
/// datasets only the touched column pages are read (with min/max page
/// skipping for range predicates); on row datasets the whole record is read
/// and trimmed. Physical bytes read are reported to the emitter for
/// EXPLAIN ANALYZE.
OperatorDescriptor MakeDatasetScan(
    storage::PartitionedDataset* dataset,
    storage::column::Projection projection = storage::column::Projection::All());

/// Primary-index range scan with constant bounds; emits [record]. See
/// MakeDatasetScan for projection semantics.
OperatorDescriptor MakePrimaryRangeScan(
    storage::PartitionedDataset* dataset, storage::ScanBounds bounds,
    storage::column::Projection projection = storage::column::Projection::All());

/// Primary-index point lookups driven by input tuples: `key_columns` name
/// the input columns holding the primary key; each match emits
/// input-tuple ++ [record]. With `locked`, each fetch takes an S record
/// lock first (the paper's secondary-index post-validation protocol).
OperatorDescriptor MakePrimarySearch(storage::PartitionedDataset* dataset,
                                     txn::TxnManager* txns,
                                     std::vector<int> key_columns, bool locked);

/// Secondary B-tree index range scan with constant bounds; emits the
/// referenced primary keys as [pk...] tuples. Runs on every partition
/// (secondary indexes are node-local).
OperatorDescriptor MakeSecondarySearch(storage::PartitionedDataset* dataset,
                                       std::string index_name,
                                       storage::ScanBounds bounds,
                                       size_t pk_arity);

/// Secondary B-tree lookups driven by input tuples: per input tuple,
/// `key_eval` yields the secondary key value; every matching index entry
/// emits input ++ [pk...]. This is the index side of an index nested-loop
/// join.
OperatorDescriptor MakeSecondaryProbe(storage::PartitionedDataset* dataset,
                                      std::string index_name,
                                      TupleEval key_eval, size_t pk_arity);

/// R-tree search with a constant query rectangle; emits [pk...].
OperatorDescriptor MakeRTreeSearch(storage::PartitionedDataset* dataset,
                                   std::string index_name, storage::Mbr query,
                                   size_t pk_arity);

/// Inverted-index occurrence search: candidates matching at least
/// `min_matches` of `tokens`; emits [pk...].
OperatorDescriptor MakeInvertedSearch(storage::PartitionedDataset* dataset,
                                      std::string index_name,
                                      std::vector<std::string> tokens,
                                      size_t min_matches, size_t pk_arity);

/// Filters tuples by a boolean predicate (three-valued: only TRUE passes).
OperatorDescriptor MakeSelect(int parallelism, TupleEval predicate);

/// Appends computed columns; with `project`, reorders/subsets first.
OperatorDescriptor MakeAssign(int parallelism, std::vector<TupleEval> exprs);

/// Keeps only the named columns, in order.
OperatorDescriptor MakeProject(int parallelism, std::vector<int> columns);

/// Blocking external merge sort: buffers tuples until `spill_budget_tuples`
/// or the instance's byte MemoryBudget trips, spilling sorted runs to disk
/// and heap-merging them k ways (the production behaviour a memory-bounded
/// sort needs). `limit` enables top-k truncation of the output.
OperatorDescriptor MakeSort(int parallelism, TupleCompare compare,
                            std::optional<size_t> limit = std::nullopt,
                            size_t spill_budget_tuples = 1u << 18);

/// Hybrid/Grace hash join: port 0 = build, port 1 = probe. Emits
/// build-tuple ++ probe-tuple. `left_outer` emits nulls ++ probe for probe
/// tuples without a match (port semantics: outer side is the PROBE side).
/// Build tuples go into per-hash-partition open-addressing tables keyed by
/// serialized normalized key bytes; when the instance's MemoryBudget trips,
/// whole partitions spill to scratch runs and are joined recursively.
OperatorDescriptor MakeHybridHashJoin(int parallelism,
                                      std::vector<TupleEval> build_keys,
                                      std::vector<TupleEval> probe_keys,
                                      size_t build_arity, bool left_outer);

/// Nested-loop join: port 0 buffered, port 1 streamed, predicate over the
/// concatenated tuple (build columns first). Budgeted: build tuples past
/// the instance's MemoryBudget spill to a run and are joined block-at-a-time
/// against a re-scanned probe run (block nested-loop), with left-outer
/// emission deferred behind per-probe matched flags.
OperatorDescriptor MakeNestedLoopJoin(int parallelism, TupleEval predicate,
                                      size_t build_arity, bool left_outer);

/// Hash group-by. mode=kLocal emits partial-state columns; kGlobal consumes
/// them; kComplete does both at once. Budgeted: when the instance's
/// MemoryBudget trips, hash partitions of group state spill to disk as
/// partial-aggregate tuples and are merged back (Aggregator::Combine) on a
/// recursive pass.
OperatorDescriptor MakeHashGroupBy(int parallelism, std::vector<TupleEval> keys,
                                   std::vector<AggSpec> aggs, AggMode mode);

/// Group-by over key-sorted input (streaming, no hash table).
OperatorDescriptor MakePreclusteredGroupBy(int parallelism,
                                           std::vector<TupleEval> keys,
                                           std::vector<AggSpec> aggs,
                                           AggMode mode);

/// Ungrouped aggregation (the Figure 6 local-avg/global-avg pair).
OperatorDescriptor MakeAggregate(int parallelism, std::vector<AggSpec> aggs,
                                 AggMode mode);

/// Group-by that materializes, per group, a BAG of the values found in each
/// of `collect_columns` (the un-rewritten `group by ... with $v` semantics
/// whose materialization cost the paper's pilots exposed). Emits
/// [keys..., bag(col0), bag(col1), ...]. Budgeted: hash partitions of bag
/// state spill to disk as output-shaped partial tuples and are bag-
/// concatenated back on a recursive pass, like MakeHashGroupBy.
OperatorDescriptor MakeBagGroupBy(int parallelism, std::vector<TupleEval> keys,
                                  std::vector<int> collect_columns);

/// Hash-based duplicate elimination: on `keys` when given, else on whole
/// tuples. Set semantics over serialized normalized key bytes (no per-key
/// Value vectors); emits the first occurrence of each key as it streams by,
/// spilling hash partitions under memory pressure.
OperatorDescriptor MakeDistinct(int parallelism,
                                std::vector<TupleEval> keys = {});

/// Offset/limit; run with parallelism 1 after a merging connector.
OperatorDescriptor MakeLimit(size_t limit, size_t offset = 0);

/// Expands a collection-valued expression: for each element e of
/// `collection_eval(t)`, emits t ++ [e]. Unknown/empty collections emit
/// nothing unless `outer`, which then emits t ++ [missing].
OperatorDescriptor MakeUnnest(int parallelism, TupleEval collection_eval,
                              bool outer, bool with_position = false);

/// Transactional insert sink: instance p inserts records routed to storage
/// partition p (connector must hash on primary key). Emits one [count]
/// tuple per instance.
OperatorDescriptor MakeInsert(storage::PartitionedDataset* dataset,
                              int record_column);

/// Transactional delete sink keyed by primary key columns.
OperatorDescriptor MakeDelete(storage::PartitionedDataset* dataset,
                              std::vector<int> key_columns);

/// Collects all tuples into `sink` (parallelism 1; the query result).
OperatorDescriptor MakeResultSink(std::shared_ptr<std::vector<Tuple>> sink);

// ---------------------------------------------------------------------------
// Vectorized operators (typed columnar batches + selection vectors). The
// lowering pass in algebricks emits these for filter/aggregate pipelines
// over columnar datasets; everything else keeps the row-at-a-time operators.
// ---------------------------------------------------------------------------

/// One lowered ungrouped aggregate: the function (count/min/max/sum/avg or
/// sql-*) plus the top-level record field it reads. Empty `field` counts
/// whole rows (count over the record variable).
struct VectorAggSpec {
  std::string function;
  std::string field;
};

/// Columnar batch scan: instance p scans storage partition p, emitting typed
/// ColumnBatch frames (no row reconstruction when the partition is in
/// columnar steady state; otherwise assembled rows are re-batched through
/// BatchBuilder — same data, same order). `projection` must name explicit
/// fields (the lanes).
OperatorDescriptor MakeVectorScan(storage::PartitionedDataset* dataset,
                                  storage::column::Projection projection,
                                  storage::ScanBounds bounds = {});

/// Vectorized filter: refines each batch's selection vector in place with
/// the lowered predicate kernel and forwards the surviving batch. Row-tuple
/// frames (a non-batch producer upstream) go through `fallback`, the
/// compiled interpreter predicate — identical semantics.
OperatorDescriptor MakeVectorSelect(int parallelism,
                                    std::shared_ptr<vector::PredNode> pred,
                                    TupleEval fallback);

/// Vectorized ungrouped aggregation over batches. mode=kLocal emits the
/// partial-state tuple the existing global Aggregator combines; kComplete
/// emits finals directly. Row-tuple frames are re-batched and fed through
/// the same kernels (semantics are interpreter-exact either way).
OperatorDescriptor MakeVectorAggregate(int parallelism,
                                       std::vector<VectorAggSpec> aggs,
                                       AggMode mode);

/// Ends a vectorized pipeline: materializes each batch's selected rows into
/// [record] tuples for row-oriented consumers (late materialization — only
/// rows still selected here are ever rebuilt).
OperatorDescriptor MakeVectorMaterialize(int parallelism);

/// Hash function over selected columns, for partitioning connectors.
std::function<uint64_t(const Tuple&)> HashOnColumns(std::vector<int> columns);

}  // namespace hyracks
}  // namespace asterix

#endif  // ASTERIX_HYRACKS_OPERATORS_H_
