#ifndef ASTERIX_HYRACKS_MEMORY_H_
#define ASTERIX_HYRACKS_MEMORY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "hyracks/tuple.h"

namespace asterix {
namespace hyracks {

/// The fixed memory quota one operator instance runs within — its share of
/// ClusterConfig::op_memory_budget_bytes (the executor divides the per-job
/// budget across the memory-intensive operator instances it schedules).
/// Joins, hash aggregations, distincts, and sorts charge their build/group/
/// buffer state against it and spill partitions to scratch runs once
/// over_budget() trips; the paper's "every query runs within a fixed memory
/// budget" contract. Owned and touched by a single operator-instance thread,
/// so the local counters are plain; the optional `shared_used` sink is an
/// atomic the executor aggregates live per-job usage through (StatusJson),
/// updated with relaxed adds — the same cost class as a metrics counter.
class MemoryBudget {
 public:
  /// limit_bytes == 0 means unbounded (charges are tracked but never trip).
  explicit MemoryBudget(size_t limit_bytes,
                        std::atomic<uint64_t>* shared_used = nullptr)
      : limit_(limit_bytes), shared_used_(shared_used) {}

  void Charge(size_t n) {
    used_ += n;
    if (used_ > peak_) peak_ = used_;
    if (shared_used_ != nullptr) {
      shared_used_->fetch_add(n, std::memory_order_relaxed);
    }
  }
  void Release(size_t n) {
    size_t dec = n < used_ ? n : used_;
    used_ -= dec;
    if (shared_used_ != nullptr) {
      shared_used_->fetch_sub(dec, std::memory_order_relaxed);
    }
  }

  bool unbounded() const { return limit_ == 0; }
  bool over_budget() const { return limit_ != 0 && used_ > limit_; }
  size_t used_bytes() const { return used_; }
  size_t peak_bytes() const { return peak_; }
  size_t limit_bytes() const { return limit_; }

 private:
  size_t limit_;
  size_t used_ = 0;
  size_t peak_ = 0;
  std::atomic<uint64_t>* shared_used_;
};

/// Approximate heap footprint of a value / tuple, used to charge budgets.
/// Counts the Value struct itself plus shared payloads as if owned (build
/// tables hold their own copies in practice). Deliberately cheap: one
/// recursive walk per tuple at insert time, no allocation.
size_t EstimateValueBytes(const adm::Value& v);
size_t EstimateTupleBytes(const Tuple& t);

}  // namespace hyracks
}  // namespace asterix

#endif  // ASTERIX_HYRACKS_MEMORY_H_
