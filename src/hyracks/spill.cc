#include "hyracks/spill.h"

#include <algorithm>
#include <vector>

#include "adm/serde.h"
#include "common/env.h"
#include "common/journal.h"

namespace asterix {
namespace hyracks {

void SerializeTuple(const Tuple& t, BytesWriter* w) {
  w->PutVarint(t.size());
  for (const auto& v : t) adm::SerializeValue(v, w);
}

Status DeserializeTuple(BytesReader* r, Tuple* out) {
  uint64_t cols;
  ASTERIX_RETURN_NOT_OK(r->GetVarint(&cols));
  out->clear();
  out->reserve(cols);
  for (uint64_t i = 0; i < cols; ++i) {
    adm::Value v;
    ASTERIX_RETURN_NOT_OK(adm::DeserializeValue(r, &v));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

ScratchDirGuard::~ScratchDirGuard() {
  if (!dir_.empty()) env::RemoveAll(dir_);
}

const std::string& ScratchDirGuard::dir() {
  if (dir_.empty()) dir_ = env::NewScratchDir(prefix_);
  return dir_;
}

Status SpillRun::AppendTuple(const Tuple& t) {
  scratch_.Clear();
  SerializeTuple(t, &scratch_);
  size_t before = buf_.size();
  buf_.PutU8(kTupleRecord);
  buf_.PutVarint(scratch_.size());
  buf_.PutBytes(scratch_.data().data(), scratch_.size());
  bytes_ += buf_.size() - before;
  ++records_;
  if (buf_.size() >= kFlushBytes) return FlushBuffer();
  return Status::OK();
}

Status SpillRun::AppendKeyBytes(const uint8_t* data, size_t n) {
  size_t before = buf_.size();
  buf_.PutU8(kKeyRecord);
  buf_.PutVarint(n);
  buf_.PutBytes(data, n);
  bytes_ += buf_.size() - before;
  ++records_;
  if (buf_.size() >= kFlushBytes) return FlushBuffer();
  return Status::OK();
}

Status SpillRun::Finish() { return FlushBuffer(); }

Status SpillRun::FlushBuffer() {
  if (buf_.size() == 0) return Status::OK();
  ASTERIX_RETURN_NOT_OK(
      env::AppendFile(path_, buf_.data().data(), buf_.size()));
  buf_.Clear();
  return Status::OK();
}

Status SpillRun::ForEach(
    const std::function<Status(Tuple&)>& on_tuple,
    const std::function<Status(const uint8_t*, size_t)>& on_key) const {
  if (records_ == 0) return Status::OK();
  env::SequentialFileReader file(path_);
  if (!file.ok()) return Status::IOError("open spill run: " + path_);

  // Rolling window over the file: `win[pos..)` holds unparsed bytes. Refill
  // compacts the consumed prefix away and reads one flush-sized chunk —
  // more only when a single record is larger than a chunk.
  std::vector<uint8_t> win;
  size_t pos = 0;
  uint64_t reloaded = 0;
  bool eof = false;
  auto refill = [&](size_t need) {
    if (win.size() - pos >= need) return;
    win.erase(win.begin(), win.begin() + static_cast<ptrdiff_t>(pos));
    pos = 0;
    size_t target = std::max(need, kFlushBytes);
    while (!eof && win.size() < target) {
      size_t old = win.size();
      win.resize(target);
      size_t got = file.Read(win.data() + old, target - old);
      win.resize(old + got);
      reloaded += got;
      if (got == 0) eof = true;
    }
  };

  Tuple t;
  uint64_t replayed = 0;
  while (true) {
    // A record header is a kind byte plus a varint length (<=10 bytes).
    refill(11);
    if (win.size() == pos) break;  // clean EOF on a record boundary
    uint8_t kind = win[pos];
    BytesReader hdr(win.data() + pos + 1, win.size() - pos - 1);
    uint64_t len;
    ASTERIX_RETURN_NOT_OK(hdr.GetVarint(&len));
    pos += 1 + hdr.position();
    refill(len);
    if (win.size() - pos < len) return Status::Corruption("spill run truncated");
    const uint8_t* payload = win.data() + pos;
    pos += len;
    if (kind == kTupleRecord) {
      BytesReader r(payload, len);
      ASTERIX_RETURN_NOT_OK(DeserializeTuple(&r, &t));
      ASTERIX_RETURN_NOT_OK(on_tuple(t));
    } else if (kind == kKeyRecord) {
      if (!on_key) return Status::Corruption("unexpected key record");
      ASTERIX_RETURN_NOT_OK(on_key(payload, len));
    } else {
      return Status::Corruption("bad spill record kind");
    }
    ++replayed;
  }
  if (replayed != records_) return Status::Corruption("spill run truncated");
  journal::Journal::Default().Post(journal::EventKind::kSpillReload, reloaded,
                                   records_);
  return Status::OK();
}

void SpillRun::Remove() { env::RemoveFile(path_); }

}  // namespace hyracks
}  // namespace asterix
