#include "hyracks/spill.h"

#include <vector>

#include "adm/serde.h"
#include "common/env.h"

namespace asterix {
namespace hyracks {

void SerializeTuple(const Tuple& t, BytesWriter* w) {
  w->PutVarint(t.size());
  for (const auto& v : t) adm::SerializeValue(v, w);
}

Status DeserializeTuple(BytesReader* r, Tuple* out) {
  uint64_t cols;
  ASTERIX_RETURN_NOT_OK(r->GetVarint(&cols));
  out->clear();
  out->reserve(cols);
  for (uint64_t i = 0; i < cols; ++i) {
    adm::Value v;
    ASTERIX_RETURN_NOT_OK(adm::DeserializeValue(r, &v));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

ScratchDirGuard::~ScratchDirGuard() {
  if (!dir_.empty()) env::RemoveAll(dir_);
}

const std::string& ScratchDirGuard::dir() {
  if (dir_.empty()) dir_ = env::NewScratchDir(prefix_);
  return dir_;
}

Status SpillRun::AppendTuple(const Tuple& t) {
  size_t before = buf_.size();
  buf_.PutU8(kTupleRecord);
  SerializeTuple(t, &buf_);
  bytes_ += buf_.size() - before;
  ++records_;
  if (buf_.size() >= kFlushBytes) return FlushBuffer();
  return Status::OK();
}

Status SpillRun::AppendKeyBytes(const uint8_t* data, size_t n) {
  size_t before = buf_.size();
  buf_.PutU8(kKeyRecord);
  buf_.PutVarint(n);
  buf_.PutBytes(data, n);
  bytes_ += buf_.size() - before;
  ++records_;
  if (buf_.size() >= kFlushBytes) return FlushBuffer();
  return Status::OK();
}

Status SpillRun::Finish() { return FlushBuffer(); }

Status SpillRun::FlushBuffer() {
  if (buf_.size() == 0) return Status::OK();
  ASTERIX_RETURN_NOT_OK(
      env::AppendFile(path_, buf_.data().data(), buf_.size()));
  buf_.Clear();
  return Status::OK();
}

Status SpillRun::ForEach(
    const std::function<Status(Tuple&)>& on_tuple,
    const std::function<Status(const uint8_t*, size_t)>& on_key) const {
  if (records_ == 0) return Status::OK();
  std::vector<uint8_t> bytes;
  ASTERIX_RETURN_NOT_OK(env::ReadFile(path_, &bytes));
  BytesReader r(bytes.data(), bytes.size());
  Tuple t;
  while (!r.AtEnd()) {
    uint8_t kind;
    ASTERIX_RETURN_NOT_OK(r.GetU8(&kind));
    if (kind == kTupleRecord) {
      ASTERIX_RETURN_NOT_OK(DeserializeTuple(&r, &t));
      ASTERIX_RETURN_NOT_OK(on_tuple(t));
    } else if (kind == kKeyRecord) {
      uint64_t n;
      ASTERIX_RETURN_NOT_OK(r.GetVarint(&n));
      if (n > r.remaining()) return Status::Corruption("spill run truncated");
      const uint8_t* p = bytes.data() + r.position();
      ASTERIX_RETURN_NOT_OK(r.Skip(n));
      if (!on_key) return Status::Corruption("unexpected key record");
      ASTERIX_RETURN_NOT_OK(on_key(p, n));
    } else {
      return Status::Corruption("bad spill record kind");
    }
  }
  return Status::OK();
}

void SpillRun::Remove() { env::RemoveFile(path_); }

}  // namespace hyracks
}  // namespace asterix
