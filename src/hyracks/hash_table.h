#ifndef ASTERIX_HYRACKS_HASH_TABLE_H_
#define ASTERIX_HYRACKS_HASH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace asterix {
namespace hyracks {

/// Bump allocator for serialized key bytes. Chunked so appends never move
/// existing data — table entries keep stable pointers into it — and so a
/// growing build side costs no realloc copies.
class Arena {
 public:
  const uint8_t* Append(const void* data, size_t n);
  /// Total bytes reserved from the heap (what a budget should be charged).
  size_t reserved_bytes() const { return reserved_; }
  size_t used_bytes() const { return used_; }

 private:
  static constexpr size_t kChunkBytes = 64 * 1024;

  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  size_t chunk_used_ = 0;
  size_t chunk_cap_ = 0;
  size_t used_ = 0;
  size_t reserved_ = 0;
};

/// Open-addressing hash table keyed by 64-bit hashes over serialized
/// normalized key bytes (adm::SerializeNormalizedKey output) held in a bump
/// arena — no per-entry Value vectors, one memcmp per probe hit. Each entry
/// carries a single uint32 payload the operator interprets (chain head for a
/// join's build tuples, group-state index for an aggregation, unused for
/// distinct). Linear probing over a power-of-two slot array of entry
/// indices; entries keep insertion order, which is also spill order.
class SerializedKeyTable {
 public:
  struct Entry {
    uint64_t hash;
    const uint8_t* key;
    uint32_t key_len;
    uint32_t payload;
  };

  SerializedKeyTable();

  /// Returns the payload slot for the key, inserting an entry with payload
  /// `kNoPayload` when absent; `*inserted` says which happened. The key
  /// bytes are copied into the arena only on insert.
  uint32_t* FindOrInsert(const uint8_t* key, size_t len, uint64_t hash,
                         bool* inserted);
  const uint32_t* Find(const uint8_t* key, size_t len, uint64_t hash) const;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<Entry>& entries() const { return entries_; }

  /// Heap footprint (arena + entry and slot arrays) for budget accounting.
  size_t bytes() const {
    return arena_.reserved_bytes() + entries_.capacity() * sizeof(Entry) +
           slots_.capacity() * sizeof(uint32_t);
  }

  static constexpr uint32_t kNoPayload = 0xffffffffu;

 private:
  void Grow();

  Arena arena_;
  std::vector<Entry> entries_;
  std::vector<uint32_t> slots_;  // entry index + 1; 0 marks an empty slot
  size_t mask_;
};

}  // namespace hyracks
}  // namespace asterix

#endif  // ASTERIX_HYRACKS_HASH_TABLE_H_
