#ifndef ASTERIX_HYRACKS_CHANNEL_H_
#define ASTERIX_HYRACKS_CHANNEL_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "hyracks/tuple.h"

namespace asterix {
namespace hyracks {

/// Consumer-side endpoint of a connector: one per (destination instance,
/// input port). N producer instances push frames tagged with their index;
/// the destination pulls tuples until end-of-stream.
class InChannel {
 public:
  virtual ~InChannel() = default;
  virtual void Push(int producer, Frame frame) = 0;
  virtual void ProducerDone(int producer) = 0;
  virtual void Fail(Status status) = 0;
  /// Blocking pull. Returns false at end-of-stream; a failed stream
  /// surfaces its status.
  virtual Result<bool> Next(Tuple* out) = 0;
};

/// FIFO channel: frames interleave in arrival order (all connectors except
/// the merging one).
class FifoChannel : public InChannel {
 public:
  explicit FifoChannel(int num_producers) : open_producers_(num_producers) {}

  void Push(int producer, Frame frame) override {
    (void)producer;
    std::lock_guard<std::mutex> lock(mu_);
    frames_.push_back(std::move(frame));
    cv_.notify_one();
  }

  void ProducerDone(int) override {
    std::lock_guard<std::mutex> lock(mu_);
    --open_producers_;
    cv_.notify_one();
  }

  void Fail(Status status) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (status_.ok()) status_ = std::move(status);
    cv_.notify_one();
  }

  Result<bool> Next(Tuple* out) override {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (!status_.ok()) return status_;
      if (pos_ < current_.tuples.size()) {
        *out = std::move(current_.tuples[pos_++]);
        return true;
      }
      if (!frames_.empty()) {
        current_ = std::move(frames_.front());
        frames_.pop_front();
        pos_ = 0;
        continue;
      }
      if (open_producers_ == 0) return false;
      cv_.wait(lock);
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Frame> frames_;
  Frame current_;
  size_t pos_ = 0;
  int open_producers_;
  Status status_;
};

/// Sorted-merge channel (the MToNPartitioningMerging connector): each
/// producer's stream is already sorted by `compare`; Next() performs a
/// blocking k-way merge so the destination sees one globally sorted stream.
class MergeChannel : public InChannel {
 public:
  MergeChannel(int num_producers, TupleCompare compare)
      : producers_(num_producers), compare_(std::move(compare)) {}

  void Push(int producer, Frame frame) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto& p = producers_[producer];
    for (auto& t : frame.tuples) p.queue.push_back(std::move(t));
    cv_.notify_one();
  }

  void ProducerDone(int producer) override {
    std::lock_guard<std::mutex> lock(mu_);
    producers_[producer].done = true;
    cv_.notify_one();
  }

  void Fail(Status status) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (status_.ok()) status_ = std::move(status);
    cv_.notify_one();
  }

  Result<bool> Next(Tuple* out) override {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (!status_.ok()) return status_;
      // Merge is possible only when every unfinished producer has a tuple
      // buffered (otherwise a smaller tuple could still arrive).
      bool ready = true;
      bool any = false;
      int best = -1;
      for (size_t i = 0; i < producers_.size(); ++i) {
        auto& p = producers_[i];
        if (p.queue.empty()) {
          if (!p.done) {
            ready = false;
            break;
          }
          continue;
        }
        any = true;
        if (best < 0 ||
            compare_(p.queue.front(), producers_[best].queue.front()) < 0) {
          best = static_cast<int>(i);
        }
      }
      if (ready) {
        if (!any) return false;  // all done, all drained
        *out = std::move(producers_[best].queue.front());
        producers_[best].queue.pop_front();
        return true;
      }
      cv_.wait(lock);
    }
  }

 private:
  struct ProducerState {
    std::deque<Tuple> queue;
    bool done = false;
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ProducerState> producers_;
  TupleCompare compare_;
  Status status_;
};

/// Pass-through wrapper counting consumed tuples into `*consumed` — the
/// profiler's tuples_in hook. The counter is plain (not atomic) because a
/// channel endpoint is pulled by exactly one operator instance thread, which
/// also owns the counter's span.
class CountingChannel : public InChannel {
 public:
  CountingChannel(InChannel* inner, uint64_t* consumed)
      : inner_(inner), consumed_(consumed) {}

  void Push(int producer, Frame frame) override {
    inner_->Push(producer, std::move(frame));
  }
  void ProducerDone(int producer) override { inner_->ProducerDone(producer); }
  void Fail(Status status) override { inner_->Fail(std::move(status)); }

  Result<bool> Next(Tuple* out) override {
    Result<bool> r = inner_->Next(out);
    if (r.ok() && r.value()) ++*consumed_;
    return r;
  }

 private:
  InChannel* inner_;
  uint64_t* consumed_;
};

}  // namespace hyracks
}  // namespace asterix

#endif  // ASTERIX_HYRACKS_CHANNEL_H_
