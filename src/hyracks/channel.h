#ifndef ASTERIX_HYRACKS_CHANNEL_H_
#define ASTERIX_HYRACKS_CHANNEL_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <iterator>
#include <mutex>
#include <vector>

#include "common/journal.h"
#include "common/metrics.h"
#include "hyracks/tuple.h"

namespace asterix {
namespace hyracks {

/// Hot-path metric endpoints shared by every channel. Resolved once; the
/// objects themselves are lock-free.
inline metrics::Gauge* QueuedFramesGauge() {
  static metrics::Gauge* g =
      metrics::MetricsRegistry::Default().GetGauge("hyracks.queued_frames");
  return g;
}
inline metrics::Histogram* BackpressureWaitHistogram() {
  static metrics::Histogram* h = metrics::MetricsRegistry::Default().GetHistogram(
      "hyracks.backpressure_wait_us");
  return h;
}
inline metrics::Histogram* QueueDepthHistogram() {
  static metrics::Histogram* h = metrics::MetricsRegistry::Default().GetHistogram(
      "hyracks.channel_queue_depth", metrics::Histogram::CountBounds());
  return h;
}

/// Consumer-side endpoint of a connector: one per (destination instance,
/// input port). N producer instances push frames tagged with their index;
/// the destination pulls until end-of-stream.
///
/// The pull side is frame-at-a-time: NextFrame() hands the consumer a whole
/// frame under one channel-lock acquisition. Next() is a tuple-at-a-time
/// shim layered on top (a cursor over the last pulled frame) so operators
/// can be converted incrementally; the two may be mixed freely on the same
/// endpoint — NextFrame() first drains any tuples the shim still holds.
///
/// Endpoints are consumed by exactly one operator-instance thread, so the
/// shim cursor needs no synchronization (only PullFrame touches shared
/// producer state).
class InChannel {
 public:
  virtual ~InChannel() = default;
  virtual void Push(int producer, Frame frame) = 0;
  virtual void ProducerDone(int producer) = 0;
  virtual void Fail(Status status) = 0;
  /// The consumer abandoned the stream (its operator failed). Queued and
  /// future frames are dropped and producers blocked on a full channel are
  /// released, so job teardown can never deadlock on backpressure.
  virtual void CancelConsumer() = 0;

  /// Blocking pull of the next frame. Returns false at end-of-stream; a
  /// failed stream surfaces its status.
  Result<bool> NextFrame(Frame* out) {
    out->tuples.clear();
    out->batch.reset();
    if (pos_ < pending_.tuples.size()) {
      out->tuples.insert(out->tuples.end(),
                         std::make_move_iterator(pending_.tuples.begin() +
                                                 static_cast<std::ptrdiff_t>(pos_)),
                         std::make_move_iterator(pending_.tuples.end()));
      pending_.tuples.clear();
      pos_ = 0;
      return true;
    }
    return PullFrame(out);
  }

  /// Blocking tuple-at-a-time pull (shim over NextFrame). A columnar batch
  /// frame is materialized into single-column record tuples here, so a
  /// row-oriented consumer downstream of a vectorized producer still sees
  /// every selected row.
  Result<bool> Next(Tuple* out) {
    if (pos_ >= pending_.tuples.size()) {
      pending_.tuples.clear();
      pending_.batch.reset();
      pos_ = 0;
      auto r = PullFrame(&pending_);
      if (!r.ok() || !r.value()) return r;
      if (pending_.batch != nullptr) {
        pending_.tuples.reserve(pending_.batch->sel.size());
        for (uint32_t row : pending_.batch->sel.rows) {
          pending_.tuples.push_back({pending_.batch->MaterializeRow(row)});
        }
        pending_.batch.reset();
        if (pending_.tuples.empty()) return Next(out);
      }
    }
    *out = std::move(pending_.tuples[pos_++]);
    return true;
  }

 protected:
  /// Pulls one frame into `*out` (guaranteed empty on entry). Implementations
  /// hold their lock for the whole pull — one acquisition per frame, not per
  /// tuple.
  virtual Result<bool> PullFrame(Frame* out) = 0;

 private:
  Frame pending_;  // shim cursor for Next()
  size_t pos_ = 0;
};

/// FIFO channel: frames interleave in arrival order (all connectors except
/// the merging one). With `capacity_frames` > 0 the queue is bounded:
/// producers block in Push() until the consumer drains a frame — the
/// bounded-buffer flow control that keeps a fast producer from growing
/// memory without limit (and that feeds inherit as backpressure).
class FifoChannel : public InChannel {
 public:
  explicit FifoChannel(int num_producers, size_t capacity_frames = 0)
      : open_producers_(num_producers), capacity_(capacity_frames) {}

  void Push(int producer, Frame frame) override {
    (void)producer;
    if (frame.tuples.empty() && frame.batch == nullptr) return;
    std::unique_lock<std::mutex> lock(mu_);
    WaitForSpace(lock, [&] { return frames_.size() < capacity_; });
    if (!status_.ok() || cancelled_) return;  // dropped; consumer is gone
    frames_.push_back(std::move(frame));
    QueuedFramesGauge()->Add(1);
    QueueDepthHistogram()->Observe(frames_.size());
    data_cv_.notify_one();
  }

  void ProducerDone(int) override {
    std::lock_guard<std::mutex> lock(mu_);
    --open_producers_;
    data_cv_.notify_one();
  }

  void Fail(Status status) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (status_.ok()) status_ = std::move(status);
    data_cv_.notify_all();
    space_cv_.notify_all();
  }

  void CancelConsumer() override {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    QueuedFramesGauge()->Add(-static_cast<int64_t>(frames_.size()));
    frames_.clear();
    space_cv_.notify_all();
  }

  /// Frames currently queued (tests / diagnostics).
  size_t queued_frames() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_.size();
  }

 protected:
  Result<bool> PullFrame(Frame* out) override {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (!status_.ok()) return status_;
      if (!frames_.empty()) {
        *out = std::move(frames_.front());
        frames_.pop_front();
        QueuedFramesGauge()->Add(-1);
        space_cv_.notify_one();
        return true;
      }
      if (open_producers_ == 0) return false;
      data_cv_.wait(lock);
    }
  }

 private:
  template <typename HasSpace>
  void WaitForSpace(std::unique_lock<std::mutex>& lock, HasSpace has_space) {
    if (capacity_ == 0) return;
    if (has_space() || !status_.ok() || cancelled_) return;
    auto t0 = std::chrono::steady_clock::now();
    space_cv_.wait(lock, [&] {
      return has_space() || !status_.ok() || cancelled_;
    });
    uint64_t waited_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    BackpressureWaitHistogram()->Observe(waited_us);
    journal::Journal::Default().Post(journal::EventKind::kBackpressure,
                                     waited_us, frames_.size(), "fifo");
  }

  mutable std::mutex mu_;
  std::condition_variable data_cv_;
  std::condition_variable space_cv_;
  std::deque<Frame> frames_;
  int open_producers_;
  size_t capacity_;
  bool cancelled_ = false;
  Status status_;
};

/// Sorted-merge channel (the MToNPartitioningMerging connector): each
/// producer's stream is already sorted by `compare`; PullFrame() performs a
/// heap-based k-way merge, emitting merged tuples a frame at a time — it
/// never rescans all producers per tuple. `capacity_frames` bounds the
/// frames buffered PER PRODUCER (a whole-channel bound could deadlock the
/// merge: one fast producer filling the shared budget would block the slow
/// producer whose tuple the merge is waiting for).
class MergeChannel : public InChannel {
 public:
  MergeChannel(int num_producers, TupleCompare compare,
               size_t capacity_frames = 0)
      : producers_(static_cast<size_t>(num_producers)),
        compare_(std::move(compare)),
        capacity_(capacity_frames) {}

  void Push(int producer, Frame frame) override {
    if (frame.tuples.empty()) return;
    std::unique_lock<std::mutex> lock(mu_);
    ProducerState& p = producers_[static_cast<size_t>(producer)];
    if (capacity_ > 0 && p.frames.size() >= capacity_ && status_.ok() &&
        !cancelled_) {
      auto t0 = std::chrono::steady_clock::now();
      space_cv_.wait(lock, [&] {
        return p.frames.size() < capacity_ || !status_.ok() || cancelled_;
      });
      uint64_t waited_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      BackpressureWaitHistogram()->Observe(waited_us);
      journal::Journal::Default().Post(journal::EventKind::kBackpressure,
                                       waited_us, p.frames.size(), "merge");
    }
    if (!status_.ok() || cancelled_) return;
    p.frames.push_back(std::move(frame));
    QueuedFramesGauge()->Add(1);
    QueueDepthHistogram()->Observe(p.frames.size());
    data_cv_.notify_one();
  }

  void ProducerDone(int producer) override {
    std::lock_guard<std::mutex> lock(mu_);
    producers_[static_cast<size_t>(producer)].done = true;
    data_cv_.notify_one();
  }

  void Fail(Status status) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (status_.ok()) status_ = std::move(status);
    data_cv_.notify_all();
    space_cv_.notify_all();
  }

  void CancelConsumer() override {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ = true;
    for (auto& p : producers_) {
      QueuedFramesGauge()->Add(-static_cast<int64_t>(p.frames.size()));
      p.frames.clear();
      p.pos = 0;
    }
    space_cv_.notify_all();
  }

 protected:
  Result<bool> PullFrame(Frame* out) override {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (!status_.ok()) return status_;
      // Merge is possible only when every unfinished producer has a tuple
      // buffered (otherwise a smaller tuple could still arrive).
      bool ready = true;
      bool any = false;
      for (const auto& p : producers_) {
        if (p.frames.empty()) {
          if (!p.done) {
            ready = false;
            break;
          }
        } else {
          any = true;
        }
      }
      if (ready) {
        if (!any) return false;  // all done, all drained
        MergeBatch(out);
        return true;
      }
      data_cv_.wait(lock);
    }
  }

 private:
  struct ProducerState {
    std::deque<Frame> frames;
    size_t pos = 0;  // cursor into frames.front()
    bool done = false;
  };

  const Tuple& Head(const ProducerState& p) const {
    return p.frames.front().tuples[p.pos];
  }

  Tuple PopHead(ProducerState* p) {
    Tuple t = std::move(p->frames.front().tuples[p->pos++]);
    if (p->pos >= p->frames.front().tuples.size()) {
      p->frames.pop_front();
      p->pos = 0;
      QueuedFramesGauge()->Add(-1);
      space_cv_.notify_all();
    }
    return t;
  }

  /// Requires mu_ held and every unfinished producer non-empty. Emits up to
  /// kDefaultFrameTuples merged tuples; stops early if an unfinished
  /// producer runs dry (its next tuple is unknown).
  void MergeBatch(Frame* out) {
    heap_.clear();
    for (size_t i = 0; i < producers_.size(); ++i) {
      if (!producers_[i].frames.empty()) heap_.push_back(static_cast<int>(i));
    }
    // std::*_heap keeps the comparator-greatest at the front; invert the
    // tuple order so the front is the smallest head.
    auto comp = [this](int a, int b) {
      return compare_(Head(producers_[static_cast<size_t>(a)]),
                      Head(producers_[static_cast<size_t>(b)])) > 0;
    };
    std::make_heap(heap_.begin(), heap_.end(), comp);
    out->tuples.reserve(kDefaultFrameTuples);
    while (!heap_.empty() && out->tuples.size() < kDefaultFrameTuples) {
      std::pop_heap(heap_.begin(), heap_.end(), comp);
      int i = heap_.back();
      heap_.pop_back();
      ProducerState& p = producers_[static_cast<size_t>(i)];
      out->tuples.push_back(PopHead(&p));
      if (p.frames.empty()) {
        if (!p.done) break;  // can't merge past an unfinished dry producer
      } else {
        heap_.push_back(i);
        std::push_heap(heap_.begin(), heap_.end(), comp);
      }
    }
  }

  std::mutex mu_;
  std::condition_variable data_cv_;
  std::condition_variable space_cv_;
  std::vector<ProducerState> producers_;
  std::vector<int> heap_;  // producer indices keyed by head tuple
  TupleCompare compare_;
  size_t capacity_;
  bool cancelled_ = false;
  Status status_;
};

/// Pass-through wrapper counting consumed tuples into `*consumed` and
/// (optionally) the microseconds spent waiting on the inner channel into
/// `*input_wait_us` — the profiler's tuples_in / blocked-on-input hooks.
/// Counters are plain (not atomic) because a channel endpoint is pulled by
/// exactly one operator instance thread, which also owns the counters' span.
class CountingChannel : public InChannel {
 public:
  CountingChannel(InChannel* inner, uint64_t* consumed,
                  uint64_t* input_wait_us = nullptr)
      : inner_(inner), consumed_(consumed), input_wait_us_(input_wait_us) {}

  void Push(int producer, Frame frame) override {
    inner_->Push(producer, std::move(frame));
  }
  void ProducerDone(int producer) override { inner_->ProducerDone(producer); }
  void Fail(Status status) override { inner_->Fail(std::move(status)); }
  void CancelConsumer() override { inner_->CancelConsumer(); }

 protected:
  Result<bool> PullFrame(Frame* out) override {
    std::chrono::steady_clock::time_point t0;
    if (input_wait_us_) t0 = std::chrono::steady_clock::now();
    Result<bool> r = inner_->NextFrame(out);
    if (input_wait_us_) {
      *input_wait_us_ += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
    if (r.ok() && r.value()) {
      *consumed_ += out->tuples.size();
      if (out->batch != nullptr) *consumed_ += out->batch->sel.size();
    }
    return r;
  }

 private:
  InChannel* inner_;
  uint64_t* consumed_;
  uint64_t* input_wait_us_;
};

}  // namespace hyracks
}  // namespace asterix

#endif  // ASTERIX_HYRACKS_CHANNEL_H_
