#ifndef ASTERIX_HYRACKS_JOB_H_
#define ASTERIX_HYRACKS_JOB_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hyracks/channel.h"

namespace asterix {
namespace hyracks {

class MemoryBudget;

/// Routed output of an operator instance; the executor wires it to the
/// operator's outgoing connector.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Push(Tuple tuple) = 0;
  /// Pushes a typed columnar batch downstream (the vectorized path). The
  /// default materializes the selected rows into single-column record
  /// tuples; batch-aware emitters forward the batch itself over 1:1 routes.
  virtual void PushBatch(std::shared_ptr<storage::column::ColumnBatch> batch);
  /// Flushes buffered frames (executor also flushes at operator close).
  virtual void Flush() = 0;
  /// Storage bytes this operator instance read; scan operators report
  /// their physical I/O here so profiles can show bytes-read per scan.
  virtual void AddBytesRead(uint64_t) {}
  /// Memory quota for this operator instance — its share of the job's
  /// op_memory_budget_bytes — or null when running unbudgeted (tests and
  /// benches that drive operators directly). Budget-aware operators
  /// (join/group-by/distinct/sort) charge their build state against it and
  /// spill when it trips.
  virtual MemoryBudget* memory_budget() { return nullptr; }
  /// Spill accounting: bytes written to scratch runs and partitions evicted.
  virtual void AddSpill(uint64_t /*bytes*/, uint64_t /*partitions*/) {}
  /// Peak serialized hash-build footprint (arena + table, summed across
  /// recursion levels) — the EXPLAIN ANALYZE "hash_build_bytes" signal.
  virtual void AddHashBuildBytes(uint64_t) {}
  /// Vectorization accounting: batches processed, rows surviving the
  /// selection vector, and rows carried — feeds OperatorSpan's `batches` /
  /// `selected_ratio`.
  virtual void AddBatchStats(uint64_t /*batches*/, uint64_t /*rows_selected*/,
                             uint64_t /*rows_total*/) {}
  /// Microseconds spent inside vectorized kernels (filter/aggregate loops).
  virtual void AddKernelTime(uint64_t /*us*/) {}
};

/// A per-partition runtime instance of an operator. `inputs[p]` is the
/// channel for input port p; emit everything through `out`.
class OperatorInstance {
 public:
  virtual ~OperatorInstance() = default;
  virtual Status Run(const std::vector<InChannel*>& inputs, Emitter* out) = 0;
};

using OperatorFactory =
    std::function<std::unique_ptr<OperatorInstance>(int partition)>;

/// Declarative operator description in a Hyracks job DAG. `blocking_ports`
/// exposes the operator's activity structure to the scheduler: those ports
/// must be fully consumed before the operator can produce output (e.g. the
/// Join Build activity of a HybridHash join, or a sort's run-generation
/// activity) — the paper's Operator -> Activities expansion.
struct OperatorDescriptor {
  int id = 0;
  std::string name;
  int parallelism = 1;
  int num_inputs = 0;
  std::vector<int> blocking_ports;
  OperatorFactory factory;
  /// True for operators that build unbounded in-memory state (hash join,
  /// hash group-by, distinct, sort); the executor divides the job's memory
  /// budget across the instances of exactly these operators.
  bool memory_intensive = false;
};

/// The six connector types the paper lists for Hyracks.
enum class ConnectorType {
  kOneToOne,
  kMToNPartitioning,
  kMToNReplicating,
  kMToNPartitioningMerging,
  kLocalityAwareMToNPartitioning,
  kHashPartitioningShuffle,
};

const char* ConnectorTypeName(ConnectorType t);

struct ConnectorDescriptor {
  int id = 0;
  ConnectorType type = ConnectorType::kOneToOne;
  int src_op = -1;
  int dst_op = -1;
  int dst_port = 0;
  /// Hash of the partitioning key (partitioning connectors).
  std::function<uint64_t(const Tuple&)> partition_hash;
  /// Sorted-merge order at the destination (merging connector).
  TupleCompare merge_compare;
  /// Custom source->destination mapping (locality-aware connector).
  std::function<int(int src_partition, int num_dst)> locality_map;
};

/// A Hyracks job: a DAG of operators and connectors, compiled from an AQL
/// statement by Algebricks, executed by the cluster executor.
struct JobSpec {
  std::vector<OperatorDescriptor> operators;
  std::vector<ConnectorDescriptor> connectors;

  /// The originating query's id (0 = no query context, e.g. internal jobs).
  /// The executor re-publishes it as the current query id on every worker
  /// thread running this job's operator instances, so storage/txn/channel
  /// journal events land tagged with the right query.
  uint64_t query_id = 0;

  /// Adds an operator, assigning its id.
  int AddOperator(OperatorDescriptor op);
  /// Connects src's output to dst's input port.
  int Connect(ConnectorType type, int src_op, int dst_op, int dst_port = 0,
              std::function<uint64_t(const Tuple&)> hash = nullptr,
              TupleCompare merge = nullptr);

  const OperatorDescriptor* FindOperator(int id) const;

  /// Figure-6-style rendering: one line per operator (bottom-up data flow
  /// is top-down in the listing), connectors shown as "1:1" / "n:1 ..."
  /// edges.
  std::string ToString() const;
};

/// One activity of an operator after expansion (the paper: "Operators are
/// expanded into their constituent Activities").
struct Activity {
  int op_id;
  std::string name;      // e.g. "join-build", "join-probe", "sort", "output"
  bool produces_output;  // probe/output activities feed downstream
};

/// Stages: groups of activities that can run concurrently, in dependency
/// order. Blocking ports force the consuming activity into a later stage
/// than its producers.
struct StagePlan {
  std::vector<std::vector<Activity>> stages;
  std::string ToString() const;
};

/// Expands operators to activities and layers them into stages following
/// blocking constraints.
StagePlan ComputeStages(const JobSpec& job);

}  // namespace hyracks
}  // namespace asterix

#endif  // ASTERIX_HYRACKS_JOB_H_
