#include "api/asterix.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/env.h"
#include "common/journal.h"
#include "common/ledger.h"
#include "common/metrics.h"
#include "common/version_clock.h"
#include "external/external.h"
#include "hyracks/operators.h"

namespace asterix {
namespace api {

using adm::Value;
using algebricks::EvalContext;
using algebricks::LogicalOp;
using algebricks::LogicalOpPtr;

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kParse:
      return "parse";
    case QueryPhase::kOptimize:
      return "optimize";
    case QueryPhase::kExecute:
      return "execute";
    case QueryPhase::kResult:
      return "result";
  }
  return "unknown";
}

namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - since)
                                   .count());
}

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return static_cast<double>(ElapsedUs(since)) / 1000.0;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

void AppendPhasesJson(std::string* out, const hyracks::PhaseSpans& ph) {
  *out += "{ \"parse_us\": " + std::to_string(ph.parse_us) +
          ", \"optimize_us\": " + std::to_string(ph.optimize_us) +
          ", \"admission_wait_us\": " + std::to_string(ph.admission_us) +
          ", \"execute_us\": " + std::to_string(ph.execute_us) +
          ", \"result_us\": " + std::to_string(ph.result_us) + " }";
}

/// A one-line label for a submitted script: the leading fragment with
/// whitespace collapsed, capped for log/status readability.
std::string StatementLabel(const std::string& aql) {
  std::string label;
  label.reserve(std::min<size_t>(aql.size(), 160));
  bool in_ws = true;
  for (char c : aql) {
    bool ws = c == ' ' || c == '\n' || c == '\r' || c == '\t';
    if (ws) {
      if (!in_ws) label.push_back(' ');
      in_ws = true;
    } else {
      label.push_back(c);
      in_ws = false;
    }
    if (label.size() >= 160) break;
  }
  while (!label.empty() && label.back() == ' ') label.pop_back();
  return label;
}

/// Per-query accounting carried on the executing thread across the
/// parse / optimize / execute / result phases. Execute() stacks one on the
/// call frame; ExecuteQuery/Insert/Delete reach it through the thread-local
/// so phase spans accumulate across a multi-statement script.
struct QueryTracker {
  hyracks::PhaseSpans phases;
  ActiveQueryRecord* record = nullptr;
};

thread_local QueryTracker* tls_query_tracker = nullptr;

class QueryTrackerScope {
 public:
  explicit QueryTrackerScope(QueryTracker* t) : prev_(tls_query_tracker) {
    tls_query_tracker = t;
  }
  ~QueryTrackerScope() { tls_query_tracker = prev_; }

 private:
  QueryTracker* prev_;
};

void SetQueryPhase(QueryPhase phase) {
  QueryTracker* t = tls_query_tracker;
  if (t != nullptr && t->record != nullptr) {
    t->record->phase.store(static_cast<int>(phase), std::memory_order_relaxed);
  }
}

/// Version cell covering everything resolved through the metadata catalogs
/// (functions, types, external/metadata datasets). Every DDL statement
/// bumps it after commit.
constexpr char kCatalogEpoch[] = "__catalog__";

/// Collects the read set of one cacheable execution: every dataset the
/// query resolves, pinned to its version *at resolution time* (i.e. before
/// any data is read). Writers bump versions after commit, so a recorded
/// dep whose version still matches at Lookup() proves no mutation landed
/// in between. Thread-safe because compiled jobs evaluate subplan scans on
/// executor-pool threads; ExecuteQuery re-publishes the active recorder on
/// those threads via the scan callback.
class ReadSetRecorder {
 public:
  void RecordDataset(const std::string& qualified) {
    vclock::VersionClock::Cell* cell =
        vclock::VersionClock::Default().GetCell(qualified);
    uint64_t version = cell->load(std::memory_order_acquire);
    std::lock_guard<std::mutex> lock(mu_);
    deps_.emplace(qualified, server::CacheDep{qualified, cell, version});
  }
  void RecordCatalog() { RecordDataset(kCatalogEpoch); }
  /// External datasets read files the version clock cannot see: results
  /// depending on them must never be cached.
  void MarkUncacheable() { uncacheable_.store(true, std::memory_order_relaxed); }
  bool uncacheable() const {
    return uncacheable_.load(std::memory_order_relaxed);
  }
  std::vector<server::CacheDep> TakeDeps() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<server::CacheDep> out;
    out.reserve(deps_.size());
    for (auto& [name, dep] : deps_) {
      (void)name;
      out.push_back(dep);
    }
    return out;
  }

 private:
  std::mutex mu_;
  std::map<std::string, server::CacheDep> deps_;  // first resolution wins
  std::atomic<bool> uncacheable_{false};
};

thread_local ReadSetRecorder* tls_read_set = nullptr;

/// Publishes a recorder on the current thread (and restores the previous
/// one on exit) — used both on the serving thread for the leader execution
/// and on pool worker threads running subplan scans for that execution.
class ReadSetScope {
 public:
  explicit ReadSetScope(ReadSetRecorder* r) : prev_(tls_read_set) {
    tls_read_set = r;
  }
  ~ReadSetScope() { tls_read_set = prev_; }

 private:
  ReadSetRecorder* prev_;
};

/// Whitespace-normalized script text: the textual half of the cache /
/// coalescing key ("the same statement modulo formatting").
std::string NormalizeScript(const std::string& aql) {
  std::string out;
  out.reserve(aql.size());
  bool in_ws = true;
  for (char c : aql) {
    bool ws = c == ' ' || c == '\n' || c == '\r' || c == '\t';
    if (ws) {
      if (!in_ws) out.push_back(' ');
      in_ws = true;
    } else {
      out.push_back(c);
      in_ws = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

/// Rough retained size of a cached result, for the cache's byte budget.
uint64_t EstimateResultBytes(const ExecutionResult& r) {
  uint64_t bytes = r.logical_plan.size() + r.job_plan.size() +
                   r.stage_plan.size() + r.profiled_plan.size() + 64;
  for (const auto& v : r.values) {
    std::string s;
    v.AppendTo(&s);
    bytes += s.size() + 32;
  }
  return bytes;
}

/// Stamps the query-level spans (parse/optimize/result) onto a finished
/// job's profile — the executor already filled admission/execute — and folds
/// the executor-measured spans into the per-query tracker.
void StampProfilePhases(hyracks::JobStats* stats, uint64_t optimize_us,
                        uint64_t result_us) {
  QueryTracker* tracker = tls_query_tracker;
  if (tracker != nullptr) {
    tracker->phases.result_us += result_us;
    if (stats->profile) {
      tracker->phases.admission_us += stats->profile->phases.admission_us;
      tracker->phases.execute_us += stats->profile->phases.execute_us;
    }
  }
  if (stats->profile) {
    stats->profile->phases.optimize_us = optimize_us;
    stats->profile->phases.result_us = result_us;
    stats->profile->phases.parse_us =
        tracker != nullptr ? tracker->phases.parse_us : 0;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Rule catalog over the live datasets
// ---------------------------------------------------------------------------

class AsterixInstance::Catalog : public algebricks::RuleCatalog {
 public:
  explicit Catalog(AsterixInstance* instance) : instance_(instance) {}

  const algebricks::CatalogDataset* FindDataset(
      const std::string& qualified) const override {
    // The optimizer resolving a dataset counts as reading it: record the
    // dependency before any data (or index metadata) is consulted.
    if (ReadSetRecorder* rs = tls_read_set) rs->RecordDataset(qualified);
    auto it = cache_.find(qualified);
    if (it != cache_.end()) return &it->second;
    auto dsit = instance_->datasets_.find(qualified);
    if (dsit == instance_->datasets_.end()) return nullptr;
    const storage::DatasetDef& def = dsit->second->def();
    algebricks::CatalogDataset cd;
    cd.qualified_name = qualified;
    cd.pk_fields = def.primary_key_fields;
    for (const auto& ix : def.secondary_indexes) {
      algebricks::CatalogIndex ci;
      ci.name = ix.name;
      ci.fields = ix.fields;
      ci.gram_length = ix.gram_length;
      switch (ix.kind) {
        case storage::IndexKind::kBTree:
          ci.kind = algebricks::CatalogIndex::Kind::kBTree;
          break;
        case storage::IndexKind::kRTree:
          ci.kind = algebricks::CatalogIndex::Kind::kRTree;
          break;
        case storage::IndexKind::kKeyword:
          ci.kind = algebricks::CatalogIndex::Kind::kKeyword;
          break;
        case storage::IndexKind::kNgram:
          ci.kind = algebricks::CatalogIndex::Kind::kNgram;
          break;
      }
      cd.indexes.push_back(std::move(ci));
    }
    auto [cit, ok] = cache_.emplace(qualified, std::move(cd));
    (void)ok;
    return &cit->second;
  }

 private:
  AsterixInstance* instance_;
  mutable std::map<std::string, algebricks::CatalogDataset> cache_;
};

// ---------------------------------------------------------------------------

AsterixInstance::AsterixInstance(InstanceConfig config)
    : config_(std::move(config)) {}

AsterixInstance::~AsterixInstance() {
  // Stop the sampler first: its probes read the cluster and admission
  // controller, which the members below tear down.
  if (sampler_) sampler_->Stop();
  // Join every in-flight async submission first: a background script must
  // not run against datasets this destructor is about to tear down.
  {
    std::unique_lock<std::mutex> lock(async_mu_);
    async_cv_.wait(lock, [&] { return async_inflight_ == 0; });
  }
  // Drain feeds before tearing down datasets they write into.
  if (feeds_) feeds_->AwaitAll();
}

Status AsterixInstance::Boot() {
  ASTERIX_RETURN_NOT_OK(env::CreateDirs(config_.base_dir));
  // Register the columnar-storage counters up front so MetricsJson() lists
  // them (at zero) even before the first columnar dataset sees traffic.
  auto& reg = metrics::MetricsRegistry::Default();
  for (const char* name :
       {"storage.column.pages_read", "storage.column.bytes_read",
        "storage.column.bytes_skipped", "storage.column.pages_pruned_minmax",
        "storage.column.bytes_flushed", "storage.column.bytes_merged"}) {
    reg.GetCounter(name);
  }
  // Background compaction pool, created before any LSM tree exists and
  // wired into the LsmOptions every index (metadata catalogs included) is
  // constructed with. ASTERIX_INGEST_SYNC=1 forces the pre-PR-10 fully
  // synchronous maintenance (the bench_ingest A/B baseline).
  const char* sync_env = std::getenv("ASTERIX_INGEST_SYNC");
  bool sync_forced = sync_env != nullptr && sync_env[0] == '1';
  if (config_.async_compaction && !sync_forced) {
    storage::CompactionScheduler::Options copts;
    copts.threads = config_.cluster.compaction_threads;
    copts.queue_limit = config_.cluster.compaction_queue_limit;
    compaction_ = std::make_unique<storage::CompactionScheduler>(copts);
    config_.lsm.scheduler = compaction_.get();
  } else {
    config_.lsm.scheduler = nullptr;
  }
  cache_ = std::make_unique<storage::BufferCache>(1u << 16);
  txns_ = std::make_unique<txn::TxnManager>(config_.base_dir + "/wal.log",
                                            config_.lock_timeout_ms,
                                            config_.group_commit_latency_us);
  cluster_ = std::make_unique<hyracks::Cluster>(config_.cluster);
  feeds_ = std::make_unique<feeds::FeedManager>();
  metadata_ = std::make_unique<metadata::MetadataManager>(
      cache_.get(), config_.base_dir, txns_.get(), config_.lsm);
  ASTERIX_RETURN_NOT_OK(metadata_->Bootstrap());

  // Re-instantiate datasets recorded in the catalogs (instance restart).
  ASTERIX_ASSIGN_OR_RETURN(auto defs, metadata_->ListInternalDatasets());
  for (auto& [def, type_name] : defs) {
    (void)type_name;
    next_dataset_id_ = std::max(next_dataset_id_, def.dataset_id + 1);
    ASTERIX_RETURN_NOT_OK(InstantiateDataset(def));
  }

  parser_ctx_ = aql::ParserContext();
  parser_ctx_.find_function = [this](const std::string& dv,
                                     const std::string& name, size_t arity) {
    // Resolving a UDF ties the execution to the catalog epoch: dropping or
    // redefining any function bumps it and invalidates dependent entries.
    if (ReadSetRecorder* rs = tls_read_set) rs->RecordCatalog();
    return metadata_->FindFunction(dv, name, arity);
  };

  result_cache_ = std::make_unique<server::ResultCache<ExecutionResult>>(
      config_.result_cache_bytes);
  rate_limiter_ = std::make_unique<server::RateLimiter>(
      server::RateLimiterOptions{config_.rate_limit_qps,
                                 config_.rate_limit_burst});

  if (config_.enable_monitoring) {
    watchdog_ = std::make_unique<server::HealthWatchdog>(config_.watchdog);
    monitor::MetricsSampler::Options sopts;
    sopts.interval_ms = config_.monitor_interval_ms;
    sopts.ring_capacity = config_.monitor_ring_samples;
    sampler_ = std::make_unique<monitor::MetricsSampler>(&reg, sopts);
    // Probe: export instance state that has no metric of its own into
    // gauges, so it rides the same ring the watchdog evaluates. Runs on the
    // sampler thread against subsystems the destructor keeps alive.
    sampler_->AddProbe([this, &reg] {
      const hyracks::ExecutorPool& pool = cluster_->pool();
      static metrics::Gauge* busy = reg.GetGauge("hyracks.pool.busy_threads");
      static metrics::Gauge* queued = reg.GetGauge("hyracks.pool.queued_tasks");
      busy->Set(static_cast<int64_t>(pool.busy_threads()));
      queued->Set(static_cast<int64_t>(pool.queued_tasks()));
      const server::AdmissionController& adm = cluster_->admission();
      static metrics::Gauge* pool_bytes =
          reg.GetGauge("server.admission.pool_bytes");
      static metrics::Gauge* queue_limit =
          reg.GetGauge("server.admission.queue_limit");
      pool_bytes->Set(static_cast<int64_t>(adm.pool_bytes()));
      queue_limit->Set(static_cast<int64_t>(adm.max_queue()));
      const journal::Journal& j = journal::Journal::Default();
      static metrics::Gauge* drops = reg.GetGauge("journal.overwrite_drops");
      static metrics::Gauge* posted = reg.GetGauge("journal.posted");
      drops->Set(static_cast<int64_t>(j.overwrite_drops()));
      posted->Set(static_cast<int64_t>(j.posted()));
      // Compaction backlog: scheduler-authoritative queue/running depth at
      // sample time (the gauges the watchdog's backlog condition reads).
      if (compaction_) {
        static metrics::Gauge* cq =
            reg.GetGauge("storage.compaction.queued");
        static metrics::Gauge* cr =
            reg.GetGauge("storage.compaction.running");
        cq->Set(static_cast<int64_t>(compaction_->queued()));
        cr->Set(static_cast<int64_t>(compaction_->running()));
      }
    });
    sampler_->SetObserver([this](const monitor::TimeSeriesRing& ring) {
      watchdog_->Evaluate(ring);
    });
    sampler_->Start();
  }
  return Status::OK();
}

Status AsterixInstance::InstantiateDataset(const storage::DatasetDef& def) {
  std::string qualified = def.dataverse + "." + def.name;
  auto ds = std::make_unique<storage::PartitionedDataset>(
      cache_.get(), config_.base_dir + "/data", def,
      static_cast<uint32_t>(cluster_->num_partitions()), txns_.get(),
      config_.lsm);
  ASTERIX_RETURN_NOT_OK(ds->Open());
  datasets_[qualified] = std::move(ds);
  return Status::OK();
}

storage::PartitionedDataset* AsterixInstance::FindDataset(
    const std::string& qualified) {
  auto it = datasets_.find(qualified);
  if (it != datasets_.end()) return it->second.get();
  return metadata_->MetadataDataset(qualified);
}

Status AsterixInstance::ScanDataset(
    const std::string& qualified,
    const std::function<Status(const Value&)>& cb) {
  ReadSetRecorder* rs = tls_read_set;
  storage::PartitionedDataset* ds = nullptr;
  if (auto it = datasets_.find(qualified); it != datasets_.end()) {
    ds = it->second.get();
    if (rs != nullptr) rs->RecordDataset(qualified);
  } else if ((ds = metadata_->MetadataDataset(qualified)) != nullptr) {
    // Metadata datasets change with DDL, which bumps the catalog epoch.
    if (rs != nullptr) rs->RecordCatalog();
  }
  if (ds != nullptr) {
    for (uint32_t p = 0; p < ds->num_partitions(); ++p) {
      ASTERIX_RETURN_NOT_OK(ds->partition(p)->ScanAll(cb));
    }
    return Status::OK();
  }
  if (const auto* ext = metadata_->FindExternalDataset(qualified)) {
    // External files mutate outside the version clock's sight — results
    // that read them must not be cached.
    if (rs != nullptr) rs->MarkUncacheable();
    return external::ReadExternalData(ext->adaptor, ext->params, ext->type, cb);
  }
  return Status::NotFound("no such dataset: " + qualified);
}

Result<ExecutionResult> AsterixInstance::Execute(const std::string& aql) {
  // Every Execute() call is one query: it gets a process-unique id that the
  // thread-local journal context carries through parse, compile, job
  // execution (re-published on pool worker threads), storage, and txn code,
  // so every journal event and profile span ties back to this request.
  const uint64_t query_id = journal::NextQueryId();
  journal::ScopedQueryId query_scope(query_id);

  auto record = std::make_shared<ActiveQueryRecord>();
  record->query_id = query_id;
  record->start = std::chrono::steady_clock::now();
  record->statement = StatementLabel(aql);
  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    active_queries_[query_id] = record;
  }
  journal::Journal::Default().Post(journal::EventKind::kQueryStart,
                                   aql.size());
  // Open the resource-ledger entry the executor and storage layers will
  // charge (by query id) while this script runs.
  ledger::ResourceLedger::Default().Begin(query_id, ledger::CurrentClient(),
                                          record->statement);
  static metrics::Counter* queries_counter =
      metrics::MetricsRegistry::Default().GetCounter("api.queries");
  queries_counter->Inc();

  QueryTracker tracker;
  tracker.record = record.get();
  Result<ExecutionResult> result = [&] {
    QueryTrackerScope tracker_scope(&tracker);
    return ExecuteScript(aql);
  }();

  uint64_t elapsed_us = ElapsedUs(record->start);
  journal::Journal::Default().Post(journal::EventKind::kQueryFinish,
                                   elapsed_us, result.ok() ? 0 : 1);
  ledger::ResourceLedger::Default().Finish(query_id, result.ok(), elapsed_us);
  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    active_queries_.erase(query_id);
  }
  MaybeLogSlowQuery(query_id, record->statement, elapsed_us, tracker.phases,
                    result);
  return result;
}

Result<ExecutionResult> AsterixInstance::ExecuteScript(const std::string& aql) {
  SetQueryPhase(QueryPhase::kParse);
  auto parse_start = std::chrono::steady_clock::now();
  // The parser context carries cross-statement session state (current
  // dataverse, sim function); concurrent Execute() calls — SubmitAsync runs
  // scripts on pool threads — must not mutate it unsynchronized.
  Result<std::vector<aql::Statement>> stmts_r = [&] {
    std::lock_guard<std::mutex> lock(parser_mu_);
    return aql::ParseAql(aql, &parser_ctx_);
  }();
  if (QueryTracker* tracker = tls_query_tracker) {
    tracker->phases.parse_us += ElapsedUs(parse_start);
  }
  if (!stmts_r.ok()) return stmts_r.status();
  ExecutionResult last;
  for (const auto& st : stmts_r.value()) {
    SetQueryPhase(QueryPhase::kExecute);
    ASTERIX_RETURN_NOT_OK(ExecuteStatement(st, &last));
  }
  return last;
}

void AsterixInstance::MaybeLogSlowQuery(uint64_t query_id,
                                        const std::string& statement,
                                        uint64_t elapsed_us,
                                        const hyracks::PhaseSpans& phases,
                                        const Result<ExecutionResult>& result) {
  int64_t threshold = config_.cluster.slow_query_us;
  if (threshold <= 0 || elapsed_us < static_cast<uint64_t>(threshold)) return;
  const hyracks::JobProfile* profile =
      result.ok() && result.value().stats.profile
          ? result.value().stats.profile.get()
          : nullptr;
  std::string line = "{ \"query_id\": " + std::to_string(query_id) +
                     ", \"elapsed_us\": " + std::to_string(elapsed_us) +
                     ", \"ok\": " + (result.ok() ? "true" : "false") +
                     ", \"statement\": ";
  AppendJsonString(&line, statement);
  line += ", \"phases\": ";
  AppendPhasesJson(&line, phases);
  line += ", \"profile\": ";
  line += profile != nullptr ? profile->ToJson() : "null";
  line += " }\n";
  std::lock_guard<std::mutex> lock(slow_log_mu_);
  (void)env::AppendFile(SlowQueryLogPath(), line.data(), line.size());
}

std::string AsterixInstance::SlowQueryLogPath() const {
  return config_.base_dir + "/slow_query.log";
}

bool AsterixInstance::ClassifyForServing(const std::string& aql,
                                         std::string* key) {
  std::lock_guard<std::mutex> lock(parser_mu_);
  // Session state that changes how the same text parses/resolves is part
  // of the key: identical scripts under different dataverses (or sim
  // settings) are different queries.
  *key = NormalizeScript(aql) + '\x1f' + parser_ctx_.dataverse + '\x1f' +
         parser_ctx_.sim_function + '\x1f' +
         std::to_string(parser_ctx_.sim_threshold);
  aql::ParserContext probe_ctx = parser_ctx_;
  auto stmts_r = aql::ParseAql(aql, &probe_ctx);
  if (!stmts_r.ok() || stmts_r.value().empty()) return false;
  for (const auto& st : stmts_r.value()) {
    // Only pure read-only scripts qualify: a `set`/`use` statement mutates
    // session state a cache hit would silently skip, and EXPLAIN output
    // should always reflect the live optimizer.
    if (st.kind != aql::Statement::Kind::kQuery || st.explain) return false;
  }
  return true;
}

Result<ExecutionResult> AsterixInstance::Serve(const std::string& aql,
                                               const ServeOptions& opts) {
  // Attribute everything below — including the Execute() path's ledger
  // entry — to the requesting client.
  ledger::ScopedClient client_scope(opts.client_id);
  if (rate_limiter_ && rate_limiter_->enabled()) {
    ASTERIX_RETURN_NOT_OK(rate_limiter_->Admit(opts.client_id));
  }
  std::string key;
  if (!ClassifyForServing(aql, &key)) {
    // Mutations, DDL, and session statements go straight through; job
    // admission still gates them underneath.
    return Execute(aql);
  }

  if (result_cache_ && result_cache_->enabled()) {
    if (std::shared_ptr<const ExecutionResult> hit =
            result_cache_->Lookup(key)) {
      ExecutionResult out = *hit;
      out.from_cache = true;
      // Cache hits never reach Execute(), so the per-client table is the
      // only place this request's outcome is recorded.
      ledger::ResourceLedger::Default().RecordServed(
          opts.client_id, ledger::CacheOutcome::kHit);
      return out;
    }
  }

  auto ticket = coalescer_.Join(key);
  if (!ticket.leader()) {
    std::shared_ptr<const Result<ExecutionResult>> shared = ticket.Wait();
    Result<ExecutionResult> r = *shared;
    if (r.ok()) r.value().coalesced = true;
    ledger::ResourceLedger::Default().RecordServed(
        opts.client_id, ledger::CacheOutcome::kCoalesced);
    return r;
  }

  // Leader: execute with the read set recorded, cache on success, and hand
  // every follower the shared result (errors included).
  ReadSetRecorder recorder;
  Result<ExecutionResult> result = [&] {
    ReadSetScope scope(&recorder);
    return Execute(aql);
  }();
  if (result.ok() && !recorder.uncacheable() && result_cache_ &&
      result_cache_->enabled()) {
    auto payload = std::make_shared<ExecutionResult>(result.value());
    result_cache_->Insert(key, payload, EstimateResultBytes(*payload),
                          recorder.TakeDeps());
  }
  coalescer_.Publish(key, std::make_shared<Result<ExecutionResult>>(result));
  return result;
}

Result<uint64_t> AsterixInstance::LaunchAsync(
    std::function<Result<ExecutionResult>()> run) {
  std::lock_guard<std::mutex> lock(async_mu_);
  uint64_t handle = next_handle_++;
  ++async_inflight_;
  async_[handle] =
      std::async(std::launch::async,
                 [this, run = std::move(run)] {
                   auto result =
                       std::make_shared<Result<ExecutionResult>>(run());
                   {
                     std::lock_guard<std::mutex> inner(async_mu_);
                     --async_inflight_;
                     // Notify under the lock: the destructor destroys this
                     // condvar the moment its wait sees inflight == 0, so an
                     // unlocked notify could broadcast into freed memory.
                     async_cv_.notify_all();
                   }
                   return result;
                 })
          .share();
  return handle;
}

Result<uint64_t> AsterixInstance::SubmitAsync(const std::string& aql) {
  return LaunchAsync([this, aql] { return Execute(aql); });
}

Result<uint64_t> AsterixInstance::ServeAsync(const std::string& aql,
                                             const ServeOptions& opts) {
  return LaunchAsync([this, aql, opts] { return Serve(aql, opts); });
}

AsterixInstance::AsyncState AsterixInstance::PollAsync(uint64_t handle) {
  std::shared_future<std::shared_ptr<Result<ExecutionResult>>> fut;
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    auto it = async_.find(handle);
    if (it == async_.end()) return AsyncState::kFailed;
    fut = it->second;
  }
  if (fut.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    return AsyncState::kRunning;
  }
  return fut.get()->ok() ? AsyncState::kDone : AsyncState::kFailed;
}

Result<ExecutionResult> AsterixInstance::GetAsyncResult(uint64_t handle) {
  std::shared_future<std::shared_ptr<Result<ExecutionResult>>> fut;
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    auto it = async_.find(handle);
    if (it == async_.end()) return Status::NotFound("no such result handle");
    fut = it->second;
  }
  auto result = fut.get();
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    async_.erase(handle);
  }
  return *result;
}

std::string AsterixInstance::MetricsJson() {
  return metrics::MetricsRegistry::Default().ToJson();
}

std::string AsterixInstance::StatusJson() {
  auto& reg = metrics::MetricsRegistry::Default();
  // Shared against DDL: the datasets_ walk below must not race a drop.
  std::shared_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  std::string out = "{ ";

  out += "\"active_queries\": [ ";
  {
    std::lock_guard<std::mutex> lock(queries_mu_);
    bool first = true;
    for (const auto& [id, rec] : active_queries_) {
      if (!first) out += ", ";
      first = false;
      out += "{ \"query_id\": " + std::to_string(id) + ", \"phase\": \"";
      out += QueryPhaseName(
          static_cast<QueryPhase>(rec->phase.load(std::memory_order_relaxed)));
      out += "\", \"elapsed_ms\": ";
      AppendDouble(&out, ElapsedMs(rec->start));
      out += ", \"statement\": ";
      AppendJsonString(&out, rec->statement);
      out += " }";
    }
  }
  out += " ], ";

  out += "\"active_jobs\": [ ";
  {
    bool first = true;
    for (const auto& j : cluster_->ActiveJobs()) {
      if (!first) out += ", ";
      first = false;
      out += "{ \"job_id\": " + std::to_string(j.job_id) +
             ", \"query_id\": " + std::to_string(j.query_id) +
             ", \"elapsed_ms\": ";
      AppendDouble(&out, j.elapsed_ms);
      out += ", \"instances\": " + std::to_string(j.instances) +
             ", \"budget_used_bytes\": " +
             std::to_string(j.budget_used_bytes) + " }";
    }
  }
  out += " ], ";

  const hyracks::ExecutorPool& pool = cluster_->pool();
  out += "\"executor_pool\": { \"threads_alive\": " +
         std::to_string(pool.threads_alive()) +
         ", \"busy_threads\": " + std::to_string(pool.busy_threads()) +
         ", \"queued_tasks\": " + std::to_string(pool.queued_tasks()) +
         ", \"threads_created\": " + std::to_string(pool.threads_created()) +
         " }, ";

  out += "\"channels\": { \"queued_frames\": " +
         std::to_string(reg.GetGauge("hyracks.queued_frames")->value()) +
         " }, ";

  out += "\"datasets\": [ ";
  {
    bool first = true;
    for (const auto& [name, ds] : datasets_) {
      size_t components = 0;
      uint64_t records = 0;
      for (uint32_t p = 0; p < ds->num_partitions(); ++p) {
        components += ds->partition(p)->PrimaryComponents();
        records += ds->partition(p)->ApproxRecordCount();
      }
      if (!first) out += ", ";
      first = false;
      out += "{ \"name\": ";
      AppendJsonString(&out, name);
      out += ", \"partitions\": " + std::to_string(ds->num_partitions()) +
             ", \"disk_components\": " + std::to_string(components) +
             ", \"records\": " + std::to_string(records) + " }";
    }
  }
  out += " ], ";

  out += "\"latency_us\": { ";
  {
    const struct {
      const char* json_key;
      const char* metric;
    } kHistograms[] = {
        {"job", "hyracks.job_us"},
        {"lsm_flush", "storage.lsm.flush_us"},
        {"lsm_merge", "storage.lsm.merge_us"},
        {"lock_wait", "txn.lock.wait_us"},
    };
    bool first = true;
    for (const auto& h : kHistograms) {
      const metrics::Histogram* hist = reg.GetHistogram(h.metric);
      if (!first) out += ", ";
      first = false;
      out += std::string("\"") + h.json_key +
             "\": { \"count\": " + std::to_string(hist->count()) +
             ", \"p50\": ";
      AppendDouble(&out, hist->Percentile(0.50));
      out += ", \"p95\": ";
      AppendDouble(&out, hist->Percentile(0.95));
      out += ", \"p99\": ";
      AppendDouble(&out, hist->Percentile(0.99));
      out += " }";
    }
  }
  out += " }, ";

  out += "\"compaction\": " +
         (compaction_ ? compaction_->StatsJson()
                      : std::string("{ \"enabled\": false }")) +
         ", ";

  out += "\"server\": { \"admission\": " + cluster_->admission().StatsJson() +
         ", \"result_cache\": " +
         (result_cache_ ? result_cache_->StatsJson() : std::string("null")) +
         ", \"coalesce_inflight\": " + std::to_string(coalescer_.inflight()) +
         ", \"rate_limit_clients\": " +
         std::to_string(rate_limiter_ ? rate_limiter_->clients() : 0) +
         " }, ";

  // Windowed per-second rates from the monitoring ring: trends, not
  // cumulative totals. Curated to the load-bearing series; the full set is
  // in HistoryJson().
  out += "\"rates\": ";
  if (sampler_) {
    const uint64_t w = config_.watchdog.window_us;
    const monitor::TimeSeriesRing& ring = sampler_->ring();
    const struct {
      const char* json_key;
      const char* series;
    } kRates[] = {
        {"queries_per_sec", "api.queries"},
        {"jobs_per_sec", "hyracks.jobs"},
        {"connector_tuples_per_sec", "hyracks.connector_tuples"},
        {"cpu_us_per_sec", "hyracks.cpu_us"},
        {"cache_hits_per_sec", "server.cache.hits"},
        {"lsm_flush_bytes_per_sec", "storage.lsm.bytes_flushed"},
        {"backpressure_us_per_sec", "hyracks.backpressure_wait_us.sum"},
        {"write_stall_us_per_sec", "storage.lsm.write_stall_us.sum"},
    };
    out += "{ \"window_us\": " + std::to_string(ring.CoveredWindowUs(w));
    for (const auto& r : kRates) {
      out += std::string(", \"") + r.json_key + "\": ";
      AppendDouble(&out, ring.WindowedRate(r.series, w));
    }
    out += " }, ";
  } else {
    out += "null, ";
  }

  const auto& led = ledger::ResourceLedger::Default();
  out += "\"top_queries\": " + led.TopJson(5) + ", ";
  out += "\"clients\": " + led.ClientsJson() + ", ";

  out += "\"health\": ";
  out += watchdog_ ? watchdog_->SummaryJson() : std::string("null");
  out += ", ";

  {
    uint64_t ingested =
        reg.GetCounter("storage.lsm.bytes_ingested")->value();
    int64_t amp_x1000 =
        reg.GetGauge("storage.lsm.write_amplification_x1000")->value();
    const metrics::Histogram* stall =
        reg.GetHistogram("storage.lsm.write_stall_us");
    out += "\"storage\": { \"bytes_ingested\": " + std::to_string(ingested) +
           ", \"write_amplification\": ";
    AppendDouble(&out, static_cast<double>(amp_x1000) / 1000.0);
    out += ", \"write_stalls\": " + std::to_string(stall->count()) +
           ", \"write_stall_us_total\": " + std::to_string(stall->sum()) +
           " }, ";
  }

  const journal::Journal& j = journal::Journal::Default();
  out += "\"journal\": { \"posted\": " + std::to_string(j.posted()) +
         ", \"capacity\": " + std::to_string(j.capacity()) +
         ", \"overwrite_drops\": " + std::to_string(j.overwrite_drops()) +
         " } }";
  return out;
}

std::string AsterixInstance::HistoryJson(size_t max_samples) {
  if (!sampler_) return "{ \"samples\": 0, \"data\": [ ] }";
  return sampler_->ring().HistoryJson(max_samples);
}

std::string AsterixInstance::MetricsPrometheus() {
  return metrics::MetricsRegistry::Default().ToPrometheus();
}

Result<ExecutionResult> AsterixInstance::Explain(const std::string& aql) {
  Result<std::vector<aql::Statement>> stmts_r = [&] {
    std::lock_guard<std::mutex> lock(parser_mu_);
    return aql::ParseAql(aql, &parser_ctx_);
  }();
  if (!stmts_r.ok()) return stmts_r.status();
  ExecutionResult out;
  std::shared_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  for (const auto& st : stmts_r.value()) {
    if (st.kind == aql::Statement::Kind::kQuery) {
      ASTERIX_RETURN_NOT_OK(ExecuteQuery(st, /*run=*/false, &out));
    } else if (st.kind == aql::Statement::Kind::kSet ||
               st.kind == aql::Statement::Kind::kUseDataverse) {
      // Context-only statements already applied by the parser.
    } else {
      return Status::InvalidArgument("explain supports query statements only");
    }
  }
  return out;
}

Status AsterixInstance::ExecuteStatement(const aql::Statement& st,
                                         ExecutionResult* last) {
  using K = aql::Statement::Kind;
  switch (st.kind) {
    case K::kSet:
    case K::kUseDataverse:
      return Status::OK();  // applied by the parser context
    case K::kCreateDataverse:
    case K::kDropDataverse:
    case K::kCreateType:
    case K::kCreateDataset:
    case K::kCreateExternalDataset:
    case K::kDropDataset:
    case K::kCreateIndex:
    case K::kDropIndex:
    case K::kCreateFunction:
    case K::kDropFunction:
    case K::kCreateFeed: {
      // DDL rewires datasets_ and tears down dataset instances: exclusive
      // against every concurrent query/DML (which hold ddl_mu_ shared).
      std::unique_lock<std::shared_mutex> ddl_lock(ddl_mu_);
      Status s = ExecuteDdl(st);
      if (s.ok()) InvalidateServingAfterDdl(st);
      return s;
    }
    case K::kConnectFeed: {
      std::unique_lock<std::shared_mutex> ddl_lock(ddl_mu_);
      Status s = ConnectFeedStatement(st);
      if (s.ok()) vclock::VersionClock::Default().Bump(kCatalogEpoch);
      return s;
    }
    case K::kLoad: {
      std::shared_lock<std::shared_mutex> lock(ddl_mu_);
      return ExecuteLoad(st);
    }
    case K::kInsert: {
      std::shared_lock<std::shared_mutex> lock(ddl_mu_);
      return ExecuteInsert(st, last);
    }
    case K::kDelete: {
      std::shared_lock<std::shared_mutex> lock(ddl_mu_);
      return ExecuteDelete(st, last);
    }
    case K::kQuery: {
      std::shared_lock<std::shared_mutex> lock(ddl_mu_);
      if (st.explain) {
        // EXPLAIN returns the plan text as the statement's single value;
        // EXPLAIN ANALYZE runs the query first and returns the plan
        // annotated with actuals.
        ASTERIX_RETURN_NOT_OK(ExecuteQuery(st, /*run=*/st.analyze, last));
        std::string text;
        if (st.analyze && !last->profiled_plan.empty()) {
          text = last->profiled_plan;
        } else if (!last->job_plan.empty()) {
          text = last->job_plan;
        } else {
          text = last->logical_plan;
        }
        last->values.clear();
        last->values.push_back(Value::String(std::move(text)));
        return Status::OK();
      }
      return ExecuteQuery(st, /*run=*/true, last);
    }
  }
  return Status::Internal("unreachable statement kind");
}

void AsterixInstance::InvalidateServingAfterDdl(const aql::Statement& st) {
  // Bump-after-commit: the statement's effects are durable by now, so a
  // reader that validates against the new versions can only see new state.
  auto& clock = vclock::VersionClock::Default();
  clock.Bump(kCatalogEpoch);
  if (!st.dataset.empty()) {
    clock.Bump(st.dataset);
    if (result_cache_) result_cache_->InvalidateDataset(st.dataset);
  }
}

Status AsterixInstance::ExecuteDdl(const aql::Statement& st) {
  using K = aql::Statement::Kind;
  switch (st.kind) {
    case K::kCreateDataverse:
      return metadata_->CreateDataverse(st.name, st.if_exists);
    case K::kDropDataverse: {
      // Tear down the dataverse's datasets (files + instances).
      std::vector<std::string> victims;
      for (const auto& [qualified, ds] : datasets_) {
        (void)ds;
        if (qualified.rfind(st.name + ".", 0) == 0) victims.push_back(qualified);
      }
      for (const auto& q : victims) {
        datasets_.erase(q);
        env::RemoveAll(config_.base_dir + "/data/" + q);
        // Per-dataset serving invalidation; the caller's catalog-epoch bump
        // covers everything resolved through the dropped dataverse.
        vclock::VersionClock::Default().Bump(q);
        if (result_cache_) result_cache_->InvalidateDataset(q);
      }
      return metadata_->DropDataverse(st.name, st.if_exists);
    }
    case K::kCreateType:
      if (!metadata_->DataverseExists(st.dataverse)) {
        return Status::NotFound("dataverse " + st.dataverse);
      }
      return metadata_->CreateDatatype(st.dataverse, st.name, st.type_expr);
    case K::kCreateDataset: {
      if (datasets_.count(st.dataset)) {
        return Status::AlreadyExists("dataset " + st.dataset);
      }
      ASTERIX_ASSIGN_OR_RETURN(adm::DatatypePtr type,
                               metadata_->GetDatatype(st.dataverse, st.type_name));
      storage::DatasetDef def;
      def.dataset_id = next_dataset_id_++;
      def.dataverse = st.dataverse;
      def.name = st.name;
      def.type = type;
      def.primary_key_fields = st.primary_key;
      def.autogenerated_key = st.autogenerated_key;
      for (const auto& [key, value] : st.with_params) {
        if (key == "storage-format") {
          if (value == "row") {
            def.storage_format = storage::StorageFormat::kRow;
          } else if (value == "column") {
            def.storage_format = storage::StorageFormat::kColumn;
          } else {
            return Status::InvalidArgument(
                "storage-format must be \"row\" or \"column\", got \"" +
                value + "\"");
          }
        } else if (key == "compression") {
          if (value == "none") {
            def.compress = false;
          } else if (value == "lz") {
            def.compress = true;
          } else {
            return Status::InvalidArgument(
                "compression must be \"none\" or \"lz\", got \"" + value +
                "\"");
          }
        } else if (key == "merge-policy") {
          storage::MergePolicy policy;
          if (!storage::MergePolicyFromName(value, &policy)) {
            return Status::InvalidArgument(
                "merge-policy must be \"none\", \"constant\", \"prefix\" or "
                "\"tiered\", got \"" +
                value + "\"");
          }
          def.merge_policy = value;
        } else {
          return Status::InvalidArgument("unknown dataset option \"" + key +
                                         "\"");
        }
      }
      ASTERIX_RETURN_NOT_OK(metadata_->RegisterDataset(def, st.type_name));
      return InstantiateDataset(def);
    }
    case K::kCreateExternalDataset: {
      ASTERIX_ASSIGN_OR_RETURN(adm::DatatypePtr type,
                               metadata_->GetDatatype(st.dataverse, st.type_name));
      metadata::ExternalDatasetDef def;
      def.qualified_name = st.dataset;
      def.type = type;
      def.adaptor = st.adaptor;
      def.params = st.adaptor_params;
      return metadata_->RegisterExternalDataset(def, st.type_name);
    }
    case K::kDropDataset: {
      auto it = datasets_.find(st.dataset);
      if (it == datasets_.end()) {
        if (metadata_->FindExternalDataset(st.dataset)) {
          return metadata_->UnregisterDataset(st.dataset);
        }
        if (st.if_exists) return Status::OK();
        return Status::NotFound("dataset " + st.dataset);
      }
      datasets_.erase(it);
      env::RemoveAll(config_.base_dir + "/data/" + st.dataset);
      return metadata_->UnregisterDataset(st.dataset);
    }
    case K::kCreateIndex: {
      auto it = datasets_.find(st.dataset);
      if (it == datasets_.end()) return Status::NotFound("dataset " + st.dataset);
      storage::IndexDef ix;
      ix.name = st.name;
      ix.fields = st.index_fields;
      ix.gram_length = st.gram_length;
      if (st.index_kind == "btree") ix.kind = storage::IndexKind::kBTree;
      else if (st.index_kind == "rtree") ix.kind = storage::IndexKind::kRTree;
      else if (st.index_kind == "keyword") ix.kind = storage::IndexKind::kKeyword;
      else if (st.index_kind == "ngram") ix.kind = storage::IndexKind::kNgram;
      else return Status::InvalidArgument("index type " + st.index_kind);
      // Rebuild the dataset instance with the new index and reload existing
      // data into it (index creation on a populated dataset).
      storage::DatasetDef def = it->second->def();
      for (const auto& existing : def.secondary_indexes) {
        if (existing.name == ix.name) {
          return Status::AlreadyExists("index " + ix.name);
        }
      }
      std::vector<Value> existing_records;
      for (uint32_t p = 0; p < it->second->num_partitions(); ++p) {
        ASTERIX_RETURN_NOT_OK(it->second->partition(p)->ScanAll(
            [&](const Value& rec) {
              existing_records.push_back(rec);
              return Status::OK();
            }));
      }
      def.secondary_indexes.push_back(ix);
      datasets_.erase(it);
      env::RemoveAll(config_.base_dir + "/data/" + st.dataset);
      ASTERIX_RETURN_NOT_OK(metadata_->RegisterIndex(st.dataset, ix));
      ASTERIX_RETURN_NOT_OK(InstantiateDataset(def));
      if (!existing_records.empty()) {
        ASTERIX_RETURN_NOT_OK(datasets_[st.dataset]->LoadBulk(existing_records));
      }
      return Status::OK();
    }
    case K::kDropIndex: {
      auto it = datasets_.find(st.dataset);
      if (it == datasets_.end()) {
        if (st.if_exists) return Status::OK();
        return Status::NotFound("dataset " + st.dataset);
      }
      storage::DatasetDef def = it->second->def();
      auto ix = std::find_if(def.secondary_indexes.begin(),
                             def.secondary_indexes.end(),
                             [&](const storage::IndexDef& d) {
                               return d.name == st.name;
                             });
      if (ix == def.secondary_indexes.end()) {
        if (st.if_exists) return Status::OK();
        return Status::NotFound("index " + st.name + " on " + st.dataset);
      }
      def.secondary_indexes.erase(ix);
      // Rebuild the dataset instance without the index (mirror of create
      // index on a populated dataset).
      std::vector<Value> existing_records;
      for (uint32_t p = 0; p < it->second->num_partitions(); ++p) {
        ASTERIX_RETURN_NOT_OK(it->second->partition(p)->ScanAll(
            [&](const Value& rec) {
              existing_records.push_back(rec);
              return Status::OK();
            }));
      }
      datasets_.erase(it);
      env::RemoveAll(config_.base_dir + "/data/" + st.dataset);
      ASTERIX_RETURN_NOT_OK(
          metadata_->UnregisterIndex(st.dataset, st.name, st.if_exists));
      ASTERIX_RETURN_NOT_OK(InstantiateDataset(def));
      if (!existing_records.empty()) {
        ASTERIX_RETURN_NOT_OK(datasets_[st.dataset]->LoadBulk(existing_records));
      }
      return Status::OK();
    }
    case K::kDropFunction:
      return metadata_->UnregisterFunction(st.dataverse, st.name, st.if_exists);
    case K::kCreateFunction: {
      aql::FunctionDef def;
      def.dataverse = st.dataverse;
      def.name = st.name;
      def.params = st.function_params;
      def.body = st.function_body;
      return metadata_->RegisterFunction(def);
    }
    case K::kCreateFeed: {
      metadata::FeedDef def;
      def.dataverse = st.dataverse;
      def.name = st.name;
      def.adaptor = st.adaptor;
      def.params = st.adaptor_params;
      def.applied_function = st.feed_function;
      return metadata_->RegisterFeed(def);
    }
    default:
      return Status::Internal("not a DDL statement");
  }
}

Status AsterixInstance::ConnectFeedStatement(const aql::Statement& st) {
  std::string feed_name = st.name;
  std::string dataverse = st.dataverse;
  if (auto dot = feed_name.find('.'); dot != std::string::npos) {
    dataverse = feed_name.substr(0, dot);
    feed_name = feed_name.substr(dot + 1);
  }
  const metadata::FeedDef* def = metadata_->FindFeed(dataverse, feed_name);
  if (!def) return Status::NotFound("feed " + feed_name);
  storage::PartitionedDataset* target = FindDataset(st.dataset);
  if (!target) return Status::NotFound("dataset " + st.dataset);

  // The compute-stage transform from the feed's applied UDF.
  feeds::FeedTransform transform;
  if (!def->applied_function.empty()) {
    const aql::FunctionDef* fn =
        metadata_->FindFunction(dataverse, def->applied_function, 1);
    if (!fn) {
      return Status::NotFound("feed function " + def->applied_function);
    }
    aql::ParserContext fn_ctx = parser_ctx_;
    fn_ctx.dataverse = fn->dataverse;
    auto body_r = aql::ParseAqlExpression(fn->body, &fn_ctx);
    if (!body_r.ok()) return body_r.status();
    auto body = body_r.take();
    std::string param = fn->params[0];
    auto scan_fn = [this](const std::string& q,
                          const std::function<Status(const Value&)>& cb) {
      return ScanDataset(q, cb);
    };
    transform = [body, param, scan_fn](const Value& record) -> Result<Value> {
      EvalContext ctx(scan_fn);
      ctx.Bind(param, record);
      return algebricks::EvalExpr(*body, ctx);
    };
  }

  std::string conn_name = dataverse + "." + feed_name;
  if (def->adaptor == "socket_adaptor" || def->adaptor == "push_adaptor") {
    auto adaptor = std::make_unique<feeds::PushAdaptor>();
    feeds::PushAdaptor* input = adaptor.get();
    auto conn_r = feeds_->ConnectPrimary(conn_name, std::move(adaptor),
                                         transform, target);
    if (!conn_r.ok()) return conn_r.status();
    feed_inputs_[conn_name] = input;
    return Status::OK();
  }
  if (def->adaptor == "localfs" || def->adaptor == "file_feed") {
    auto path_it = def->params.find("path");
    if (path_it == def->params.end()) {
      return Status::InvalidArgument("file feed requires 'path'");
    }
    auto adaptor_r =
        feeds::FileReplayAdaptor::Open(external::ResolveLocalPath(path_it->second));
    if (!adaptor_r.ok()) return adaptor_r.status();
    auto conn_r = feeds_->ConnectPrimary(conn_name, adaptor_r.take(),
                                         transform, target);
    return conn_r.ok() ? Status::OK() : conn_r.status();
  }
  if (def->adaptor == "secondary") {
    auto src_it = def->params.find("source-feed");
    if (src_it == def->params.end()) {
      return Status::InvalidArgument("secondary feed requires 'source-feed'");
    }
    auto conn_r = feeds_->ConnectSecondary(
        conn_name, dataverse + "." + src_it->second, transform, target);
    return conn_r.ok() ? Status::OK() : conn_r.status();
  }
  return Status::NotImplemented("feed adaptor " + def->adaptor);
}

feeds::PushAdaptor* AsterixInstance::FeedInput(const std::string& feed_name) {
  std::string key = feed_name.find('.') != std::string::npos
                        ? feed_name
                        : parser_ctx_.dataverse + "." + feed_name;
  auto it = feed_inputs_.find(key);
  return it == feed_inputs_.end() ? nullptr : it->second;
}

Status AsterixInstance::ExecuteLoad(const aql::Statement& st) {
  storage::PartitionedDataset* ds = FindDataset(st.dataset);
  if (!ds) return Status::NotFound("dataset " + st.dataset);
  std::vector<Value> records;
  ASTERIX_RETURN_NOT_OK(external::ReadExternalData(
      st.adaptor, st.adaptor_params, ds->def().type, [&](const Value& rec) {
        records.push_back(rec);
        return Status::OK();
      }));
  ASTERIX_RETURN_NOT_OK(ds->LoadBulk(records));
  return ds->FlushAll();
}

Status AsterixInstance::ExecuteInsert(const aql::Statement& st,
                                      ExecutionResult* last) {
  storage::PartitionedDataset* ds = FindDataset(st.dataset);
  if (!ds) return Status::NotFound("dataset " + st.dataset);
  // Evaluate the payload expression: a record, or a collection of records
  // (e.g. an inserted subquery).
  EvalContext ctx([this](const std::string& q,
                         const std::function<Status(const Value&)>& cb) {
    return ScanDataset(q, cb);
  });
  auto payload_r = algebricks::EvalExpr(*st.expr, ctx);
  if (!payload_r.ok()) return payload_r.status();
  std::vector<hyracks::Tuple> rows;
  if (payload_r.value().IsList()) {
    for (const auto& rec : payload_r.value().AsList()) rows.push_back({rec});
  } else {
    rows.push_back({payload_r.take()});
  }
  size_t batch = rows.size();

  // One Hyracks job per insert statement: the whole batch shares the job
  // start-up overhead (the Table 4 batching effect).
  hyracks::JobSpec job;
  int src = job.AddOperator(hyracks::MakeValueScan(std::move(rows)));
  int ins = job.AddOperator(hyracks::MakeInsert(ds, 0));
  auto sink = std::make_shared<std::vector<hyracks::Tuple>>();
  int res = job.AddOperator(hyracks::MakeResultSink(sink));
  std::vector<std::string> pk = ds->def().primary_key_fields;
  job.Connect(hyracks::ConnectorType::kMToNPartitioning, src, ins, 0,
              [pk](const hyracks::Tuple& t) {
                storage::CompositeKey key;
                for (const auto& f : pk) {
                  key.push_back(storage::ExtractFieldPath(t[0], f));
                }
                return storage::HashKey(key);
              });
  job.Connect(hyracks::ConnectorType::kMToNReplicating, ins, res);
  job.query_id = journal::CurrentQueryId();
  auto stats_r = cluster_->ExecuteJob(job);
  if (!stats_r.ok()) return stats_r.status();
  last->stats = stats_r.take();
  StampProfilePhases(&last->stats, 0, 0);
  last->values = {Value::Int64(static_cast<int64_t>(batch))};
  return Status::OK();
}

Status AsterixInstance::ExecuteDelete(const aql::Statement& st,
                                      ExecutionResult* last) {
  storage::PartitionedDataset* ds = FindDataset(st.dataset);
  if (!ds) return Status::NotFound("dataset " + st.dataset);
  // Find matching primary keys with a read plan, then delete via a job.
  auto scan = algebricks::MakeOp(LogicalOp::Kind::kDataSourceScan);
  scan->dataset = st.dataset;
  scan->var = st.var;
  LogicalOpPtr tip = scan;
  if (st.expr) {
    auto sel = algebricks::MakeOp(LogicalOp::Kind::kSelect);
    sel->inputs = {tip};
    sel->expr = st.expr;
    tip = sel;
  }
  auto dist = algebricks::MakeOp(LogicalOp::Kind::kDistribute);
  dist->inputs = {tip};
  // Emit the pk values as a list per record.
  std::vector<algebricks::ExprPtr> pk_exprs;
  for (const auto& f : ds->def().primary_key_fields) {
    algebricks::ExprPtr fa = algebricks::Expr::Var(st.var);
    size_t start = 0;
    while (true) {
      size_t dot = f.find('.', start);
      std::string part = f.substr(start, dot - start);
      fa = algebricks::Expr::FieldAccess(fa, part);
      if (dot == std::string::npos) break;
      start = dot + 1;
    }
    pk_exprs.push_back(fa);
  }
  dist->expr = algebricks::Expr::ListCtor(pk_exprs);

  EvalContext ctx([this](const std::string& q,
                         const std::function<Status(const Value&)>& cb) {
    return ScanDataset(q, cb);
  });
  auto keys_r = algebricks::InterpretToValues(dist, ctx);
  if (!keys_r.ok()) return keys_r.status();

  std::vector<hyracks::Tuple> rows;
  for (const auto& keylist : keys_r.value()) {
    rows.push_back(hyracks::Tuple(keylist.AsList().begin(),
                                  keylist.AsList().end()));
  }
  size_t n = rows.size();
  if (n == 0) {
    last->values = {Value::Int64(0)};
    return Status::OK();
  }
  hyracks::JobSpec job;
  int src = job.AddOperator(hyracks::MakeValueScan(std::move(rows)));
  std::vector<int> key_cols;
  for (size_t i = 0; i < ds->def().primary_key_fields.size(); ++i) {
    key_cols.push_back(static_cast<int>(i));
  }
  int del = job.AddOperator(hyracks::MakeDelete(ds, key_cols));
  auto sink = std::make_shared<std::vector<hyracks::Tuple>>();
  int res = job.AddOperator(hyracks::MakeResultSink(sink));
  job.Connect(hyracks::ConnectorType::kMToNPartitioning, src, del, 0,
              hyracks::HashOnColumns(key_cols));
  job.Connect(hyracks::ConnectorType::kMToNReplicating, del, res);
  job.query_id = journal::CurrentQueryId();
  auto stats_r = cluster_->ExecuteJob(job);
  if (!stats_r.ok()) return stats_r.status();
  last->stats = stats_r.take();
  StampProfilePhases(&last->stats, 0, 0);
  int64_t deleted = 0;
  for (const auto& t : *sink) deleted += t[0].AsInt();
  last->values = {Value::Int64(deleted)};
  return Status::OK();
}

Status AsterixInstance::ExecuteQuery(const aql::Statement& st, bool run,
                                     ExecutionResult* out) {
  SetQueryPhase(QueryPhase::kOptimize);
  auto optimize_start = std::chrono::steady_clock::now();
  Catalog catalog(this);
  auto plan_r = algebricks::Optimize(st.plan, catalog, config_.optimizer);
  if (!plan_r.ok()) return plan_r.status();
  LogicalOpPtr plan = plan_r.take();
  out->logical_plan = plan->ToString();
  out->values.clear();

  // Subplan scans inside compiled expressions run on executor-pool worker
  // threads: re-publish this query's read-set recorder (if any) there so
  // every dataset the execution touches lands in the cache entry's deps.
  ReadSetRecorder* recorder = tls_read_set;
  auto scan_fn = [this, recorder](const std::string& q,
                                  const std::function<Status(const Value&)>& cb) {
    ReadSetScope scope(recorder);
    return ScanDataset(q, cb);
  };

  // Physical compilation. Internal datasets compile to parallel jobs;
  // metadata and external dataset scans fall back to the reference
  // interpreter (they are small/catalog-sized).
  algebricks::PhysicalCompiler compiler(
      cluster_.get(), txns_.get(),
      [this](const std::string& q) -> storage::PartitionedDataset* {
        auto it = datasets_.find(q);
        if (it == datasets_.end()) return nullptr;
        if (ReadSetRecorder* rs = tls_read_set) rs->RecordDataset(q);
        return it->second.get();
      },
      scan_fn, config_.optimizer);
  auto sink = std::make_shared<std::vector<hyracks::Tuple>>();
  auto job_r = compiler.Compile(plan, sink);
  uint64_t optimize_us = ElapsedUs(optimize_start);
  if (QueryTracker* tracker = tls_query_tracker) {
    tracker->phases.optimize_us += optimize_us;
  }
  if (job_r.ok()) {
    out->job_plan = job_r.value().ToString();
    out->stage_plan = hyracks::ComputeStages(job_r.value()).ToString();
    if (!run) {
      out->used_compiled_path = true;
      return Status::OK();
    }
    job_r.value().query_id = journal::CurrentQueryId();
    SetQueryPhase(QueryPhase::kExecute);
    auto stats_r = cluster_->ExecuteJob(job_r.value());
    if (stats_r.ok()) {
      out->stats = stats_r.take();
      out->used_compiled_path = true;
      SetQueryPhase(QueryPhase::kResult);
      auto result_start = std::chrono::steady_clock::now();
      for (auto& t : *sink) out->values.push_back(std::move(t[0]));
      uint64_t result_us = ElapsedUs(result_start);
      // Stamp query-level phases onto the profile before rendering the
      // annotated plan, so EXPLAIN ANALYZE shows the full lifecycle.
      StampProfilePhases(&out->stats, optimize_us, result_us);
      if (out->stats.profile) {
        out->profiled_plan =
            hyracks::AnnotatePlan(job_r.value(), *out->stats.profile);
      }
      return Status::OK();
    }
    // Execution-level failures are real errors, not fallback material,
    // except for NotImplemented gaps.
    if (stats_r.status().code() != StatusCode::kNotImplemented) {
      return stats_r.status();
    }
  } else if (job_r.status().code() != StatusCode::kNotFound &&
             job_r.status().code() != StatusCode::kNotImplemented) {
    return job_r.status();
  }

  // Reference interpreter fallback.
  if (!run) return Status::OK();
  SetQueryPhase(QueryPhase::kExecute);
  auto interp_start = std::chrono::steady_clock::now();
  EvalContext ctx(scan_fn);
  auto values_r = algebricks::InterpretToValues(plan, ctx);
  if (QueryTracker* tracker = tls_query_tracker) {
    tracker->phases.execute_us += ElapsedUs(interp_start);
  }
  if (!values_r.ok()) return values_r.status();
  out->values = values_r.take();
  out->used_compiled_path = false;
  return Status::OK();
}

Status AsterixInstance::FlushAllInternal() {
  for (auto& [name, ds] : datasets_) {
    (void)name;
    ASTERIX_RETURN_NOT_OK(ds->FlushAll());
  }
  return Status::OK();
}

Status AsterixInstance::FlushAll() {
  std::shared_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  return FlushAllInternal();
}

Status AsterixInstance::Checkpoint() {
  std::shared_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  ASTERIX_RETURN_NOT_OK(FlushAllInternal());
  ASTERIX_RETURN_NOT_OK(metadata_->FlushAll());
  // Every committed operation is now inside a validity-bit-protected disk
  // component; the log carries nothing recovery still needs.
  return txns_->log().Reset();
}

Result<uint64_t> AsterixInstance::DatasetPrimaryBytes(
    const std::string& qualified) {
  std::shared_lock<std::shared_mutex> ddl_lock(ddl_mu_);
  storage::PartitionedDataset* ds = FindDataset(qualified);
  if (!ds) return Status::NotFound("dataset " + qualified);
  return ds->TotalPrimaryDiskBytes();
}

std::string ResultsToJson(const std::vector<Value>& values) {
  std::string out = "[ ";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out += ", ";
    values[i].AppendTo(&out);
  }
  out += " ]";
  return out;
}

}  // namespace api
}  // namespace asterix
