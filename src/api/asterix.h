#ifndef ASTERIX_API_ASTERIX_H_
#define ASTERIX_API_ASTERIX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "algebricks/physical.h"
#include "aql/parser.h"
#include "common/timeseries.h"
#include "feeds/feeds.h"
#include "hyracks/cluster.h"
#include "metadata/metadata.h"
#include "server/coalescer.h"
#include "server/rate_limiter.h"
#include "server/result_cache.h"
#include "server/watchdog.h"

namespace asterix {
namespace api {

/// Instance-wide configuration.
struct InstanceConfig {
  std::string base_dir;  // data directory (WAL, components, metadata)
  hyracks::ClusterConfig cluster;
  storage::LsmOptions lsm;
  algebricks::OptimizerOptions optimizer;
  int64_t lock_timeout_ms = 2000;
  /// Simulated WAL flush latency with group commit (0 = disabled).
  int64_t group_commit_latency_us = 0;
  /// Serving layer (src/server): capacity of the plan-keyed result cache
  /// consulted by Serve(). 0 disables caching (Serve still coalesces).
  uint64_t result_cache_bytes = 8ull << 20;
  /// Per-client steady-state request allowance for Serve() (requests/sec).
  /// 0 disables rate limiting.
  double rate_limit_qps = 0.0;
  /// Token-bucket burst capacity; 0 means max(rate_limit_qps, 1).
  double rate_limit_burst = 0.0;
  /// Continuous monitoring: a background sampler snapshots the metrics
  /// registry into a bounded ring every monitor_interval_ms and the health
  /// watchdog re-evaluates its derived conditions on each sample. Costs one
  /// registry walk per interval; nothing rides any query hot path.
  bool enable_monitoring = true;
  uint64_t monitor_interval_ms = 100;
  /// Ring capacity in samples (600 x 100ms = one minute of history).
  size_t monitor_ring_samples = 600;
  /// WatchdogOptions thresholds for the health conditions.
  server::WatchdogOptions watchdog;
  /// Background LSM maintenance: when true (the default), Boot() creates a
  /// shared compaction scheduler (ClusterConfig::compaction_threads) and
  /// every index flushes/merges off the ingest path — writers rotate to a
  /// fresh memtable instead of paying the flush inline. Set false (or
  /// export ASTERIX_INGEST_SYNC=1) to restore fully synchronous
  /// maintenance: flushes stall the writer, as before PR 10 — the A/B knob
  /// bench_ingest compares against.
  bool async_compaction = true;
};

/// Result of executing an AQL script: the last query statement's values
/// plus compilation artifacts for EXPLAIN-style introspection.
struct ExecutionResult {
  std::vector<adm::Value> values;
  std::string logical_plan;   // optimized Algebricks plan
  std::string job_plan;       // Hyracks job rendering (Figure 6 style)
  std::string stage_plan;     // activity/stage decomposition
  /// Job plan annotated with actuals (per-operator tuples in/out, elapsed
  /// ms, per-connector hop counts) — what EXPLAIN ANALYZE returns. Filled
  /// whenever a query ran on the compiled path.
  std::string profiled_plan;
  hyracks::JobStats stats;    // last executed job's stats
  bool used_compiled_path = false;  // false = reference interpreter fallback
  /// Serve() provenance: answered from the result cache without executing.
  bool from_cache = false;
  /// Serve() provenance: attached to another client's identical in-flight
  /// execution and shares its result.
  bool coalesced = false;
};

/// Per-request options for Serve()/ServeAsync().
struct ServeOptions {
  /// Identity the rate limiter buckets on (one token bucket per client).
  std::string client_id = "default";
};

/// Lifecycle phase an in-flight query is currently in (the StatusJson
/// `phase` field and the span names on hyracks::PhaseSpans).
enum class QueryPhase : int {
  kParse = 0,
  kOptimize = 1,
  kExecute = 2,
  kResult = 3,
};
const char* QueryPhaseName(QueryPhase phase);

/// Live entry in the instance's active-query table. The executing thread
/// stores `phase` as it moves through the lifecycle; StatusJson() reads it
/// concurrently (relaxed — a momentarily stale phase is fine). The other
/// fields are immutable after registration.
struct ActiveQueryRecord {
  uint64_t query_id = 0;
  std::chrono::steady_clock::time_point start;
  std::atomic<int> phase{0};  // QueryPhase
  std::string statement;      // leading fragment of the submitted script
};

/// The system facade: a single-process AsterixDB instance simulating a
/// shared-nothing cluster (Figure 1's Cluster Controller + Node Controllers
/// + Metadata Node Controller). Statements go in as AQL text; results come
/// back as ADM values (rendered to JSON by Value::ToString).
class AsterixInstance {
 public:
  explicit AsterixInstance(InstanceConfig config);
  ~AsterixInstance();

  AsterixInstance(const AsterixInstance&) = delete;
  AsterixInstance& operator=(const AsterixInstance&) = delete;

  /// Opens/creates the instance: bootstraps metadata, re-instantiates
  /// datasets recorded there, and recovers from the WAL.
  Status Boot();

  /// Runs a full AQL script (any mix of DDL/DML/queries), synchronously.
  Result<ExecutionResult> Execute(const std::string& aql);

  /// The concurrent serving entry point: Execute() behind the server-layer
  /// pipeline — per-client token-bucket rate limiting (kRateLimited), the
  /// plan-keyed result cache (read-only scripts whose dependency versions
  /// still match are answered without executing), and single-flight request
  /// coalescing (identical concurrent read-only scripts share one
  /// execution). Mutating scripts pass straight through to Execute(); job
  /// admission (kOverloaded) applies underneath either way.
  Result<ExecutionResult> Serve(const std::string& aql,
                                const ServeOptions& opts = {});

  /// Serve() on a background thread; same handle protocol as SubmitAsync.
  Result<uint64_t> ServeAsync(const std::string& aql,
                              const ServeOptions& opts = {});

  /// Asynchronous submission: returns a handle immediately (paper §4: the
  /// client can request status/results via the handle).
  Result<uint64_t> SubmitAsync(const std::string& aql);
  enum class AsyncState { kRunning, kDone, kFailed };
  AsyncState PollAsync(uint64_t handle);
  /// Blocks for an async result and releases the handle.
  Result<ExecutionResult> GetAsyncResult(uint64_t handle);

  /// Compiles (but does not run) the last query in the script (EXPLAIN).
  Result<ExecutionResult> Explain(const std::string& aql);

  /// JSON snapshot of the process-wide metrics registry: storage (LSM
  /// flush/merge, bloom, buffer cache), txn (WAL, locks), feeds, and
  /// Hyracks counters/histograms. The monitoring endpoint.
  static std::string MetricsJson();

  /// Live runtime introspection: active queries (phase + elapsed), active
  /// jobs with memory-budget usage, executor-pool occupancy, channel queue
  /// depth, per-dataset LSM component counts, p50/p95/p99 latency
  /// percentiles, windowed per-second rates from the monitoring ring, top
  /// queries by CPU and bytes, the per-client resource table, and the
  /// health watchdog's summary. The "what is the system doing right now"
  /// endpoint, complementing the cumulative MetricsJson().
  std::string StatusJson();

  /// The monitoring ring's trailing samples as JSON (0 = all). Bench
  /// drivers embed this so a run's metric trajectory rides along in
  /// BENCH_*.json. Empty-ring JSON when monitoring is disabled.
  std::string HistoryJson(size_t max_samples = 0);

  /// Prometheus text exposition (format 0.0.4) of the metrics registry.
  static std::string MetricsPrometheus();

  /// Monitoring handles (null when enable_monitoring is false).
  monitor::MetricsSampler* sampler() { return sampler_.get(); }
  server::HealthWatchdog* watchdog() { return watchdog_.get(); }

  /// Background compaction scheduler (null when async_compaction is false
  /// or ASTERIX_INGEST_SYNC=1 forced inline maintenance at boot).
  storage::CompactionScheduler* compaction() { return compaction_.get(); }

  /// Where slow queries are logged (one JSON line per over-threshold query;
  /// see ClusterConfig::slow_query_us).
  std::string SlowQueryLogPath() const;

  // -- Direct handles (examples/benches/feeds) ----------------------------------
  storage::PartitionedDataset* FindDataset(const std::string& qualified);
  metadata::MetadataManager* metadata() { return metadata_.get(); }
  hyracks::Cluster* cluster() { return cluster_.get(); }
  feeds::FeedManager* feeds() { return feeds_.get(); }
  txn::TxnManager* txns() { return txns_.get(); }
  storage::BufferCache* buffer_cache() { return cache_.get(); }

  /// The push adaptor of a connected push/socket feed (to push records at).
  feeds::PushAdaptor* FeedInput(const std::string& feed_name);

  /// Flushes every dataset's memory components (no log truncation).
  Status FlushAll();

  /// Checkpoint: flushes every index (data + catalogs) so all committed
  /// work lives in valid disk components, then truncates the WAL — recovery
  /// afterwards needs only the validity bits, not replay.
  Status Checkpoint();

  /// Total primary-index bytes of one dataset after FlushAll (Table 2).
  Result<uint64_t> DatasetPrimaryBytes(const std::string& qualified);

 private:
  class Catalog;

  /// Execute() body after query registration: parse + statement loop, with
  /// phase timing recorded into the calling thread's query tracker.
  Result<ExecutionResult> ExecuteScript(const std::string& aql);
  /// Appends a JSON line with the full annotated profile when the query's
  /// wall time crossed ClusterConfig::slow_query_us.
  void MaybeLogSlowQuery(uint64_t query_id, const std::string& statement,
                         uint64_t elapsed_us,
                         const hyracks::PhaseSpans& phases,
                         const Result<ExecutionResult>& result);

  Status ExecuteStatement(const aql::Statement& st, ExecutionResult* last);
  Status ExecuteDdl(const aql::Statement& st);
  /// Post-commit serving invalidation for a DDL statement: bumps the
  /// catalog epoch (and the target dataset's version cell, when the
  /// statement names one) and eagerly drops dependent cache entries.
  void InvalidateServingAfterDdl(const aql::Statement& st);
  /// Classifies a script for the serving layer and builds its cache key.
  /// Cacheable = every statement is a plain query (or context-only
  /// set/use); the key folds in the session state that affects parsing.
  bool ClassifyForServing(const std::string& aql, std::string* key);
  /// Registers an async task and returns its handle (SubmitAsync and
  /// ServeAsync share the bookkeeping the destructor drains).
  Result<uint64_t> LaunchAsync(std::function<Result<ExecutionResult>()> run);
  Status FlushAllInternal();
  Status ExecuteInsert(const aql::Statement& st, ExecutionResult* last);
  Status ExecuteDelete(const aql::Statement& st, ExecutionResult* last);
  Status ExecuteLoad(const aql::Statement& st);
  Status ConnectFeedStatement(const aql::Statement& st);
  Status ExecuteQuery(const aql::Statement& st, bool run, ExecutionResult* out);
  Status InstantiateDataset(const storage::DatasetDef& def);

  /// Dataset scan hook for the interpreter/subplans: internal, metadata,
  /// and external datasets.
  Status ScanDataset(const std::string& qualified,
                     const std::function<Status(const adm::Value&)>& cb);

  InstanceConfig config_;
  /// Background compaction pool shared by every LSM index in the instance
  /// (datasets and metadata catalogs alike). Declared before cache_ and the
  /// dataset map so it is destroyed LAST: trees detach from it in their
  /// destructors, so the workers must outlive every tree.
  std::unique_ptr<storage::CompactionScheduler> compaction_;
  std::unique_ptr<storage::BufferCache> cache_;
  std::unique_ptr<txn::TxnManager> txns_;
  std::unique_ptr<hyracks::Cluster> cluster_;
  std::unique_ptr<metadata::MetadataManager> metadata_;
  std::unique_ptr<feeds::FeedManager> feeds_;
  std::map<std::string, std::unique_ptr<storage::PartitionedDataset>> datasets_;
  std::map<std::string, feeds::PushAdaptor*> feed_inputs_;
  /// Statement-level DDL/query lock: DDL and feed connection hold it
  /// exclusively (they mutate datasets_ and tear down dataset instances);
  /// queries, DML, and introspection hold it shared. This is what makes
  /// concurrent Serve()/SubmitAsync() against DDL churn safe — previously
  /// the datasets_ map raced.
  std::shared_mutex ddl_mu_;

  /// Continuous monitoring: watchdog first (the sampler's observer refers
  /// to it), then the sampler whose thread drives it. The destructor stops
  /// the sampler before any subsystem it probes is torn down.
  std::unique_ptr<server::HealthWatchdog> watchdog_;
  std::unique_ptr<monitor::MetricsSampler> sampler_;

  /// Serving layer (Serve/ServeAsync). The cache payload is a whole
  /// ExecutionResult; the coalescer shares the leader's Result so followers
  /// inherit failures too.
  std::unique_ptr<server::ResultCache<ExecutionResult>> result_cache_;
  server::RequestCoalescer<Result<ExecutionResult>> coalescer_;
  std::unique_ptr<server::RateLimiter> rate_limiter_;
  /// Guards parser_ctx_ against concurrent Execute()/Explain() (async
  /// submissions parse on pool threads).
  std::mutex parser_mu_;
  aql::ParserContext parser_ctx_;
  uint32_t next_dataset_id_ = 100;

  /// Queries currently inside Execute(), keyed by query id (StatusJson).
  mutable std::mutex queries_mu_;
  std::map<uint64_t, std::shared_ptr<ActiveQueryRecord>> active_queries_;
  /// Serializes slow-query log appends so concurrent async queries never
  /// interleave within a JSON line.
  std::mutex slow_log_mu_;

  std::mutex async_mu_;
  uint64_t next_handle_ = 1;
  std::map<uint64_t,
           std::shared_future<std::shared_ptr<Result<ExecutionResult>>>>
      async_;
  /// Async submissions not yet finished; the destructor blocks until this
  /// drains so no background script outlives the instance it runs against.
  size_t async_inflight_ = 0;  // guarded by async_mu_
  std::condition_variable async_cv_;
};

/// Renders result values as a JSON array string.
std::string ResultsToJson(const std::vector<adm::Value>& values);

}  // namespace api
}  // namespace asterix

#endif  // ASTERIX_API_ASTERIX_H_
