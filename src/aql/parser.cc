#include "aql/parser.h"

#include <cstdlib>
#include <map>
#include <set>

#include "adm/adm_parser.h"
#include "functions/builtins.h"

namespace asterix {
namespace aql {

using adm::Value;
using algebricks::Expr;
using algebricks::ExprPtr;
using algebricks::LogicalOp;
using algebricks::LogicalOpPtr;
using algebricks::MakeOp;

namespace {

// ---------------------------------------------------------------------------
// Variable substitution (UDF inlining)
// ---------------------------------------------------------------------------

void SubstituteInPlan(LogicalOpPtr& plan,
                      const std::map<std::string, ExprPtr>& subs);

ExprPtr SubstituteInExpr(const ExprPtr& e,
                         const std::map<std::string, ExprPtr>& subs) {
  if (!e) return e;
  if (e->kind == Expr::Kind::kVar) {
    auto it = subs.find(e->var);
    return it != subs.end() ? it->second : e;
  }
  auto copy = std::make_shared<Expr>(*e);
  if (copy->base) copy->base = SubstituteInExpr(copy->base, subs);
  for (auto& a : copy->args) a = SubstituteInExpr(a, subs);
  if (copy->kind == Expr::Kind::kQuantified) {
    // Quantifier variable shadows.
    std::map<std::string, ExprPtr> inner = subs;
    inner.erase(copy->qvar);
    copy->args[1] = SubstituteInExpr(e->args[1], inner);
  }
  if (copy->kind == Expr::Kind::kSubplan) {
    copy->subplan = algebricks::CloneOp(copy->subplan);
    SubstituteInPlan(copy->subplan, subs);
  }
  return copy;
}

void SubstituteInPlan(LogicalOpPtr& plan,
                      const std::map<std::string, ExprPtr>& subs) {
  if (!plan) return;
  // Variables bound inside the plan shadow the substitution.
  std::map<std::string, ExprPtr> local = subs;
  // (Conservative: strip any name the plan itself defines.)
  std::set<std::string> defined;
  std::function<void(const LogicalOpPtr&)> collect = [&](const LogicalOpPtr& op) {
    for (const auto& in : op->inputs) collect(in);
    for (const auto& v : op->OutVars()) defined.insert(v);
  };
  collect(plan);
  for (const auto& d : defined) local.erase(d);
  std::function<void(LogicalOpPtr&)> walk = [&](LogicalOpPtr& op) {
    if (op->expr) op->expr = SubstituteInExpr(op->expr, local);
    for (auto& [v, e] : op->group_keys) {
      (void)v;
      e = SubstituteInExpr(e, local);
    }
    for (auto& a : op->aggs) {
      if (a.arg) a.arg = SubstituteInExpr(a.arg, local);
    }
    for (auto& [e, asc] : op->order_keys) {
      (void)asc;
      e = SubstituteInExpr(e, local);
    }
    for (auto& in : op->inputs) walk(in);
  };
  walk(plan);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(const std::string& text, ParserContext* ctx)
      : text_(text), ctx_(ctx) {}

  Status Init() {
    auto toks = Tokenize(text_);
    if (!toks.ok()) return toks.status();
    tokens_ = toks.take();
    return Status::OK();
  }

  Result<std::vector<Statement>> ParseScript();
  Result<ExprPtr> ParseSingleExpression();

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  bool PeekIdent(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdent && t.text == kw;
  }
  bool PeekPunct(const char* p, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kPunct && t.text == p;
  }
  bool ConsumeIdent(const char* kw) {
    if (PeekIdent(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumePunct(const char* p) {
    if (PeekPunct(p)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(const char* what) {
    return Status::ParseError(std::string("expected ") + what + " but found '" +
                              Peek().text + "' at line " +
                              std::to_string(Peek().line));
  }
  Status ExpectPunct(const char* p) {
    if (ConsumePunct(p)) return Status::OK();
    return Expect((std::string("'") + p + "'").c_str());
  }
  Status ExpectIdent(const char* kw) {
    if (ConsumeIdent(kw)) return Status::OK();
    return Expect((std::string("keyword '") + kw + "'").c_str());
  }
  Result<std::string> ExpectName() {
    if (Peek().kind != TokenKind::kIdent) return Expect("identifier");
    return Advance().text;
  }
  Result<std::string> ExpectVariable() {
    if (Peek().kind != TokenKind::kVariable) return Expect("variable");
    return Advance().text;
  }
  Result<std::string> ExpectString() {
    if (Peek().kind != TokenKind::kString) return Expect("string literal");
    return Advance().text;
  }

  std::string Qualify(const std::string& name) {
    if (name.find('.') != std::string::npos) return name;
    return ctx_->dataverse + "." + name;
  }
  /// Parses NAME or NAME.NAME.
  Result<std::string> ParseQualifiedName() {
    ASTERIX_ASSIGN_OR_RETURN(std::string first, ExpectName());
    if (ConsumePunct(".")) {
      ASTERIX_ASSIGN_OR_RETURN(std::string second, ExpectName());
      return first + "." + second;
    }
    return first;
  }

  std::string FreshVar(const std::string& base) {
    return "#" + base + std::to_string(var_counter_++);
  }

  // Statements.
  Result<Statement> ParseStatement();
  Result<Statement> ParseCreate();
  Result<Statement> ParseCreateType();
  Result<Statement> ParseCreateDataset(bool external);
  Result<Statement> ParseCreateIndex();
  Result<Statement> ParseCreateFunction();
  Result<Statement> ParseCreateFeed();
  Result<Statement> ParseInsert();
  Result<Statement> ParseDelete();
  Result<Statement> ParseLoad();
  Result<TypeExprPtr> ParseTypeExpr();
  Status ParseAdaptorParams(std::map<std::string, std::string>* out);

  // Expressions.
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePostfix();
  Result<ExprPtr> ParsePrimary();
  Result<ExprPtr> ParseFlwor();
  Result<ExprPtr> ParseQuantified(bool is_every);
  Result<ExprPtr> ParseFunctionCall(const std::string& name);
  Result<ExprPtr> MakeFuzzyEquals(ExprPtr lhs, ExprPtr rhs);

  const std::string& text_;
  ParserContext* ctx_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int var_counter_ = 0;
  // Hints seen while parsing the current FLWOR (applied when it closes).
  std::vector<std::set<std::string>> hint_stack_;
};

// ---------------------------------------------------------------------------
// Statement level
// ---------------------------------------------------------------------------

Result<std::vector<Statement>> Parser::ParseScript() {
  std::vector<Statement> out;
  while (!AtEnd()) {
    while (ConsumePunct(";")) {
    }
    if (AtEnd()) break;
    ASTERIX_ASSIGN_OR_RETURN(Statement st, ParseStatement());
    out.push_back(std::move(st));
    while (ConsumePunct(";")) {
    }
  }
  return out;
}

Result<ExprPtr> Parser::ParseSingleExpression() {
  ASTERIX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
  if (!AtEnd()) return Expect("end of expression");
  return e;
}

Result<Statement> Parser::ParseStatement() {
  if (PeekIdent("drop")) {
    Advance();
    if (ConsumeIdent("dataverse")) {
      Statement st;
      st.kind = Statement::Kind::kDropDataverse;
      ASTERIX_ASSIGN_OR_RETURN(st.name, ExpectName());
      if (ConsumeIdent("if")) {
        ASTERIX_RETURN_NOT_OK(ExpectIdent("exists"));
        st.if_exists = true;
      }
      st.dataverse = st.name;
      return st;
    }
    if (ConsumeIdent("dataset")) {
      Statement st;
      st.kind = Statement::Kind::kDropDataset;
      ASTERIX_ASSIGN_OR_RETURN(std::string name, ParseQualifiedName());
      st.dataset = Qualify(name);
      st.dataverse = ctx_->dataverse;
      if (ConsumeIdent("if")) {
        ASTERIX_RETURN_NOT_OK(ExpectIdent("exists"));
        st.if_exists = true;
      }
      return st;
    }
    if (ConsumeIdent("index")) {
      // drop index Dataset.IndexName [if exists]
      Statement st;
      st.kind = Statement::Kind::kDropIndex;
      st.dataverse = ctx_->dataverse;
      ASTERIX_ASSIGN_OR_RETURN(std::string ds, ExpectName());
      ASTERIX_RETURN_NOT_OK(ExpectPunct("."));
      ASTERIX_ASSIGN_OR_RETURN(st.name, ExpectName());
      st.dataset = Qualify(ds);
      if (ConsumeIdent("if")) {
        ASTERIX_RETURN_NOT_OK(ExpectIdent("exists"));
        st.if_exists = true;
      }
      return st;
    }
    if (ConsumeIdent("function")) {
      Statement st;
      st.kind = Statement::Kind::kDropFunction;
      st.dataverse = ctx_->dataverse;
      ASTERIX_ASSIGN_OR_RETURN(st.name, ExpectName());
      if (ConsumeIdent("if")) {
        ASTERIX_RETURN_NOT_OK(ExpectIdent("exists"));
        st.if_exists = true;
      }
      return st;
    }
    return Expect("dataverse/dataset/index/function after drop");
  }
  if (PeekIdent("create")) return ParseCreate();
  if (PeekIdent("use")) {
    Advance();
    ASTERIX_RETURN_NOT_OK(ExpectIdent("dataverse"));
    Statement st;
    st.kind = Statement::Kind::kUseDataverse;
    ASTERIX_ASSIGN_OR_RETURN(st.name, ExpectName());
    st.dataverse = st.name;
    ctx_->dataverse = st.name;
    return st;
  }
  if (PeekIdent("set")) {
    Advance();
    Statement st;
    st.kind = Statement::Kind::kSet;
    ASTERIX_ASSIGN_OR_RETURN(st.set_key, ExpectName());
    ASTERIX_ASSIGN_OR_RETURN(st.set_value, ExpectString());
    if (st.set_key == "simfunction") ctx_->sim_function = st.set_value;
    if (st.set_key == "simthreshold") {
      ctx_->sim_threshold = std::strtod(st.set_value.c_str(), nullptr);
    }
    st.dataverse = ctx_->dataverse;
    return st;
  }
  if (PeekIdent("insert")) return ParseInsert();
  if (PeekIdent("delete")) return ParseDelete();
  if (PeekIdent("load")) return ParseLoad();
  if (PeekIdent("connect")) {
    Advance();
    ASTERIX_RETURN_NOT_OK(ExpectIdent("feed"));
    Statement st;
    st.kind = Statement::Kind::kConnectFeed;
    ASTERIX_ASSIGN_OR_RETURN(st.name, ParseQualifiedName());
    ASTERIX_RETURN_NOT_OK(ExpectIdent("to"));
    ASTERIX_RETURN_NOT_OK(ExpectIdent("dataset"));
    ASTERIX_ASSIGN_OR_RETURN(std::string ds, ParseQualifiedName());
    st.dataset = Qualify(ds);
    st.dataverse = ctx_->dataverse;
    return st;
  }

  // Otherwise: a query expression, optionally prefixed with
  // `explain [analyze]`.
  Statement st;
  st.kind = Statement::Kind::kQuery;
  if (PeekIdent("explain")) {
    Advance();
    st.explain = true;
    st.analyze = ConsumeIdent("analyze");
  }
  st.dataverse = ctx_->dataverse;
  ASTERIX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
  if (e->kind == Expr::Kind::kSubplan) {
    st.plan = e->subplan;
  } else {
    auto dist = MakeOp(LogicalOp::Kind::kDistribute);
    dist->inputs = {MakeOp(LogicalOp::Kind::kEmptySource)};
    dist->expr = e;
    st.plan = dist;
  }
  return st;
}

Result<Statement> Parser::ParseCreate() {
  ASTERIX_RETURN_NOT_OK(ExpectIdent("create"));
  if (ConsumeIdent("dataverse")) {
    Statement st;
    st.kind = Statement::Kind::kCreateDataverse;
    ASTERIX_ASSIGN_OR_RETURN(st.name, ExpectName());
    if (ConsumeIdent("if")) {
      ASTERIX_RETURN_NOT_OK(ExpectIdent("not"));
      ASTERIX_RETURN_NOT_OK(ExpectIdent("exists"));
      st.if_exists = true;
    }
    st.dataverse = st.name;
    return st;
  }
  if (PeekIdent("type")) return ParseCreateType();
  if (PeekIdent("external")) {
    Advance();
    ASTERIX_RETURN_NOT_OK(ExpectIdent("dataset"));
    return ParseCreateDataset(/*external=*/true);
  }
  if (ConsumeIdent("dataset")) return ParseCreateDataset(/*external=*/false);
  if (PeekIdent("index")) return ParseCreateIndex();
  if (PeekIdent("function")) return ParseCreateFunction();
  if (PeekIdent("feed")) return ParseCreateFeed();
  return Expect("type/dataset/index/function/feed/dataverse after create");
}

Result<Statement> Parser::ParseCreateType() {
  ASTERIX_RETURN_NOT_OK(ExpectIdent("type"));
  Statement st;
  st.kind = Statement::Kind::kCreateType;
  st.dataverse = ctx_->dataverse;
  ASTERIX_ASSIGN_OR_RETURN(st.name, ExpectName());
  ASTERIX_RETURN_NOT_OK(ExpectIdent("as"));
  bool open = true;
  if (ConsumeIdent("closed")) open = false;
  else ConsumeIdent("open");
  ASTERIX_ASSIGN_OR_RETURN(st.type_expr, ParseTypeExpr());
  if (st.type_expr->kind == TypeExpr::Kind::kRecord) {
    st.type_expr->open = open;
  }
  return st;
}

Result<TypeExprPtr> Parser::ParseTypeExpr() {
  auto t = std::make_shared<TypeExpr>();
  if (ConsumePunct("{{")) {
    t->kind = TypeExpr::Kind::kBag;
    ASTERIX_ASSIGN_OR_RETURN(t->item, ParseTypeExpr());
    ASTERIX_RETURN_NOT_OK(ExpectPunct("}}"));
    return t;
  }
  if (ConsumePunct("[")) {
    t->kind = TypeExpr::Kind::kOrderedList;
    ASTERIX_ASSIGN_OR_RETURN(t->item, ParseTypeExpr());
    ASTERIX_RETURN_NOT_OK(ExpectPunct("]"));
    return t;
  }
  if (ConsumePunct("{")) {
    t->kind = TypeExpr::Kind::kRecord;
    t->open = true;  // records are open unless the create-type says closed
    if (ConsumePunct("}")) return t;
    while (true) {
      TypeExpr::Field f;
      if (Peek().kind == TokenKind::kString) {
        f.name = Advance().text;
      } else {
        ASTERIX_ASSIGN_OR_RETURN(f.name, ExpectName());
      }
      ASTERIX_RETURN_NOT_OK(ExpectPunct(":"));
      ASTERIX_ASSIGN_OR_RETURN(f.type, ParseTypeExpr());
      if (ConsumePunct("?")) f.optional = true;
      t->fields.push_back(std::move(f));
      if (ConsumePunct(",")) continue;
      ASTERIX_RETURN_NOT_OK(ExpectPunct("}"));
      break;
    }
    return t;
  }
  t->kind = TypeExpr::Kind::kNamed;
  ASTERIX_ASSIGN_OR_RETURN(t->name, ExpectName());
  return t;
}

Result<Statement> Parser::ParseCreateDataset(bool external) {
  Statement st;
  st.kind = external ? Statement::Kind::kCreateExternalDataset
                     : Statement::Kind::kCreateDataset;
  st.dataverse = ctx_->dataverse;
  ASTERIX_ASSIGN_OR_RETURN(std::string name, ParseQualifiedName());
  st.name = name;
  st.dataset = Qualify(name);
  ASTERIX_RETURN_NOT_OK(ExpectPunct("("));
  ASTERIX_ASSIGN_OR_RETURN(st.type_name, ExpectName());
  ASTERIX_RETURN_NOT_OK(ExpectPunct(")"));
  if (external) {
    ASTERIX_RETURN_NOT_OK(ExpectIdent("using"));
    ASTERIX_ASSIGN_OR_RETURN(st.adaptor, ExpectName());
    ASTERIX_RETURN_NOT_OK(ParseAdaptorParams(&st.adaptor_params));
    return st;
  }
  ASTERIX_RETURN_NOT_OK(ExpectIdent("primary"));
  ASTERIX_RETURN_NOT_OK(ExpectIdent("key"));
  while (true) {
    ASTERIX_ASSIGN_OR_RETURN(std::string f, ExpectName());
    // Dotted key paths allowed.
    while (ConsumePunct(".")) {
      ASTERIX_ASSIGN_OR_RETURN(std::string part, ExpectName());
      f += "." + part;
    }
    st.primary_key.push_back(std::move(f));
    if (!ConsumePunct(",")) break;
  }
  if (ConsumeIdent("autogenerated")) st.autogenerated_key = true;
  // Storage options: with { "storage-format": "column", "compression": "lz" }.
  if (ConsumeIdent("with")) {
    ASTERIX_RETURN_NOT_OK(ExpectPunct("{"));
    if (!ConsumePunct("}")) {
      while (true) {
        ASTERIX_ASSIGN_OR_RETURN(std::string key, ExpectString());
        ASTERIX_RETURN_NOT_OK(ExpectPunct(":"));
        ASTERIX_ASSIGN_OR_RETURN(std::string value, ExpectString());
        st.with_params[key] = value;
        if (ConsumePunct(",")) continue;
        ASTERIX_RETURN_NOT_OK(ExpectPunct("}"));
        break;
      }
    }
  }
  return st;
}

Result<Statement> Parser::ParseCreateIndex() {
  ASTERIX_RETURN_NOT_OK(ExpectIdent("index"));
  Statement st;
  st.kind = Statement::Kind::kCreateIndex;
  st.dataverse = ctx_->dataverse;
  ASTERIX_ASSIGN_OR_RETURN(st.name, ExpectName());
  ASTERIX_RETURN_NOT_OK(ExpectIdent("on"));
  ASTERIX_ASSIGN_OR_RETURN(std::string ds, ParseQualifiedName());
  st.dataset = Qualify(ds);
  ASTERIX_RETURN_NOT_OK(ExpectPunct("("));
  while (true) {
    ASTERIX_ASSIGN_OR_RETURN(std::string f, ExpectName());
    while (ConsumePunct(".")) {
      ASTERIX_ASSIGN_OR_RETURN(std::string part, ExpectName());
      f += "." + part;
    }
    st.index_fields.push_back(std::move(f));
    if (!ConsumePunct(",")) break;
  }
  ASTERIX_RETURN_NOT_OK(ExpectPunct(")"));
  st.index_kind = "btree";
  if (ConsumeIdent("type")) {
    ASTERIX_ASSIGN_OR_RETURN(st.index_kind, ExpectName());
    if (st.index_kind == "ngram") {
      ASTERIX_RETURN_NOT_OK(ExpectPunct("("));
      if (Peek().kind != TokenKind::kInteger) return Expect("gram length");
      st.gram_length = static_cast<size_t>(Advance().int_value);
      ASTERIX_RETURN_NOT_OK(ExpectPunct(")"));
    }
  }
  return st;
}

Result<Statement> Parser::ParseCreateFunction() {
  ASTERIX_RETURN_NOT_OK(ExpectIdent("function"));
  Statement st;
  st.kind = Statement::Kind::kCreateFunction;
  st.dataverse = ctx_->dataverse;
  ASTERIX_ASSIGN_OR_RETURN(st.name, ExpectName());
  ASTERIX_RETURN_NOT_OK(ExpectPunct("("));
  if (!PeekPunct(")")) {
    while (true) {
      ASTERIX_ASSIGN_OR_RETURN(std::string p, ExpectVariable());
      st.function_params.push_back(std::move(p));
      if (!ConsumePunct(",")) break;
    }
  }
  ASTERIX_RETURN_NOT_OK(ExpectPunct(")"));
  if (!PeekPunct("{")) return Expect("'{' starting function body");
  // Capture the raw body text between balanced braces.
  size_t open_offset = Peek().offset;
  int depth = 0;
  size_t close_offset = std::string::npos;
  while (!AtEnd()) {
    const Token& t = Advance();
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "{") depth += 1;
      else if (t.text == "{{") depth += 2;
      else if (t.text == "}") depth -= 1;
      else if (t.text == "}}") depth -= 2;
      if (depth == 0) {
        close_offset = t.offset;
        break;
      }
    }
  }
  if (close_offset == std::string::npos) {
    return Status::ParseError("unterminated function body for " + st.name);
  }
  st.function_body = text_.substr(open_offset + 1, close_offset - open_offset - 1);
  return st;
}

Result<Statement> Parser::ParseCreateFeed() {
  ASTERIX_RETURN_NOT_OK(ExpectIdent("feed"));
  Statement st;
  st.kind = Statement::Kind::kCreateFeed;
  st.dataverse = ctx_->dataverse;
  ASTERIX_ASSIGN_OR_RETURN(st.name, ExpectName());
  ASTERIX_RETURN_NOT_OK(ExpectIdent("using"));
  ASTERIX_ASSIGN_OR_RETURN(st.adaptor, ExpectName());
  ASTERIX_RETURN_NOT_OK(ParseAdaptorParams(&st.adaptor_params));
  if (ConsumeIdent("apply")) {
    ASTERIX_RETURN_NOT_OK(ExpectIdent("function"));
    ASTERIX_ASSIGN_OR_RETURN(st.feed_function, ExpectName());
  }
  return st;
}

Status Parser::ParseAdaptorParams(std::map<std::string, std::string>* out) {
  ASTERIX_RETURN_NOT_OK(ExpectPunct("("));
  if (ConsumePunct(")")) return Status::OK();
  while (true) {
    ASTERIX_RETURN_NOT_OK(ExpectPunct("("));
    ASTERIX_ASSIGN_OR_RETURN(std::string key, ExpectString());
    ASTERIX_RETURN_NOT_OK(ExpectPunct("="));
    ASTERIX_ASSIGN_OR_RETURN(std::string value, ExpectString());
    (*out)[key] = value;
    ASTERIX_RETURN_NOT_OK(ExpectPunct(")"));
    if (!ConsumePunct(",")) break;
  }
  return ExpectPunct(")");
}

Result<Statement> Parser::ParseInsert() {
  ASTERIX_RETURN_NOT_OK(ExpectIdent("insert"));
  ASTERIX_RETURN_NOT_OK(ExpectIdent("into"));
  ASTERIX_RETURN_NOT_OK(ExpectIdent("dataset"));
  Statement st;
  st.kind = Statement::Kind::kInsert;
  st.dataverse = ctx_->dataverse;
  ASTERIX_ASSIGN_OR_RETURN(std::string ds, ParseQualifiedName());
  st.dataset = Qualify(ds);
  ASTERIX_RETURN_NOT_OK(ExpectPunct("("));
  ASTERIX_ASSIGN_OR_RETURN(st.expr, ParseExpr());
  ASTERIX_RETURN_NOT_OK(ExpectPunct(")"));
  return st;
}

Result<Statement> Parser::ParseDelete() {
  ASTERIX_RETURN_NOT_OK(ExpectIdent("delete"));
  Statement st;
  st.kind = Statement::Kind::kDelete;
  st.dataverse = ctx_->dataverse;
  ASTERIX_ASSIGN_OR_RETURN(st.var, ExpectVariable());
  ASTERIX_RETURN_NOT_OK(ExpectIdent("from"));
  ASTERIX_RETURN_NOT_OK(ExpectIdent("dataset"));
  ASTERIX_ASSIGN_OR_RETURN(std::string ds, ParseQualifiedName());
  st.dataset = Qualify(ds);
  if (ConsumeIdent("where")) {
    ASTERIX_ASSIGN_OR_RETURN(st.expr, ParseExpr());
  }
  return st;
}

Result<Statement> Parser::ParseLoad() {
  ASTERIX_RETURN_NOT_OK(ExpectIdent("load"));
  ASTERIX_RETURN_NOT_OK(ExpectIdent("dataset"));
  Statement st;
  st.kind = Statement::Kind::kLoad;
  st.dataverse = ctx_->dataverse;
  ASTERIX_ASSIGN_OR_RETURN(std::string ds, ParseQualifiedName());
  st.dataset = Qualify(ds);
  ASTERIX_RETURN_NOT_OK(ExpectIdent("using"));
  ASTERIX_ASSIGN_OR_RETURN(st.adaptor, ExpectName());
  ASTERIX_RETURN_NOT_OK(ParseAdaptorParams(&st.adaptor_params));
  return st;
}

// ---------------------------------------------------------------------------
// Expression level
// ---------------------------------------------------------------------------

Result<ExprPtr> Parser::ParseExpr() {
  if (PeekIdent("for") || PeekIdent("let")) return ParseFlwor();
  if (PeekIdent("some")) {
    Advance();
    return ParseQuantified(false);
  }
  if (PeekIdent("every")) {
    Advance();
    return ParseQuantified(true);
  }
  if (PeekIdent("if")) {
    Advance();
    ASTERIX_RETURN_NOT_OK(ExpectPunct("("));
    ASTERIX_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    ASTERIX_RETURN_NOT_OK(ExpectPunct(")"));
    ASTERIX_RETURN_NOT_OK(ExpectIdent("then"));
    ASTERIX_ASSIGN_OR_RETURN(ExprPtr then_e, ParseExpr());
    ASTERIX_RETURN_NOT_OK(ExpectIdent("else"));
    ASTERIX_ASSIGN_OR_RETURN(ExprPtr else_e, ParseExpr());
    // if(c, t, e) via switch-like builtin lowering: (c and t) or (not c and e)
    // loses type generality, so use a dedicated call evaluated lazily...
    // Implemented via nested conditional on boolean: use a subexpressionless
    // encoding with Quantified would be obscure. Add a builtin-like ternary
    // using kIfMissingOrNull is wrong; introduce Call("if-then-else").
    return Expr::Call("if-then-else", {cond, then_e, else_e});
  }
  return ParseOr();
}

Result<ExprPtr> Parser::ParseOr() {
  ASTERIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (PeekIdent("or")) {
    Advance();
    ASTERIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = Expr::Or(lhs, rhs);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  ASTERIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
  while (PeekIdent("and")) {
    Advance();
    ASTERIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
    lhs = Expr::And(lhs, rhs);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseComparison() {
  ASTERIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  // Hints may precede the comparison operator (Query 14).
  if (Peek().kind == TokenKind::kHint) {
    if (!hint_stack_.empty()) hint_stack_.back().insert(Peek().text);
    Advance();
  }
  static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">=", "~="};
  for (const char* op : kOps) {
    if (PeekPunct(op)) {
      Advance();
      ASTERIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      if (std::string(op) == "~=") return MakeFuzzyEquals(lhs, rhs);
      return Expr::Compare(op, lhs, rhs);
    }
  }
  return lhs;
}

Result<ExprPtr> Parser::MakeFuzzyEquals(ExprPtr lhs, ExprPtr rhs) {
  // `set simfunction`/`set simthreshold` choose the semantics (paper §3,
  // Queries 6 and 13).
  if (ctx_->sim_function == "edit-distance") {
    int64_t k = static_cast<int64_t>(ctx_->sim_threshold);
    auto check = Expr::Call(
        "edit-distance-check",
        {lhs, rhs, Expr::Const(Value::Int64(k))});
    return Expr::IndexAccess(check, Expr::Const(Value::Int64(0)));
  }
  if (ctx_->sim_function == "jaccard") {
    return Expr::Compare(
        ">=", Expr::Call("similarity-jaccard", {lhs, rhs}),
        Expr::Const(Value::Double(ctx_->sim_threshold)));
  }
  return Status::InvalidArgument("unknown simfunction: " + ctx_->sim_function);
}

Result<ExprPtr> Parser::ParseAdditive() {
  ASTERIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (PeekPunct("+") || PeekPunct("-")) {
    std::string op = Advance().text;
    ASTERIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = Expr::Arith(op, {lhs, rhs});
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  ASTERIX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (PeekPunct("*") || PeekPunct("/") || PeekPunct("%") ||
         PeekIdent("idiv")) {
    std::string op = Advance().text;
    if (op == "idiv") op = "%";  // approximate: integer ops via modulo family
    ASTERIX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = Expr::Arith(op, {lhs, rhs});
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (ConsumePunct("-")) {
    ASTERIX_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
    return Expr::Arith("neg", {e});
  }
  if (ConsumePunct("+")) return ParseUnary();
  if (PeekIdent("not") && PeekPunct("(", 1)) {
    // `not(...)` is also a builtin; both spellings accepted.
    Advance();
    ASTERIX_RETURN_NOT_OK(ExpectPunct("("));
    ASTERIX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    ASTERIX_RETURN_NOT_OK(ExpectPunct(")"));
    return Expr::Not(e);
  }
  return ParsePostfix();
}

Result<ExprPtr> Parser::ParsePostfix() {
  ASTERIX_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
  while (true) {
    if (PeekPunct(".")) {
      Advance();
      ASTERIX_ASSIGN_OR_RETURN(std::string field, ExpectName());
      e = Expr::FieldAccess(e, field);
      continue;
    }
    if (PeekPunct("[")) {
      Advance();
      ASTERIX_ASSIGN_OR_RETURN(ExprPtr idx, ParseExpr());
      ASTERIX_RETURN_NOT_OK(ExpectPunct("]"));
      e = Expr::IndexAccess(e, idx);
      continue;
    }
    break;
  }
  return e;
}

Result<ExprPtr> Parser::ParseQuantified(bool is_every) {
  ASTERIX_ASSIGN_OR_RETURN(std::string var, ExpectVariable());
  ASTERIX_RETURN_NOT_OK(ExpectIdent("in"));
  ASTERIX_ASSIGN_OR_RETURN(ExprPtr coll, ParseExpr());
  ASTERIX_RETURN_NOT_OK(ExpectIdent("satisfies"));
  ASTERIX_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
  return Expr::Quantified(is_every, var, coll, pred);
}

Result<ExprPtr> Parser::ParseFunctionCall(const std::string& name) {
  std::vector<ExprPtr> args;
  if (!PeekPunct(")")) {
    while (true) {
      ASTERIX_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
      args.push_back(std::move(a));
      if (!ConsumePunct(",")) break;
    }
  }
  ASTERIX_RETURN_NOT_OK(ExpectPunct(")"));

  // UDF? Inline its body with parameters substituted (views with params).
  if (ctx_->find_function) {
    const FunctionDef* def =
        ctx_->find_function(ctx_->dataverse, name, args.size());
    if (def) {
      ParserContext inner_ctx = *ctx_;
      inner_ctx.dataverse = def->dataverse;
      Parser inner(def->body, &inner_ctx);
      ASTERIX_RETURN_NOT_OK(inner.Init());
      auto body_r = inner.ParseSingleExpression();
      if (!body_r.ok()) return body_r.status();
      std::map<std::string, ExprPtr> subs;
      for (size_t i = 0; i < def->params.size(); ++i) {
        subs[def->params[i]] = args[i];
      }
      return SubstituteInExpr(body_r.value(), subs);
    }
  }
  if (!functions::LookupBuiltin(name) && name != "dataset" &&
      name != "if-then-else" && name != "get-gram-tokens") {
    return Status::ParseError("unknown function: " + name);
  }
  return Expr::Call(name, std::move(args));
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kString: {
      Advance();
      return Expr::Const(Value::String(t.text));
    }
    case TokenKind::kInteger: {
      Advance();
      return Expr::Const(Value::Int64(t.int_value));
    }
    case TokenKind::kDouble: {
      Advance();
      return Expr::Const(Value::Double(t.double_value));
    }
    case TokenKind::kVariable: {
      Advance();
      return Expr::Var(t.text);
    }
    case TokenKind::kHint: {
      // Stray hints (e.g. before a predicate) are recorded and skipped.
      if (!hint_stack_.empty()) hint_stack_.back().insert(t.text);
      Advance();
      return ParsePrimary();
    }
    default:
      break;
  }
  if (ConsumePunct("(")) {
    ASTERIX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    ASTERIX_RETURN_NOT_OK(ExpectPunct(")"));
    return e;
  }
  if (PeekPunct("{{")) {
    Advance();
    std::vector<ExprPtr> items;
    if (!PeekPunct("}}")) {
      while (true) {
        ASTERIX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        items.push_back(std::move(e));
        if (!ConsumePunct(",")) break;
      }
    }
    ASTERIX_RETURN_NOT_OK(ExpectPunct("}}"));
    return Expr::BagCtor(std::move(items));
  }
  if (ConsumePunct("{")) {
    std::vector<std::string> names;
    std::vector<ExprPtr> values;
    if (!PeekPunct("}")) {
      while (true) {
        std::string fname;
        if (Peek().kind == TokenKind::kString) {
          fname = Advance().text;
        } else if (Peek().kind == TokenKind::kIdent) {
          fname = Advance().text;
        } else {
          return Expect("field name");
        }
        ASTERIX_RETURN_NOT_OK(ExpectPunct(":"));
        ASTERIX_ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
        names.push_back(std::move(fname));
        values.push_back(std::move(v));
        if (!ConsumePunct(",")) break;
      }
    }
    ASTERIX_RETURN_NOT_OK(ExpectPunct("}"));
    return Expr::RecordCtor(std::move(names), std::move(values));
  }
  if (ConsumePunct("[")) {
    std::vector<ExprPtr> items;
    if (!PeekPunct("]")) {
      while (true) {
        ASTERIX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        items.push_back(std::move(e));
        if (!ConsumePunct(",")) break;
      }
    }
    ASTERIX_RETURN_NOT_OK(ExpectPunct("]"));
    return Expr::ListCtor(std::move(items));
  }
  if (Peek().kind == TokenKind::kIdent) {
    std::string name = Peek().text;
    if (name == "true") {
      Advance();
      return Expr::Const(Value::Boolean(true));
    }
    if (name == "false") {
      Advance();
      return Expr::Const(Value::Boolean(false));
    }
    if (name == "null") {
      Advance();
      return Expr::Const(Value::Null());
    }
    if (name == "missing") {
      Advance();
      return Expr::Const(Value::Missing());
    }
    if (name == "dataset") {
      Advance();
      ASTERIX_ASSIGN_OR_RETURN(std::string dsname, ParseQualifiedName());
      return Expr::Call("dataset",
                        {Expr::Const(Value::String(Qualify(dsname)))});
    }
    Advance();
    if (ConsumePunct("(")) return ParseFunctionCall(name);
    return Status::ParseError("unexpected identifier '" + name + "' at line " +
                              std::to_string(t.line));
  }
  return Expect("expression");
}

Result<ExprPtr> Parser::ParseFlwor() {
  hint_stack_.emplace_back();
  LogicalOpPtr current = MakeOp(LogicalOp::Kind::kEmptySource);
  bool saw_clause = false;
  bool grouped = false;

  while (true) {
    if (ConsumeIdent("for")) {
      saw_clause = true;
      while (true) {
        ASTERIX_ASSIGN_OR_RETURN(std::string var, ExpectVariable());
        std::string pos_var;
        if (ConsumeIdent("at")) {
          ASTERIX_ASSIGN_OR_RETURN(pos_var, ExpectVariable());
        }
        ASTERIX_RETURN_NOT_OK(ExpectIdent("in"));
        ASTERIX_ASSIGN_OR_RETURN(ExprPtr coll, ParseExpr());
        bool is_dataset_ref = coll->kind == Expr::Kind::kCall &&
                              coll->fn == "dataset" && pos_var.empty();
        if (is_dataset_ref) {
          auto scan = MakeOp(LogicalOp::Kind::kDataSourceScan);
          scan->dataset = coll->args[0]->constant.AsString();
          scan->var = var;
          if (current->kind == LogicalOp::Kind::kEmptySource) {
            current = scan;
          } else {
            auto join = MakeOp(LogicalOp::Kind::kJoin);
            join->inputs = {current, scan};
            current = join;
          }
        } else {
          auto unnest = MakeOp(LogicalOp::Kind::kUnnest);
          unnest->inputs = {current};
          unnest->expr = coll;
          unnest->var = var;
          unnest->pos_var = pos_var;
          current = unnest;
        }
        if (!ConsumePunct(",")) break;
      }
      continue;
    }
    if (ConsumeIdent("let")) {
      saw_clause = true;
      while (true) {
        ASTERIX_ASSIGN_OR_RETURN(std::string var, ExpectVariable());
        ASTERIX_RETURN_NOT_OK(ExpectPunct(":="));
        ASTERIX_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        auto assign = MakeOp(LogicalOp::Kind::kAssign);
        assign->inputs = {current};
        assign->var = var;
        assign->expr = e;
        current = assign;
        if (!ConsumePunct(",")) break;
      }
      continue;
    }
    if (ConsumeIdent("where")) {
      saw_clause = true;
      bool skip_index = false;
      if (Peek().kind == TokenKind::kHint) {
        if (Peek().text == "skip-index") skip_index = true;
        hint_stack_.back().insert(Peek().text);
        Advance();
      }
      ASTERIX_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      auto select = MakeOp(LogicalOp::Kind::kSelect);
      select->inputs = {current};
      select->expr = cond;
      select->skip_index = skip_index;
      current = select;
      continue;
    }
    if (PeekIdent("group") && PeekIdent("by", 1)) {
      Advance();
      Advance();
      saw_clause = true;
      grouped = true;
      auto group = MakeOp(LogicalOp::Kind::kGroupBy);
      group->inputs = {current};
      while (true) {
        if (Peek().kind != TokenKind::kVariable) return Expect("group key");
        std::string key_var = Advance().text;
        ExprPtr key_expr;
        if (ConsumePunct(":=")) {
          ASTERIX_ASSIGN_OR_RETURN(key_expr, ParseExpr());
        } else {
          key_expr = Expr::Var(key_var);
        }
        group->group_keys.emplace_back(key_var, key_expr);
        if (!ConsumePunct(",")) break;
      }
      ASTERIX_RETURN_NOT_OK(ExpectIdent("with"));
      while (true) {
        ASTERIX_ASSIGN_OR_RETURN(std::string wv, ExpectVariable());
        group->with_vars.emplace_back(wv, wv);
        if (!ConsumePunct(",")) break;
      }
      current = group;
      continue;
    }
    if (PeekIdent("order") && PeekIdent("by", 1)) {
      Advance();
      Advance();
      saw_clause = true;
      auto order = MakeOp(LogicalOp::Kind::kOrder);
      order->inputs = {current};
      while (true) {
        ASTERIX_ASSIGN_OR_RETURN(ExprPtr key, ParseExpr());
        bool asc = true;
        if (ConsumeIdent("desc")) asc = false;
        else ConsumeIdent("asc");
        order->order_keys.emplace_back(key, asc);
        if (!ConsumePunct(",")) break;
      }
      current = order;
      continue;
    }
    if (ConsumeIdent("limit")) {
      saw_clause = true;
      auto lim = MakeOp(LogicalOp::Kind::kLimit);
      lim->inputs = {current};
      if (Peek().kind != TokenKind::kInteger) return Expect("limit count");
      lim->limit = Advance().int_value;
      if (ConsumeIdent("offset")) {
        if (Peek().kind != TokenKind::kInteger) return Expect("offset count");
        lim->offset = Advance().int_value;
      }
      current = lim;
      continue;
    }
    if (ConsumeIdent("distinct")) {
      saw_clause = true;
      auto d = MakeOp(LogicalOp::Kind::kDistinct);
      d->inputs = {current};
      // `distinct by e, ...` dedupes on the given expressions; bare
      // `distinct` dedupes the whole current binding (order_keys doubles as
      // the distinct-key list; the bool is unused).
      if (ConsumeIdent("by")) {
        while (true) {
          ASTERIX_ASSIGN_OR_RETURN(ExprPtr key, ParseExpr());
          d->order_keys.emplace_back(key, true);
          if (!ConsumePunct(",")) break;
        }
      }
      current = d;
      continue;
    }
    break;
  }
  (void)grouped;

  if (!saw_clause) return Expect("FLWOR clause");
  ASTERIX_RETURN_NOT_OK(ExpectIdent("return"));
  ASTERIX_ASSIGN_OR_RETURN(ExprPtr ret, ParseExpr());

  auto dist = MakeOp(LogicalOp::Kind::kDistribute);
  dist->inputs = {current};
  dist->expr = ret;

  // Apply any hints seen in this FLWOR to its join operators.
  std::set<std::string> hints = std::move(hint_stack_.back());
  hint_stack_.pop_back();
  if (hints.count("indexnl") || hints.count("hash")) {
    std::function<void(const LogicalOpPtr&)> apply = [&](const LogicalOpPtr& op) {
      if (op->kind == LogicalOp::Kind::kJoin) {
        op->join_hint = hints.count("indexnl")
                            ? algebricks::JoinHint::kIndexNestedLoop
                            : algebricks::JoinHint::kHash;
      }
      for (const auto& in : op->inputs) apply(in);
    };
    apply(dist);
  }
  return Expr::Subplan(dist);
}

}  // namespace

Result<std::vector<Statement>> ParseAql(const std::string& text,
                                        ParserContext* ctx) {
  Parser parser(text, ctx);
  ASTERIX_RETURN_NOT_OK(parser.Init());
  return parser.ParseScript();
}

Result<ExprPtr> ParseAqlExpression(const std::string& text, ParserContext* ctx) {
  Parser parser(text, ctx);
  ASTERIX_RETURN_NOT_OK(parser.Init());
  return parser.ParseSingleExpression();
}

}  // namespace aql
}  // namespace asterix
