#ifndef ASTERIX_AQL_PARSER_H_
#define ASTERIX_AQL_PARSER_H_

#include <functional>
#include <string>
#include <vector>

#include "aql/ast.h"
#include "aql/lexer.h"

namespace asterix {
namespace aql {

/// A stored user-defined function (AQL UDFs are "views with parameters").
/// Bodies are kept as source text and re-parsed/inlined at call sites.
struct FunctionDef {
  std::string dataverse;
  std::string name;
  std::vector<std::string> params;
  std::string body;
};

/// Session state threaded through parsing: the active dataverse, fuzzy
/// matching semantics (`set simfunction/simthreshold`), and UDF lookup.
struct ParserContext {
  std::string dataverse = "Default";
  std::string sim_function = "jaccard";
  double sim_threshold = 0.5;
  std::function<const FunctionDef*(const std::string& dataverse,
                                   const std::string& name, size_t arity)>
      find_function;
};

/// Parses an AQL script (one or more statements). Queries come back as
/// Algebricks logical plans; `set` and `use` statements mutate `ctx` as
/// they are encountered, matching AQL's statement-prologue semantics.
Result<std::vector<Statement>> ParseAql(const std::string& text,
                                        ParserContext* ctx);

/// Parses a single standalone AQL expression (used to inline UDF bodies and
/// by tests).
Result<algebricks::ExprPtr> ParseAqlExpression(const std::string& text,
                                               ParserContext* ctx);

}  // namespace aql
}  // namespace asterix

#endif  // ASTERIX_AQL_PARSER_H_
