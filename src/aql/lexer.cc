#include "aql/lexer.h"

#include <cctype>
#include <cstring>
#include <cstdlib>

namespace asterix {
namespace aql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  auto fail = [&](const std::string& what) {
    return Status::ParseError(what + " at line " + std::to_string(line));
  };

  while (i < text.size()) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '-') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      bool hint = i + 2 < text.size() && text[i + 2] == '+';
      size_t start = i + (hint ? 3 : 2);
      size_t end = text.find("*/", start);
      if (end == std::string::npos) return fail("unterminated comment");
      for (size_t j = i; j < end; ++j) {
        if (text[j] == '\n') ++line;
      }
      if (hint) {
        Token t;
        t.kind = TokenKind::kHint;
        t.text = text.substr(start, end - start);
        // Trim whitespace.
        while (!t.text.empty() && std::isspace(static_cast<unsigned char>(t.text.back()))) {
          t.text.pop_back();
        }
        size_t b = 0;
        while (b < t.text.size() && std::isspace(static_cast<unsigned char>(t.text[b]))) ++b;
        t.text = t.text.substr(b);
        t.offset = i;
        t.line = line;
        tokens.push_back(std::move(t));
      }
      i = end + 2;
      continue;
    }
    Token t;
    t.offset = i;
    t.line = line;
    // Strings.
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string s;
      while (i < text.size() && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < text.size()) {
          ++i;
          switch (text[i]) {
            case 'n': s.push_back('\n'); break;
            case 't': s.push_back('\t'); break;
            case 'r': s.push_back('\r'); break;
            default: s.push_back(text[i]);
          }
        } else {
          if (text[i] == '\n') ++line;
          s.push_back(text[i]);
        }
        ++i;
      }
      if (i >= text.size()) return fail("unterminated string");
      ++i;
      t.kind = TokenKind::kString;
      t.text = std::move(s);
      tokens.push_back(std::move(t));
      continue;
    }
    // Variables.
    if (c == '$') {
      ++i;
      std::string name;
      while (i < text.size() &&
             (IsIdentChar(text[i]) ||
              (text[i] == '-' && i + 1 < text.size() && IsIdentStart(text[i + 1])))) {
        name.push_back(text[i]);
        ++i;
      }
      if (name.empty()) return fail("empty variable name");
      t.kind = TokenKind::kVariable;
      t.text = std::move(name);
      tokens.push_back(std::move(t));
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      if (i < text.size() && text[i] == '.' && i + 1 < text.size() &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        is_double = true;
        ++i;
        while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < text.size() && (text[i] == '+' || text[i] == '-')) ++i;
        while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      std::string num = text.substr(start, i - start);
      if (is_double) {
        t.kind = TokenKind::kDouble;
        t.double_value = std::strtod(num.c_str(), nullptr);
      } else {
        t.kind = TokenKind::kInteger;
        t.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      t.text = std::move(num);
      tokens.push_back(std::move(t));
      continue;
    }
    // Identifiers/keywords. AQL identifiers may contain '-' when followed by
    // a letter (e.g. author-id); `a - b` still lexes as subtraction.
    if (IsIdentStart(c)) {
      std::string name;
      while (i < text.size()) {
        if (IsIdentChar(text[i])) {
          name.push_back(text[i]);
          ++i;
        } else if (text[i] == '-' && i + 1 < text.size() &&
                   IsIdentStart(text[i + 1])) {
          name.push_back('-');
          ++i;
        } else {
          break;
        }
      }
      t.kind = TokenKind::kIdent;
      t.text = std::move(name);
      tokens.push_back(std::move(t));
      continue;
    }
    // Multi-char punctuation.
    auto try_punct = [&](const char* p) {
      size_t n = std::char_traits<char>::length(p);
      if (text.compare(i, n, p) == 0) {
        t.kind = TokenKind::kPunct;
        t.text = p;
        i += n;
        tokens.push_back(t);
        return true;
      }
      return false;
    };
    if (try_punct("{{") || try_punct("}}") || try_punct(":=") ||
        try_punct("~=") || try_punct("!=") || try_punct("<=") ||
        try_punct(">=")) {
      continue;
    }
    static const char kSingles[] = "{}[]()<>=+-*/%.,;:?!";
    if (std::strchr(kSingles, c) != nullptr) {
      t.kind = TokenKind::kPunct;
      t.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(t));
      continue;
    }
    return fail(std::string("unexpected character '") + c + "'");
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = text.size();
  end.line = line;
  tokens.push_back(end);
  return tokens;
}

}  // namespace aql
}  // namespace asterix
