#ifndef ASTERIX_AQL_LEXER_H_
#define ASTERIX_AQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace asterix {
namespace aql {

enum class TokenKind {
  kEnd,
  kIdent,      // identifiers & keywords (AQL allows '-' inside names)
  kVariable,   // $name
  kString,     // 'x' or "x"
  kInteger,
  kDouble,
  kPunct,      // operators & punctuation, in `text`
  kHint,       // /*+ ... */ contents
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // ident name / punct / string payload / hint body
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;   // byte offset, for error messages
  int line = 1;
};

/// Tokenizes AQL text. `--` line comments and `/* */` block comments are
/// skipped; `/*+ hint */` comments become kHint tokens so the parser can
/// attach them to the following predicate (paper Query 14).
Result<std::vector<Token>> Tokenize(const std::string& text);

}  // namespace aql
}  // namespace asterix

#endif  // ASTERIX_AQL_LEXER_H_
