// asterix_top: a `top`-style console view of a live AsterixInstance. Boots
// an embedded instance, seeds a dataset, runs a handful of background
// clients through Serve(), and every refresh prints what the continuous-
// monitoring subsystem sees: overall health and per-condition states,
// windowed per-second rates from the sampler ring, executor-pool occupancy,
// top queries by CPU, and the cumulative per-client resource table.
//
//   ./tools/asterix_top               # 10 refreshes, 1s apart
//   ASTERIX_TOP_ITERS=30 ./tools/asterix_top
//
// The point of the tool is the read side: everything printed comes straight
// from the sampler/watchdog/ledger handles — the same data StatusJson()
// serves — demonstrating trend watching without parsing JSON.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/asterix.h"
#include "common/env.h"
#include "common/ledger.h"

namespace {

using namespace asterix;

int64_t EnvInt(const char* name, int64_t fallback) {
  if (const char* v = std::getenv(name)) return atoll(v);
  return fallback;
}

int Main() {
  const int iters = static_cast<int>(EnvInt("ASTERIX_TOP_ITERS", 10));
  const int clients = static_cast<int>(EnvInt("ASTERIX_TOP_CLIENTS", 4));

  std::string dir = env::NewScratchDir("asterix-top");
  api::InstanceConfig config;
  config.base_dir = dir;
  config.cluster.job_startup_us = 0;
  config.cluster.cluster_memory_pool_bytes = 32ull << 20;
  config.monitor_interval_ms = 100;
  api::AsterixInstance db(config);
  if (!db.Boot().ok()) return 1;
  auto ddl = db.Execute(R"aql(
create dataverse Top; use dataverse Top;
create type T as { id: int64, v: int64, grp: int64 }
create dataset D(T) primary key id;
)aql");
  if (!ddl.ok()) {
    std::fprintf(stderr, "ddl: %s\n", ddl.status().ToString().c_str());
    return 1;
  }
  std::vector<adm::Value> rows;
  for (int64_t i = 0; i < 4000; ++i) {
    rows.push_back(adm::RecordBuilder()
                       .Add("id", adm::Value::Int64(i))
                       .Add("v", adm::Value::Int64(i % 97))
                       .Add("grp", adm::Value::Int64(i % 10))
                       .Build());
  }
  if (!db.FindDataset("Top.D")->LoadBulk(rows).ok()) return 1;

  const std::vector<std::string> reads = {
      "count(for $d in dataset Top.D return $d)",
      "for $d in dataset Top.D where $d.grp = 3 return $d.v",
      "count(for $d in dataset Top.D where $d.v < 10 return $d)",
  };
  std::atomic<bool> stop{false};
  std::vector<std::thread> load;
  for (int c = 0; c < clients; ++c) {
    load.emplace_back([&, c] {
      api::ServeOptions opts;
      opts.client_id = "top-client-" + std::to_string(c);
      uint64_t rng = 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(c + 1);
      uint64_t seq = 0;
      while (!stop.load(std::memory_order_acquire)) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        if ((rng >> 33) % 4 == 0) {
          int64_t id = 100000 + static_cast<int64_t>(c) * 100000 +
                       static_cast<int64_t>(seq++);
          (void)db.Serve("insert into dataset Top.D ([{ \"id\": " +
                             std::to_string(id) + ", \"v\": 1, \"grp\": 1 }]);",
                         opts);
        } else {
          (void)db.Serve(reads[(rng >> 40) % reads.size()], opts);
        }
      }
    });
  }

  const uint64_t window_us = 3'000'000;
  for (int it = 0; it < iters; ++it) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    const monitor::TimeSeriesRing& ring = db.sampler()->ring();

    std::printf("\n=== asterix_top (refresh %d/%d) ===\n", it + 1, iters);
    std::printf("health: %s\n",
                server::HealthStateName(db.watchdog()->overall()));
    for (const auto& c : db.watchdog()->Conditions()) {
      if (c.state == server::HealthState::kOk) continue;
      std::printf("  [%s] %s: %s\n", server::HealthStateName(c.state),
                  c.name.c_str(), c.detail.c_str());
    }
    std::printf("rates (last %.1fs): %.0f q/s, %.0f jobs/s, "
                "%.0f Ktuples/s, cpu %.0f ms/s, cache hits %.0f/s\n",
                static_cast<double>(ring.CoveredWindowUs(window_us)) / 1e6,
                ring.WindowedRate("api.queries", window_us),
                ring.WindowedRate("hyracks.jobs", window_us),
                ring.WindowedRate("hyracks.connector_tuples", window_us) / 1e3,
                ring.WindowedRate("hyracks.cpu_us", window_us) / 1e3,
                ring.WindowedRate("server.cache.hits", window_us));
    std::printf("pool: %lld/%lld busy, %lld queued\n",
                static_cast<long long>(ring.LatestValue(
                    "hyracks.pool.busy_threads")),
                static_cast<long long>(ring.LatestValue(
                    "hyracks.pool_threads")),
                static_cast<long long>(ring.LatestValue(
                    "hyracks.pool.queued_tasks")));

    std::printf("top queries by cpu:\n");
    for (const auto& q : ledger::ResourceLedger::Default().TopByCpu(3)) {
      std::printf("  #%llu [%s] cpu=%lluus bytes=%llu %s%.48s\n",
                  static_cast<unsigned long long>(q.query_id),
                  q.client.c_str(),
                  static_cast<unsigned long long>(q.cpu_us),
                  static_cast<unsigned long long>(q.total_bytes()),
                  q.finished ? "" : "(live) ", q.statement.c_str());
    }
    std::printf("clients:\n");
    for (const auto& c : ledger::ResourceLedger::Default().Clients()) {
      std::printf("  %-16s q=%llu hits=%llu coalesced=%llu cpu=%llums\n",
                  c.client.c_str(),
                  static_cast<unsigned long long>(c.queries),
                  static_cast<unsigned long long>(c.cache_hits),
                  static_cast<unsigned long long>(c.coalesced),
                  static_cast<unsigned long long>(c.cpu_us / 1000));
    }
  }

  stop = true;
  for (auto& t : load) t.join();
  env::RemoveAll(dir);
  return 0;
}

}  // namespace

int main() { return Main(); }
