# Empty compiler generated dependencies file for lsm_property_test.
# This may be replaced when dependencies are built.
