file(REMOVE_RECURSE
  "CMakeFiles/lsm_property_test.dir/lsm_property_test.cc.o"
  "CMakeFiles/lsm_property_test.dir/lsm_property_test.cc.o.d"
  "lsm_property_test"
  "lsm_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
