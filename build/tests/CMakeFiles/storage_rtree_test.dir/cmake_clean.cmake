file(REMOVE_RECURSE
  "CMakeFiles/storage_rtree_test.dir/storage_rtree_test.cc.o"
  "CMakeFiles/storage_rtree_test.dir/storage_rtree_test.cc.o.d"
  "storage_rtree_test"
  "storage_rtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_rtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
