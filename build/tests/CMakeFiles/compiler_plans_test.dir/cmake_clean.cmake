file(REMOVE_RECURSE
  "CMakeFiles/compiler_plans_test.dir/compiler_plans_test.cc.o"
  "CMakeFiles/compiler_plans_test.dir/compiler_plans_test.cc.o.d"
  "compiler_plans_test"
  "compiler_plans_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_plans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
