# Empty dependencies file for compiler_plans_test.
# This may be replaced when dependencies are built.
