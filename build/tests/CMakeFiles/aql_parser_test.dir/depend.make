# Empty dependencies file for aql_parser_test.
# This may be replaced when dependencies are built.
