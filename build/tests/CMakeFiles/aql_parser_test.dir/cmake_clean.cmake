file(REMOVE_RECURSE
  "CMakeFiles/aql_parser_test.dir/aql_parser_test.cc.o"
  "CMakeFiles/aql_parser_test.dir/aql_parser_test.cc.o.d"
  "aql_parser_test"
  "aql_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
