file(REMOVE_RECURSE
  "CMakeFiles/aql_features_test.dir/aql_features_test.cc.o"
  "CMakeFiles/aql_features_test.dir/aql_features_test.cc.o.d"
  "aql_features_test"
  "aql_features_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aql_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
