file(REMOVE_RECURSE
  "CMakeFiles/aql_end_to_end_test.dir/aql_end_to_end_test.cc.o"
  "CMakeFiles/aql_end_to_end_test.dir/aql_end_to_end_test.cc.o.d"
  "aql_end_to_end_test"
  "aql_end_to_end_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aql_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
