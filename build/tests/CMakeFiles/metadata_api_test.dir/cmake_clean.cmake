file(REMOVE_RECURSE
  "CMakeFiles/metadata_api_test.dir/metadata_api_test.cc.o"
  "CMakeFiles/metadata_api_test.dir/metadata_api_test.cc.o.d"
  "metadata_api_test"
  "metadata_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
