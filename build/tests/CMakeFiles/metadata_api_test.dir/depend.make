# Empty dependencies file for metadata_api_test.
# This may be replaced when dependencies are built.
