file(REMOVE_RECURSE
  "CMakeFiles/hyracks_channel_test.dir/hyracks_channel_test.cc.o"
  "CMakeFiles/hyracks_channel_test.dir/hyracks_channel_test.cc.o.d"
  "hyracks_channel_test"
  "hyracks_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyracks_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
