# Empty dependencies file for hyracks_channel_test.
# This may be replaced when dependencies are built.
