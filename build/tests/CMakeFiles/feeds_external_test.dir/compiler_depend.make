# Empty compiler generated dependencies file for feeds_external_test.
# This may be replaced when dependencies are built.
