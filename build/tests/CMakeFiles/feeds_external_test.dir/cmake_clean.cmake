file(REMOVE_RECURSE
  "CMakeFiles/feeds_external_test.dir/feeds_external_test.cc.o"
  "CMakeFiles/feeds_external_test.dir/feeds_external_test.cc.o.d"
  "feeds_external_test"
  "feeds_external_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feeds_external_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
