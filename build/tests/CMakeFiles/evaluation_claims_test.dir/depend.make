# Empty dependencies file for evaluation_claims_test.
# This may be replaced when dependencies are built.
