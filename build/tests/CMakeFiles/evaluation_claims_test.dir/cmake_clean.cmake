file(REMOVE_RECURSE
  "CMakeFiles/evaluation_claims_test.dir/evaluation_claims_test.cc.o"
  "CMakeFiles/evaluation_claims_test.dir/evaluation_claims_test.cc.o.d"
  "evaluation_claims_test"
  "evaluation_claims_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluation_claims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
