
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/evaluation_claims_test.cc" "tests/CMakeFiles/evaluation_claims_test.dir/evaluation_claims_test.cc.o" "gcc" "tests/CMakeFiles/evaluation_claims_test.dir/evaluation_claims_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/asterix_api.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/asterix_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/asterix_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/aql/CMakeFiles/asterix_aql.dir/DependInfo.cmake"
  "/root/repo/build/src/algebricks/CMakeFiles/asterix_algebricks.dir/DependInfo.cmake"
  "/root/repo/build/src/external/CMakeFiles/asterix_external.dir/DependInfo.cmake"
  "/root/repo/build/src/feeds/CMakeFiles/asterix_feeds.dir/DependInfo.cmake"
  "/root/repo/build/src/hyracks/CMakeFiles/asterix_hyracks.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/asterix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/functions/CMakeFiles/asterix_functions.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/asterix_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/asterix_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/adm/CMakeFiles/asterix_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asterix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
