# Empty dependencies file for dataset_store_test.
# This may be replaced when dependencies are built.
