file(REMOVE_RECURSE
  "CMakeFiles/dataset_store_test.dir/dataset_store_test.cc.o"
  "CMakeFiles/dataset_store_test.dir/dataset_store_test.cc.o.d"
  "dataset_store_test"
  "dataset_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
