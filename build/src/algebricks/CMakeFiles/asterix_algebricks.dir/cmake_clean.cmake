file(REMOVE_RECURSE
  "CMakeFiles/asterix_algebricks.dir/expr.cc.o"
  "CMakeFiles/asterix_algebricks.dir/expr.cc.o.d"
  "CMakeFiles/asterix_algebricks.dir/logical.cc.o"
  "CMakeFiles/asterix_algebricks.dir/logical.cc.o.d"
  "CMakeFiles/asterix_algebricks.dir/physical.cc.o"
  "CMakeFiles/asterix_algebricks.dir/physical.cc.o.d"
  "CMakeFiles/asterix_algebricks.dir/rules.cc.o"
  "CMakeFiles/asterix_algebricks.dir/rules.cc.o.d"
  "libasterix_algebricks.a"
  "libasterix_algebricks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_algebricks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
