file(REMOVE_RECURSE
  "libasterix_algebricks.a"
)
