# Empty compiler generated dependencies file for asterix_algebricks.
# This may be replaced when dependencies are built.
