file(REMOVE_RECURSE
  "CMakeFiles/asterix_txn.dir/lock_manager.cc.o"
  "CMakeFiles/asterix_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/asterix_txn.dir/log_manager.cc.o"
  "CMakeFiles/asterix_txn.dir/log_manager.cc.o.d"
  "CMakeFiles/asterix_txn.dir/txn_manager.cc.o"
  "CMakeFiles/asterix_txn.dir/txn_manager.cc.o.d"
  "libasterix_txn.a"
  "libasterix_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
