# Empty compiler generated dependencies file for asterix_txn.
# This may be replaced when dependencies are built.
