file(REMOVE_RECURSE
  "libasterix_txn.a"
)
