file(REMOVE_RECURSE
  "libasterix_external.a"
)
