file(REMOVE_RECURSE
  "CMakeFiles/asterix_external.dir/external.cc.o"
  "CMakeFiles/asterix_external.dir/external.cc.o.d"
  "libasterix_external.a"
  "libasterix_external.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_external.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
