# Empty dependencies file for asterix_external.
# This may be replaced when dependencies are built.
