file(REMOVE_RECURSE
  "CMakeFiles/asterix_metadata.dir/metadata.cc.o"
  "CMakeFiles/asterix_metadata.dir/metadata.cc.o.d"
  "libasterix_metadata.a"
  "libasterix_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
