file(REMOVE_RECURSE
  "libasterix_metadata.a"
)
