# Empty compiler generated dependencies file for asterix_metadata.
# This may be replaced when dependencies are built.
