file(REMOVE_RECURSE
  "libasterix_common.a"
)
