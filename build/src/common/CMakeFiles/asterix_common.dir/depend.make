# Empty dependencies file for asterix_common.
# This may be replaced when dependencies are built.
