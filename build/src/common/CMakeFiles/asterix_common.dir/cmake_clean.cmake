file(REMOVE_RECURSE
  "CMakeFiles/asterix_common.dir/bytes.cc.o"
  "CMakeFiles/asterix_common.dir/bytes.cc.o.d"
  "CMakeFiles/asterix_common.dir/compress.cc.o"
  "CMakeFiles/asterix_common.dir/compress.cc.o.d"
  "CMakeFiles/asterix_common.dir/env.cc.o"
  "CMakeFiles/asterix_common.dir/env.cc.o.d"
  "CMakeFiles/asterix_common.dir/status.cc.o"
  "CMakeFiles/asterix_common.dir/status.cc.o.d"
  "CMakeFiles/asterix_common.dir/string_utils.cc.o"
  "CMakeFiles/asterix_common.dir/string_utils.cc.o.d"
  "libasterix_common.a"
  "libasterix_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
