file(REMOVE_RECURSE
  "CMakeFiles/asterix_hyracks.dir/cluster.cc.o"
  "CMakeFiles/asterix_hyracks.dir/cluster.cc.o.d"
  "CMakeFiles/asterix_hyracks.dir/job.cc.o"
  "CMakeFiles/asterix_hyracks.dir/job.cc.o.d"
  "CMakeFiles/asterix_hyracks.dir/operators.cc.o"
  "CMakeFiles/asterix_hyracks.dir/operators.cc.o.d"
  "libasterix_hyracks.a"
  "libasterix_hyracks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_hyracks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
