file(REMOVE_RECURSE
  "libasterix_hyracks.a"
)
