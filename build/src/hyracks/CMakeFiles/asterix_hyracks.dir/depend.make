# Empty dependencies file for asterix_hyracks.
# This may be replaced when dependencies are built.
