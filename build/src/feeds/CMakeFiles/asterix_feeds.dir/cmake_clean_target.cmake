file(REMOVE_RECURSE
  "libasterix_feeds.a"
)
