# Empty compiler generated dependencies file for asterix_feeds.
# This may be replaced when dependencies are built.
