file(REMOVE_RECURSE
  "CMakeFiles/asterix_feeds.dir/feeds.cc.o"
  "CMakeFiles/asterix_feeds.dir/feeds.cc.o.d"
  "libasterix_feeds.a"
  "libasterix_feeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_feeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
