file(REMOVE_RECURSE
  "libasterix_api.a"
)
