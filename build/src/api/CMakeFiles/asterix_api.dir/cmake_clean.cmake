file(REMOVE_RECURSE
  "CMakeFiles/asterix_api.dir/asterix.cc.o"
  "CMakeFiles/asterix_api.dir/asterix.cc.o.d"
  "libasterix_api.a"
  "libasterix_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
