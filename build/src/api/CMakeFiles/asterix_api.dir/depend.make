# Empty dependencies file for asterix_api.
# This may be replaced when dependencies are built.
