file(REMOVE_RECURSE
  "libasterix_aql.a"
)
