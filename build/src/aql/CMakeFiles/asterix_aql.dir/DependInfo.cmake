
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aql/lexer.cc" "src/aql/CMakeFiles/asterix_aql.dir/lexer.cc.o" "gcc" "src/aql/CMakeFiles/asterix_aql.dir/lexer.cc.o.d"
  "/root/repo/src/aql/parser.cc" "src/aql/CMakeFiles/asterix_aql.dir/parser.cc.o" "gcc" "src/aql/CMakeFiles/asterix_aql.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebricks/CMakeFiles/asterix_algebricks.dir/DependInfo.cmake"
  "/root/repo/build/src/hyracks/CMakeFiles/asterix_hyracks.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/asterix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/functions/CMakeFiles/asterix_functions.dir/DependInfo.cmake"
  "/root/repo/build/src/adm/CMakeFiles/asterix_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/asterix_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asterix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
