file(REMOVE_RECURSE
  "CMakeFiles/asterix_aql.dir/lexer.cc.o"
  "CMakeFiles/asterix_aql.dir/lexer.cc.o.d"
  "CMakeFiles/asterix_aql.dir/parser.cc.o"
  "CMakeFiles/asterix_aql.dir/parser.cc.o.d"
  "libasterix_aql.a"
  "libasterix_aql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_aql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
