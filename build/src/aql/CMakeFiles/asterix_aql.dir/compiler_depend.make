# Empty compiler generated dependencies file for asterix_aql.
# This may be replaced when dependencies are built.
