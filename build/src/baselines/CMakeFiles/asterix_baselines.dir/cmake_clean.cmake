file(REMOVE_RECURSE
  "CMakeFiles/asterix_baselines.dir/columnstore.cc.o"
  "CMakeFiles/asterix_baselines.dir/columnstore.cc.o.d"
  "CMakeFiles/asterix_baselines.dir/docstore.cc.o"
  "CMakeFiles/asterix_baselines.dir/docstore.cc.o.d"
  "CMakeFiles/asterix_baselines.dir/relstore.cc.o"
  "CMakeFiles/asterix_baselines.dir/relstore.cc.o.d"
  "libasterix_baselines.a"
  "libasterix_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
