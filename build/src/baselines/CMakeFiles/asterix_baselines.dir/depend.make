# Empty dependencies file for asterix_baselines.
# This may be replaced when dependencies are built.
