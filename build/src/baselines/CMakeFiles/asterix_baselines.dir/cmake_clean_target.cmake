file(REMOVE_RECURSE
  "libasterix_baselines.a"
)
