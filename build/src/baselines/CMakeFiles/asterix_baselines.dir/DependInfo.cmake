
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/columnstore.cc" "src/baselines/CMakeFiles/asterix_baselines.dir/columnstore.cc.o" "gcc" "src/baselines/CMakeFiles/asterix_baselines.dir/columnstore.cc.o.d"
  "/root/repo/src/baselines/docstore.cc" "src/baselines/CMakeFiles/asterix_baselines.dir/docstore.cc.o" "gcc" "src/baselines/CMakeFiles/asterix_baselines.dir/docstore.cc.o.d"
  "/root/repo/src/baselines/relstore.cc" "src/baselines/CMakeFiles/asterix_baselines.dir/relstore.cc.o" "gcc" "src/baselines/CMakeFiles/asterix_baselines.dir/relstore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adm/CMakeFiles/asterix_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asterix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
