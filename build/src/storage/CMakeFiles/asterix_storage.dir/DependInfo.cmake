
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/bloom.cc" "src/storage/CMakeFiles/asterix_storage.dir/bloom.cc.o" "gcc" "src/storage/CMakeFiles/asterix_storage.dir/bloom.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/storage/CMakeFiles/asterix_storage.dir/btree.cc.o" "gcc" "src/storage/CMakeFiles/asterix_storage.dir/btree.cc.o.d"
  "/root/repo/src/storage/buffer_cache.cc" "src/storage/CMakeFiles/asterix_storage.dir/buffer_cache.cc.o" "gcc" "src/storage/CMakeFiles/asterix_storage.dir/buffer_cache.cc.o.d"
  "/root/repo/src/storage/dataset_store.cc" "src/storage/CMakeFiles/asterix_storage.dir/dataset_store.cc.o" "gcc" "src/storage/CMakeFiles/asterix_storage.dir/dataset_store.cc.o.d"
  "/root/repo/src/storage/inverted.cc" "src/storage/CMakeFiles/asterix_storage.dir/inverted.cc.o" "gcc" "src/storage/CMakeFiles/asterix_storage.dir/inverted.cc.o.d"
  "/root/repo/src/storage/key.cc" "src/storage/CMakeFiles/asterix_storage.dir/key.cc.o" "gcc" "src/storage/CMakeFiles/asterix_storage.dir/key.cc.o.d"
  "/root/repo/src/storage/lsm.cc" "src/storage/CMakeFiles/asterix_storage.dir/lsm.cc.o" "gcc" "src/storage/CMakeFiles/asterix_storage.dir/lsm.cc.o.d"
  "/root/repo/src/storage/lsm_rtree.cc" "src/storage/CMakeFiles/asterix_storage.dir/lsm_rtree.cc.o" "gcc" "src/storage/CMakeFiles/asterix_storage.dir/lsm_rtree.cc.o.d"
  "/root/repo/src/storage/rtree.cc" "src/storage/CMakeFiles/asterix_storage.dir/rtree.cc.o" "gcc" "src/storage/CMakeFiles/asterix_storage.dir/rtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adm/CMakeFiles/asterix_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/functions/CMakeFiles/asterix_functions.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/asterix_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asterix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
