# Empty dependencies file for asterix_storage.
# This may be replaced when dependencies are built.
