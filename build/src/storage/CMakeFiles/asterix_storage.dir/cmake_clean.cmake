file(REMOVE_RECURSE
  "CMakeFiles/asterix_storage.dir/bloom.cc.o"
  "CMakeFiles/asterix_storage.dir/bloom.cc.o.d"
  "CMakeFiles/asterix_storage.dir/btree.cc.o"
  "CMakeFiles/asterix_storage.dir/btree.cc.o.d"
  "CMakeFiles/asterix_storage.dir/buffer_cache.cc.o"
  "CMakeFiles/asterix_storage.dir/buffer_cache.cc.o.d"
  "CMakeFiles/asterix_storage.dir/dataset_store.cc.o"
  "CMakeFiles/asterix_storage.dir/dataset_store.cc.o.d"
  "CMakeFiles/asterix_storage.dir/inverted.cc.o"
  "CMakeFiles/asterix_storage.dir/inverted.cc.o.d"
  "CMakeFiles/asterix_storage.dir/key.cc.o"
  "CMakeFiles/asterix_storage.dir/key.cc.o.d"
  "CMakeFiles/asterix_storage.dir/lsm.cc.o"
  "CMakeFiles/asterix_storage.dir/lsm.cc.o.d"
  "CMakeFiles/asterix_storage.dir/lsm_rtree.cc.o"
  "CMakeFiles/asterix_storage.dir/lsm_rtree.cc.o.d"
  "CMakeFiles/asterix_storage.dir/rtree.cc.o"
  "CMakeFiles/asterix_storage.dir/rtree.cc.o.d"
  "libasterix_storage.a"
  "libasterix_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
