file(REMOVE_RECURSE
  "libasterix_storage.a"
)
