# Empty compiler generated dependencies file for asterix_functions.
# This may be replaced when dependencies are built.
