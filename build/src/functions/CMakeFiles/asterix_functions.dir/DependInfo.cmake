
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/functions/aggregates.cc" "src/functions/CMakeFiles/asterix_functions.dir/aggregates.cc.o" "gcc" "src/functions/CMakeFiles/asterix_functions.dir/aggregates.cc.o.d"
  "/root/repo/src/functions/arith.cc" "src/functions/CMakeFiles/asterix_functions.dir/arith.cc.o" "gcc" "src/functions/CMakeFiles/asterix_functions.dir/arith.cc.o.d"
  "/root/repo/src/functions/builtins.cc" "src/functions/CMakeFiles/asterix_functions.dir/builtins.cc.o" "gcc" "src/functions/CMakeFiles/asterix_functions.dir/builtins.cc.o.d"
  "/root/repo/src/functions/similarity.cc" "src/functions/CMakeFiles/asterix_functions.dir/similarity.cc.o" "gcc" "src/functions/CMakeFiles/asterix_functions.dir/similarity.cc.o.d"
  "/root/repo/src/functions/spatial.cc" "src/functions/CMakeFiles/asterix_functions.dir/spatial.cc.o" "gcc" "src/functions/CMakeFiles/asterix_functions.dir/spatial.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adm/CMakeFiles/asterix_adm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/asterix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
