file(REMOVE_RECURSE
  "CMakeFiles/asterix_functions.dir/aggregates.cc.o"
  "CMakeFiles/asterix_functions.dir/aggregates.cc.o.d"
  "CMakeFiles/asterix_functions.dir/arith.cc.o"
  "CMakeFiles/asterix_functions.dir/arith.cc.o.d"
  "CMakeFiles/asterix_functions.dir/builtins.cc.o"
  "CMakeFiles/asterix_functions.dir/builtins.cc.o.d"
  "CMakeFiles/asterix_functions.dir/similarity.cc.o"
  "CMakeFiles/asterix_functions.dir/similarity.cc.o.d"
  "CMakeFiles/asterix_functions.dir/spatial.cc.o"
  "CMakeFiles/asterix_functions.dir/spatial.cc.o.d"
  "libasterix_functions.a"
  "libasterix_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
