file(REMOVE_RECURSE
  "libasterix_functions.a"
)
