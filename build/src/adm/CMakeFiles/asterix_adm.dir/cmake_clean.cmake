file(REMOVE_RECURSE
  "CMakeFiles/asterix_adm.dir/adm_parser.cc.o"
  "CMakeFiles/asterix_adm.dir/adm_parser.cc.o.d"
  "CMakeFiles/asterix_adm.dir/serde.cc.o"
  "CMakeFiles/asterix_adm.dir/serde.cc.o.d"
  "CMakeFiles/asterix_adm.dir/temporal.cc.o"
  "CMakeFiles/asterix_adm.dir/temporal.cc.o.d"
  "CMakeFiles/asterix_adm.dir/type.cc.o"
  "CMakeFiles/asterix_adm.dir/type.cc.o.d"
  "CMakeFiles/asterix_adm.dir/value.cc.o"
  "CMakeFiles/asterix_adm.dir/value.cc.o.d"
  "libasterix_adm.a"
  "libasterix_adm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_adm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
