# Empty compiler generated dependencies file for asterix_adm.
# This may be replaced when dependencies are built.
