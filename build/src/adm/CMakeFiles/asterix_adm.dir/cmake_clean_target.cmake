file(REMOVE_RECURSE
  "libasterix_adm.a"
)
