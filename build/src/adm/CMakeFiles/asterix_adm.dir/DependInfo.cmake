
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adm/adm_parser.cc" "src/adm/CMakeFiles/asterix_adm.dir/adm_parser.cc.o" "gcc" "src/adm/CMakeFiles/asterix_adm.dir/adm_parser.cc.o.d"
  "/root/repo/src/adm/serde.cc" "src/adm/CMakeFiles/asterix_adm.dir/serde.cc.o" "gcc" "src/adm/CMakeFiles/asterix_adm.dir/serde.cc.o.d"
  "/root/repo/src/adm/temporal.cc" "src/adm/CMakeFiles/asterix_adm.dir/temporal.cc.o" "gcc" "src/adm/CMakeFiles/asterix_adm.dir/temporal.cc.o.d"
  "/root/repo/src/adm/type.cc" "src/adm/CMakeFiles/asterix_adm.dir/type.cc.o" "gcc" "src/adm/CMakeFiles/asterix_adm.dir/type.cc.o.d"
  "/root/repo/src/adm/value.cc" "src/adm/CMakeFiles/asterix_adm.dir/value.cc.o" "gcc" "src/adm/CMakeFiles/asterix_adm.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/asterix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
