file(REMOVE_RECURSE
  "CMakeFiles/web_log_analysis.dir/web_log_analysis.cpp.o"
  "CMakeFiles/web_log_analysis.dir/web_log_analysis.cpp.o.d"
  "web_log_analysis"
  "web_log_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_log_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
