file(REMOVE_RECURSE
  "CMakeFiles/feed_ingestion.dir/feed_ingestion.cpp.o"
  "CMakeFiles/feed_ingestion.dir/feed_ingestion.cpp.o.d"
  "feed_ingestion"
  "feed_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feed_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
