# Empty compiler generated dependencies file for feed_ingestion.
# This may be replaced when dependencies are built.
