file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_inserts.dir/bench_table4_inserts.cc.o"
  "CMakeFiles/bench_table4_inserts.dir/bench_table4_inserts.cc.o.d"
  "bench_table4_inserts"
  "bench_table4_inserts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_inserts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
