# Empty dependencies file for bench_table4_inserts.
# This may be replaced when dependencies are built.
