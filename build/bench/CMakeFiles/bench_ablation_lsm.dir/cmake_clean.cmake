file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lsm.dir/bench_ablation_lsm.cc.o"
  "CMakeFiles/bench_ablation_lsm.dir/bench_ablation_lsm.cc.o.d"
  "bench_ablation_lsm"
  "bench_ablation_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
