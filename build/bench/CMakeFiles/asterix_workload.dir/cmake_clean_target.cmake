file(REMOVE_RECURSE
  "libasterix_workload.a"
)
