# Empty compiler generated dependencies file for asterix_workload.
# This may be replaced when dependencies are built.
