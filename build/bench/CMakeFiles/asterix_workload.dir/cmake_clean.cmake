file(REMOVE_RECURSE
  "CMakeFiles/asterix_workload.dir/workload/generator.cc.o"
  "CMakeFiles/asterix_workload.dir/workload/generator.cc.o.d"
  "libasterix_workload.a"
  "libasterix_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asterix_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
