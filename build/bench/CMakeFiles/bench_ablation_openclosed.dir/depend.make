# Empty dependencies file for bench_ablation_openclosed.
# This may be replaced when dependencies are built.
