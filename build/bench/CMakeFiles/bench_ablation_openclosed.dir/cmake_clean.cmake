file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_openclosed.dir/bench_ablation_openclosed.cc.o"
  "CMakeFiles/bench_ablation_openclosed.dir/bench_ablation_openclosed.cc.o.d"
  "bench_ablation_openclosed"
  "bench_ablation_openclosed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_openclosed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
