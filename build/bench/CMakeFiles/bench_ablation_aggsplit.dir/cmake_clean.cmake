file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_aggsplit.dir/bench_ablation_aggsplit.cc.o"
  "CMakeFiles/bench_ablation_aggsplit.dir/bench_ablation_aggsplit.cc.o.d"
  "bench_ablation_aggsplit"
  "bench_ablation_aggsplit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aggsplit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
