# Empty compiler generated dependencies file for bench_ablation_aggsplit.
# This may be replaced when dependencies are built.
