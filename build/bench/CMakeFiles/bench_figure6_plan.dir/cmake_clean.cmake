file(REMOVE_RECURSE
  "CMakeFiles/bench_figure6_plan.dir/bench_figure6_plan.cc.o"
  "CMakeFiles/bench_figure6_plan.dir/bench_figure6_plan.cc.o.d"
  "bench_figure6_plan"
  "bench_figure6_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
