# Empty dependencies file for bench_figure6_plan.
# This may be replaced when dependencies are built.
