// Regenerates Table 3 of the paper: average query response times across
// AsterixDB (Schema / KeyOnly types), System-X, Hive, and MongoDB, for the
// paper's query suite — record lookup, range scan, selective joins, simple
// and grouped aggregation — each without and with secondary-index support.
//
// Shapes to reproduce (from the paper's Table 3):
//  * record lookup: all indexed systems sub-ms-ish; Hive (scan-only) orders
//    of magnitude slower (its time is cited in parentheses);
//  * unindexed queries: every system pays a full scan; KeyOnly > Schema
//    (bigger records); Hive scan competitive (columnar) + startup;
//  * indexed queries: "the same performance ballpark" for all systems with
//    indexes;
//  * client-side join (Mongo) degrades sharply at large selectivity;
//  * grouped aggregation: Asterix indexed-small noticeably worse than the
//    others (no limit pushdown into sort + result-fetch overhead).

#include <map>
#include <set>

#include "adm/temporal.h"
#include "bench_common.h"

namespace asterix {
namespace bench {
namespace {

using adm::Value;
using workload::Generator;

constexpr int64_t kMs = 1000;

std::string TsLiteral(int64_t epoch_ms) {
  return "datetime(\"" + adm::FormatDatetime(epoch_ms) + "\")";
}

struct Row {
  double ast_schema = 0, ast_keyonly = 0, systx = 0, hive = 0, mongo = 0;
  bool hive_real = true;
};

// ---------------------------------------------------------------------------

class Table3 {
 public:
  explicit Table3(BenchEnv* env) : env_(env) {
    // Per-query secondary indexes for the baseline systems.
    Check(env_->systx()->Find("users")->CreateIndex("user_since"), "ix");
    Check(env_->systx()->Find("messages")->CreateIndex("ts"), "ix");
    Check(env_->systx()->Find("messages")->CreateIndex("author_id"), "ix");
    Check(env_->mongo_users()->EnsureIndex("user-since"), "ix");
    Check(env_->mongo_messages()->EnsureIndex("timestamp"), "ix");
    Check(env_->mongo_messages()->EnsureIndex("author-id"), "ix");
    user_epoch_ = adm::DaysFromCivil(2010, 1, 1) * 24LL * 3600 * 1000;
    msg_epoch_ = Generator::MessageEpochMillis();
  }

  void RecordLookup();
  Row RangeScan(bool with_index);
  Row SelJoin(bool with_index, int64_t selectivity, bool double_select);
  Row Aggregate(bool with_index, int64_t selectivity);
  Row GroupAggregate(bool with_index, int64_t selectivity);

 private:
  // Reassembles one user's nested record from System-X's normalized tables
  // (the joins the paper says System-X needs for records with nested data).
  void SystxReassembleUser(const Value& user_row) {
    const Value& id = user_row.GetField("id");
    size_t parts = 0;
    env_->systx()->Find("user_friends")->IndexProbe(
        "user_id", id, [&](const Value&) {
          ++parts;
          return Status::OK();
        });
    env_->systx()->Find("user_employment")->IndexProbe(
        "user_id", id, [&](const Value&) {
          ++parts;
          return Status::OK();
        });
    sink_ += parts;
  }

  BenchEnv* env_;
  int64_t user_epoch_ = 0;
  int64_t msg_epoch_ = 0;
  size_t sink_ = 0;

 public:
  size_t sink() const { return sink_; }
};

void Table3::RecordLookup() {
  const int64_t key = env_->scale().users / 2;
  Row r;
  r.ast_schema = env_->RunAql("for $u in dataset Users where $u.id = " +
                              std::to_string(key) + " return $u;");
  r.ast_keyonly = env_->RunAql("for $u in dataset UsersKeyOnly where $u.id = " +
                               std::to_string(key) + " return $u;");
  r.systx = BaselineTimeMs([&] {
    bool found;
    Value row;
    Check(env_->systx()->Find("users")->FindByKey(Value::Int64(key), &found,
                                                  &row),
          "systx lookup");
    if (found) SystxReassembleUser(row);  // nested fields need extra tables
  });
  r.hive = BaselineTimeMs([&] {
    size_t n = 0;
    Check(env_->hive_users()->Scan({"id"}, std::nullopt,
                                   [&](const std::vector<Value>& row) {
                                     if (row[0].AsInt() == key) ++n;
                                     return Status::OK();
                                   }),
          "hive lookup");
    sink_ += n;
  });
  r.hive_real = false;  // cited: Hive is not designed for point lookups
  r.mongo = BaselineTimeMs([&] {
    bool found;
    Value doc;
    Check(env_->mongo_users()->FindByKey(Value::Int64(key), &found, &doc),
          "mongo lookup");
  });
  PrintRow("Rec Lookup", r.ast_schema, r.ast_keyonly, r.systx, r.hive,
           r.hive_real, r.mongo);
}

Row Table3::RangeScan(bool with_index) {
  // 300 users in a 300-second user-since window.
  int64_t lo = user_epoch_ + (env_->scale().users / 3) * kMs;
  int64_t hi = lo + 299 * kMs;
  std::string pred = "$u.user-since >= " + TsLiteral(lo) +
                     " and $u.user-since <= " + TsLiteral(hi);
  std::string hint = with_index ? "" : "/*+ skip-index */ ";
  Row r;
  size_t count = 0;
  r.ast_schema = env_->RunAql(
      "for $u in dataset Users where " + hint + pred + " return $u;", &count);
  if (count != 300) std::fprintf(stderr, "WARN range scan count=%zu\n", count);
  r.ast_keyonly = env_->RunAql("for $u in dataset UsersKeyOnly where " + hint +
                               pred + " return $u;");
  Value vlo = Value::Datetime(lo), vhi = Value::Datetime(hi);
  r.systx = BaselineTimeMs([&] {
    size_t n = 0;
    auto per_row = [&](const Value& row) {
      SystxReassembleUser(row);  // nested fields come from side tables
      ++n;
      return Status::OK();
    };
    if (with_index) {
      Check(env_->systx()->Find("users")->RangeQuery("user_since", vlo, vhi,
                                                     per_row),
            "systx range");
    } else {
      Check(env_->systx()->Find("users")->Scan([&](const Value& row) {
        const Value& ts = row.GetField("user_since");
        if (ts.Compare(vlo) >= 0 && ts.Compare(vhi) <= 0) return per_row(row);
        return Status::OK();
      }),
            "systx scan");
    }
    sink_ += n;
  });
  r.hive = BaselineTimeMs([&] {
    size_t n = 0;
    Check(env_->hive_users()->Scan(
              {"user_since", "name"}, std::nullopt,
              [&](const std::vector<Value>& row) {
                if (row[0].Compare(vlo) >= 0 && row[0].Compare(vhi) <= 0) ++n;
                return Status::OK();
              }),
          "hive scan");
    sink_ += n;
  });
  r.hive_real = !with_index;  // Hive has no indexes: the time is re-cited
  r.mongo = BaselineTimeMs([&] {
    size_t n = 0;
    auto per_doc = [&](const Value&) {
      ++n;
      return Status::OK();
    };
    if (with_index) {
      Check(env_->mongo_users()->RangeQuery("user-since", vlo, vhi, per_doc),
            "mongo range");
    } else {
      Check(env_->mongo_users()->Scan([&](const Value& doc) {
        const Value& ts = doc.GetField("user-since");
        if (ts.Compare(vlo) >= 0 && ts.Compare(vhi) <= 0) ++n;
        return Status::OK();
      }),
            "mongo scan");
    }
    sink_ += n;
  });
  return r;
}

Row Table3::SelJoin(bool with_index, int64_t selectivity, bool double_select) {
  int64_t lo = user_epoch_ + (env_->scale().users / 3) * kMs;
  int64_t hi = lo + (selectivity - 1) * kMs;
  // The second (message-side) filter of the double-select variant keeps
  // half the messages.
  int64_t mlo = msg_epoch_;
  int64_t mhi = msg_epoch_ + (env_->scale().messages / 2) * kMs;

  std::string upred = "$u.user-since >= " + TsLiteral(lo) +
                      " and $u.user-since <= " + TsLiteral(hi);
  std::string mpred = double_select
                          ? " and $m.timestamp >= " + TsLiteral(mlo) +
                                " and $m.timestamp < " + TsLiteral(mhi)
                          : "";
  std::string hint = with_index ? "/*+ indexnl */ " : "";
  std::string skip = with_index ? "" : "/*+ skip-index */ ";
  std::string q = "for $u in dataset Users for $m in dataset Messages where " +
                  skip + "$m.author-id " + hint + "= $u.id and " + upred +
                  mpred + " return { \"name\": $u.name, \"msg\": $m.message };";

  Row r;
  r.ast_schema = env_->RunAql(q);
  std::string qk =
      "for $u in dataset UsersKeyOnly for $m in dataset MessagesKeyOnly "
      "where " + skip + "$m.author-id " + hint + "= $u.id and " + upred + mpred +
      " return { \"name\": $u.name, \"msg\": $m.message };";
  r.ast_keyonly = env_->RunAql(qk);

  Value vlo = Value::Datetime(lo), vhi = Value::Datetime(hi);
  Value vmlo = Value::Datetime(mlo), vmhi = Value::Datetime(mhi);
  auto msg_passes = [&](const Value& m) {
    if (!double_select) return true;
    const Value& ts = m.GetField("ts");
    return ts.Compare(vmlo) >= 0 && ts.Compare(vmhi) < 0;
  };

  r.systx = BaselineTimeMs([&] {
    auto* users = env_->systx()->Find("users");
    auto* msgs = env_->systx()->Find("messages");
    // Selected users.
    std::vector<Value> selected;
    auto collect = [&](const Value& row) {
      selected.push_back(row);
      return Status::OK();
    };
    if (with_index) {
      Check(users->RangeQuery("user_since", vlo, vhi, collect), "sx sel");
    } else {
      Check(users->Scan([&](const Value& row) {
        const Value& ts = row.GetField("user_since");
        if (ts.Compare(vlo) >= 0 && ts.Compare(vhi) <= 0) selected.push_back(row);
        return Status::OK();
      }),
            "sx scan");
    }
    size_t joined = 0;
    baselines::JoinMethod method =
        with_index ? baselines::ChooseJoinMethod(selected.size(), msgs->Count(),
                                                 msgs->HasIndex("author_id"))
                   : baselines::JoinMethod::kHashJoin;
    if (method == baselines::JoinMethod::kIndexNestedLoop) {
      for (const auto& u : selected) {
        Check(msgs->IndexProbe("author_id", u.GetField("id"),
                               [&](const Value& m) {
                                 if (msg_passes(m)) ++joined;
                                 return Status::OK();
                               }),
              "sx probe");
      }
    } else {
      std::map<int64_t, size_t> build;
      for (const auto& u : selected) ++build[u.GetField("id").AsInt()];
      Check(msgs->Scan([&](const Value& m) {
        if (!msg_passes(m)) return Status::OK();
        auto it = build.find(m.GetField("author_id").AsInt());
        if (it != build.end()) joined += it->second;
        return Status::OK();
      }),
            "sx hash join");
    }
    sink_ += joined;
  });

  r.hive = BaselineTimeMs([&] {
    // Hive: hash join over two full columnar scans (one MR job).
    std::set<int64_t> build;
    Check(env_->hive_users()->Scan({"user_since", "id"}, std::nullopt,
                                   [&](const std::vector<Value>& row) {
                                     if (row[0].Compare(vlo) >= 0 &&
                                         row[0].Compare(vhi) <= 0) {
                                       build.insert(row[1].AsInt());
                                     }
                                     return Status::OK();
                                   }),
          "hive users");
    size_t joined = 0;
    Check(env_->hive_messages()->Scan(
              {"author_id", "ts", "text"}, std::nullopt,
              [&](const std::vector<Value>& row) {
                if (double_select && (row[1].Compare(vmlo) < 0 ||
                                      row[1].Compare(vmhi) >= 0)) {
                  return Status::OK();
                }
                if (build.count(row[0].AsInt())) ++joined;
                return Status::OK();
              }),
          "hive messages");
    sink_ += joined;
  });
  r.hive_real = !with_index;

  r.mongo = BaselineTimeMs([&] {
    // The paper's client-side join: select users, then look up messages per
    // user through the author index (or scan without one).
    std::vector<Value> ids;
    auto collect = [&](const Value& doc) {
      ids.push_back(doc.GetField("id"));
      return Status::OK();
    };
    if (with_index) {
      Check(env_->mongo_users()->RangeQuery("user-since", vlo, vhi, collect),
            "mongo sel");
    } else {
      Check(env_->mongo_users()->Scan([&](const Value& doc) {
        const Value& ts = doc.GetField("user-since");
        if (ts.Compare(vlo) >= 0 && ts.Compare(vhi) <= 0) {
          ids.push_back(doc.GetField("id"));
        }
        return Status::OK();
      }),
            "mongo scan");
    }
    size_t joined = 0;
    auto count_match = [&](const Value& m) {
      if (!double_select) {
        ++joined;
        return Status::OK();
      }
      const Value& ts = m.GetField("timestamp");
      if (ts.Compare(vmlo) >= 0 && ts.Compare(vmhi) < 0) ++joined;
      return Status::OK();
    };
    if (with_index) {
      for (const auto& id : ids) {
        Check(env_->mongo_messages()->RangeQuery("author-id", id, id,
                                                 count_match),
              "mongo probe");
      }
    } else {
      std::set<int64_t> idset;
      for (const auto& id : ids) idset.insert(id.AsInt());
      Check(env_->mongo_messages()->Scan([&](const Value& m) {
        if (idset.count(m.GetField("author-id").AsInt())) {
          return count_match(m);
        }
        return Status::OK();
      }),
            "mongo join scan");
    }
    sink_ += joined;
  });
  return r;
}

Row Table3::Aggregate(bool with_index, int64_t selectivity) {
  int64_t lo = msg_epoch_;
  int64_t hi = msg_epoch_ + selectivity * kMs;  // exclusive
  std::string skip = with_index ? "" : "/*+ skip-index */ ";
  std::string q = "avg(for $m in dataset Messages where " + skip +
                  "$m.timestamp >= " + TsLiteral(lo) + " and $m.timestamp < " +
                  TsLiteral(hi) + " return string-length($m.message))";
  Row r;
  r.ast_schema = env_->RunAql(q);
  std::string qk = "avg(for $m in dataset MessagesKeyOnly where " + skip +
                   "$m.timestamp >= " + TsLiteral(lo) +
                   " and $m.timestamp < " + TsLiteral(hi) +
                   " return string-length($m.message))";
  r.ast_keyonly = env_->RunAql(qk);

  Value vlo = Value::Datetime(lo), vhi = Value::Datetime(hi);
  r.systx = BaselineTimeMs([&] {
    double sum = 0;
    size_t n = 0;
    auto add = [&](const Value& row) {
      sum += static_cast<double>(row.GetField("text").AsString().size());
      ++n;
      return Status::OK();
    };
    if (with_index) {
      Check(env_->systx()->Find("messages")->RangeQuery("ts", vlo, vhi, add),
            "sx agg");
    } else {
      Check(env_->systx()->Find("messages")->Scan([&](const Value& row) {
        const Value& ts = row.GetField("ts");
        if (ts.Compare(vlo) >= 0 && ts.Compare(vhi) < 0) return add(row);
        return Status::OK();
      }),
            "sx agg scan");
    }
    sink_ += n + static_cast<size_t>(sum);
  });
  r.hive = BaselineTimeMs([&] {
    double sum = 0;
    size_t n = 0;
    Check(env_->hive_messages()->Scan(
              {"ts", "text"}, std::nullopt,
              [&](const std::vector<Value>& row) {
                if (row[0].Compare(vlo) >= 0 && row[0].Compare(vhi) < 0) {
                  sum += static_cast<double>(row[1].AsString().size());
                  ++n;
                }
                return Status::OK();
              }),
          "hive agg");
    sink_ += n;
  });
  r.hive_real = !with_index;
  r.mongo = BaselineTimeMs([&] {
    if (with_index) {
      double sum = 0;
      size_t n = 0;
      Check(env_->mongo_messages()->RangeQuery(
                "timestamp", vlo, vhi,
                [&](const Value& doc) {
                  sum += static_cast<double>(
                      doc.GetField("message").AsString().size());
                  ++n;
                  return Status::OK();
                }),
            "mongo agg");
      sink_ += n;
    } else {
      // The paper used Mongo's map-reduce for this aggregation.
      std::map<std::string, Value> out;
      Check(env_->mongo_messages()->MapReduce(
                [&](const Value& doc,
                    std::vector<std::pair<Value, Value>>* emit) {
                  const Value& ts = doc.GetField("timestamp");
                  if (ts.Compare(vlo) >= 0 && ts.Compare(vhi) < 0) {
                    emit->emplace_back(
                        Value::Int64(0),
                        Value::Int64(static_cast<int64_t>(
                            doc.GetField("message").AsString().size())));
                  }
                },
                [](const std::vector<Value>& values) {
                  int64_t sum = 0;
                  for (const auto& v : values) sum += v.AsInt();
                  return Value::Double(static_cast<double>(sum) /
                                       static_cast<double>(values.size()));
                },
                &out),
            "mongo mr");
      sink_ += out.size();
    }
  });
  return r;
}

Row Table3::GroupAggregate(bool with_index, int64_t selectivity) {
  int64_t lo = msg_epoch_;
  int64_t hi = msg_epoch_ + selectivity * kMs;
  std::string skip = with_index ? "" : "/*+ skip-index */ ";
  std::string q = "for $m in dataset Messages where " + skip +
                  "$m.timestamp >= " + TsLiteral(lo) + " and $m.timestamp < " +
                  TsLiteral(hi) +
                  " group by $aid := $m.author-id with $m"
                  " let $cnt := count($m)"
                  " order by $cnt desc limit 10"
                  " return { \"author\": $aid, \"cnt\": $cnt };";
  Row r;
  r.ast_schema = env_->RunAql(q);
  std::string qk = "for $m in dataset MessagesKeyOnly where " + skip +
                   "$m.timestamp >= " + TsLiteral(lo) +
                   " and $m.timestamp < " + TsLiteral(hi) +
                   " group by $aid := $m.author-id with $m"
                   " let $cnt := count($m)"
                   " order by $cnt desc limit 10"
                   " return { \"author\": $aid, \"cnt\": $cnt };";
  r.ast_keyonly = env_->RunAql(qk);

  Value vlo = Value::Datetime(lo), vhi = Value::Datetime(hi);
  auto top10 = [&](std::map<int64_t, int64_t>& counts) {
    std::vector<std::pair<int64_t, int64_t>> rows(counts.begin(), counts.end());
    std::partial_sort(rows.begin(),
                      rows.begin() + std::min<size_t>(10, rows.size()),
                      rows.end(), [](const auto& a, const auto& b) {
                        return a.second > b.second;
                      });
    sink_ += rows.empty() ? 0 : static_cast<size_t>(rows[0].second);
  };

  r.systx = BaselineTimeMs([&] {
    std::map<int64_t, int64_t> counts;
    auto add = [&](const Value& row) {
      ++counts[row.GetField("author_id").AsInt()];
      return Status::OK();
    };
    if (with_index) {
      Check(env_->systx()->Find("messages")->RangeQuery("ts", vlo, vhi, add),
            "sx grp");
    } else {
      Check(env_->systx()->Find("messages")->Scan([&](const Value& row) {
        const Value& ts = row.GetField("ts");
        if (ts.Compare(vlo) >= 0 && ts.Compare(vhi) < 0) return add(row);
        return Status::OK();
      }),
            "sx grp scan");
    }
    top10(counts);
  });
  r.hive = BaselineTimeMs([&] {
    std::map<int64_t, int64_t> counts;
    Check(env_->hive_messages()->Scan(
              {"ts", "author_id"}, std::nullopt,
              [&](const std::vector<Value>& row) {
                if (row[0].Compare(vlo) >= 0 && row[0].Compare(vhi) < 0) {
                  ++counts[row[1].AsInt()];
                }
                return Status::OK();
              }),
          "hive grp");
    top10(counts);
  });
  r.hive_real = !with_index;
  r.mongo = BaselineTimeMs([&] {
    std::map<int64_t, int64_t> counts;
    if (with_index) {
      Check(env_->mongo_messages()->RangeQuery(
                "timestamp", vlo, vhi,
                [&](const Value& doc) {
                  ++counts[doc.GetField("author-id").AsInt()];
                  return Status::OK();
                }),
            "mongo grp");
    } else {
      std::map<std::string, Value> out;
      Check(env_->mongo_messages()->MapReduce(
                [&](const Value& doc,
                    std::vector<std::pair<Value, Value>>* emit) {
                  const Value& ts = doc.GetField("timestamp");
                  if (ts.Compare(vlo) >= 0 && ts.Compare(vhi) < 0) {
                    emit->emplace_back(doc.GetField("author-id"),
                                       Value::Int64(1));
                  }
                },
                [](const std::vector<Value>& values) {
                  return Value::Int64(static_cast<int64_t>(values.size()));
                },
                &out),
            "mongo mr");
      for (const auto& [k, v] : out) {
        counts[atoll(k.c_str())] = v.AsInt();
      }
    }
    top10(counts);
  });
  return r;
}

int Main() {
  BenchScale scale = BenchScale::FromEnv();
  std::printf("Table 3 reproduction: average query response times (ms)\n");
  std::printf("scale: %lld users, %lld messages; Hive () = re-cited scan time\n",
              static_cast<long long>(scale.users),
              static_cast<long long>(scale.messages));
  BenchEnv env(scale);
  Table3 t3(&env);

  int64_t join_sm = 300;
  int64_t join_lg = 3000;
  int64_t agg_sm = 300;
  // "Large" selectivity is still a small fraction of the dataset in the
  // paper (30k of ~10^8 messages); 10%% here keeps the indexed plan on the
  // winning side of the index-vs-scan crossover, as in Table 3.
  int64_t agg_lg = scale.messages / 10;

  PrintHeader("Table 3");
  BenchJsonDump dump("table3");
  dump.SetInstance(env.asterix());
  t3.RecordLookup();
  dump.Add("Rec Lookup", 0, env.last_profile());
  auto p = [&](const char* label, const Row& r) {
    PrintRow(label, r.ast_schema, r.ast_keyonly, r.systx, r.hive, r.hive_real,
             r.mongo);
    // Profile of the row's most recent compiled Asterix query.
    dump.Add(label, r.ast_schema, env.last_profile());
  };
  p("Range Scan", t3.RangeScan(false));
  p("-- with IX", t3.RangeScan(true));
  p("Sel-Join (Sm)", t3.SelJoin(false, join_sm, false));
  p("-- with IX", t3.SelJoin(true, join_sm, false));
  p("Sel-Join (Lg)", t3.SelJoin(false, join_lg, false));
  p("-- with IX", t3.SelJoin(true, join_lg, false));
  p("Sel2-Join (Sm)", t3.SelJoin(false, join_sm, true));
  p("-- with IX", t3.SelJoin(true, join_sm, true));
  p("Sel2-Join (Lg)", t3.SelJoin(false, join_lg, true));
  p("-- with IX", t3.SelJoin(true, join_lg, true));
  p("Agg (Sm)", t3.Aggregate(false, agg_sm));
  p("-- with IX", t3.Aggregate(true, agg_sm));
  p("Agg (Lg)", t3.Aggregate(false, agg_lg));
  p("-- with IX", t3.Aggregate(true, agg_lg));
  p("Grp-Aggr (Sm)", t3.GroupAggregate(false, agg_sm));
  p("-- with IX", t3.GroupAggregate(true, agg_sm));
  p("Grp-Aggr (Lg)", t3.GroupAggregate(false, agg_lg));
  p("-- with IX", t3.GroupAggregate(true, agg_lg));
  std::printf("(sink=%zu)\n", t3.sink());
  PrintJobPercentiles("job latency");
  dump.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace asterix

int main() { return asterix::bench::Main(); }
