// Multi-client serving bench: N closed-loop clients fire a mixed
// read/write workload at one AsterixInstance through Serve() — the full
// serving pipeline (per-client rate limiting off, admission pool on,
// result cache + request coalescing on) — and the run reports end-to-end
// QPS and latency percentiles per operation class, plus the server-layer
// counters (cache hits/misses, coalesced followers, admission grants),
// into BENCH_serving.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/asterix.h"
#include "common/env.h"
#include "common/metrics.h"

namespace {

using namespace asterix;

struct ClientStats {
  std::vector<double> read_ms;
  std::vector<double> write_ms;
  uint64_t cache_hits = 0;
  uint64_t coalesced = 0;
  uint64_t errors = 0;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[idx];
}

int64_t EnvInt(const char* name, int64_t fallback) {
  if (const char* v = std::getenv(name)) return atoll(v);
  return fallback;
}

int Main() {
  const int clients = static_cast<int>(EnvInt("ASTERIX_SERVING_CLIENTS", 8));
  const double seconds =
      static_cast<double>(EnvInt("ASTERIX_SERVING_SECONDS", 3));
  const int64_t seed_rows = EnvInt("ASTERIX_SERVING_ROWS", 5000);
  // ASTERIX_SERVING_MONITOR=0 turns the background sampler/watchdog off —
  // the A/B knob for measuring the monitoring subsystem's QPS overhead.
  const bool monitor = EnvInt("ASTERIX_SERVING_MONITOR", 1) != 0;

  std::string dir = env::NewScratchDir("serving-bench");
  api::InstanceConfig config;
  config.base_dir = dir;
  config.cluster.num_nodes = 2;
  config.cluster.partitions_per_node = 2;
  config.cluster.job_startup_us = 0;
  config.cluster.cluster_memory_pool_bytes = 64ull << 20;
  config.result_cache_bytes = 16ull << 20;
  config.enable_monitoring = monitor;
  api::AsterixInstance db(config);
  if (!db.Boot().ok()) return 1;
  auto ddl = db.Execute(R"aql(
create dataverse Serve; use dataverse Serve;
create type T as { id: int64, v: int64, grp: int64 }
create dataset D(T) primary key id;
)aql");
  if (!ddl.ok()) {
    std::fprintf(stderr, "ddl: %s\n", ddl.status().ToString().c_str());
    return 1;
  }
  std::vector<adm::Value> rows;
  for (int64_t i = 0; i < seed_rows; ++i) {
    rows.push_back(adm::RecordBuilder()
                       .Add("id", adm::Value::Int64(i))
                       .Add("v", adm::Value::Int64(i % 97))
                       .Add("grp", adm::Value::Int64(i % 10))
                       .Build());
  }
  if (!db.FindDataset("Serve.D")->LoadBulk(rows).ok()) return 1;

  // A small template pool: repeats are what give the cache and the
  // coalescer something to do, like a dashboard's canned queries.
  const std::vector<std::string> reads = {
      "count(for $d in dataset Serve.D return $d)",
      "for $d in dataset Serve.D where $d.grp = 3 return $d.v",
      "count(for $d in dataset Serve.D where $d.v < 10 return $d)",
      "for $d in dataset Serve.D where $d.grp = 7 return $d.id",
  };

  std::atomic<bool> stop{false};
  std::vector<ClientStats> stats(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  auto bench_start = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientStats& s = stats[static_cast<size_t>(c)];
      api::ServeOptions opts;
      opts.client_id = "client-" + std::to_string(c);
      uint64_t seq = 0;
      // Simple per-client LCG so clients diverge without libc rand locks.
      uint64_t rng = 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(c + 1);
      while (!stop.load(std::memory_order_acquire)) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        bool is_write = (rng >> 33) % 5 == 0;  // ~20% writes
        auto t0 = std::chrono::steady_clock::now();
        if (is_write) {
          int64_t id = 1000000 + static_cast<int64_t>(c) * 1000000 +
                       static_cast<int64_t>(seq++);
          auto r = db.Serve("insert into dataset Serve.D ([{ \"id\": " +
                                std::to_string(id) +
                                ", \"v\": 1, \"grp\": 1 }]);",
                            opts);
          double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
          if (r.ok()) {
            s.write_ms.push_back(ms);
          } else {
            ++s.errors;
          }
        } else {
          const std::string& q =
              reads[static_cast<size_t>((rng >> 40) % reads.size())];
          auto r = db.Serve(q, opts);
          double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
          if (r.ok()) {
            s.read_ms.push_back(ms);
            if (r.value().from_cache) ++s.cache_hits;
            if (r.value().coalesced) ++s.coalesced;
          } else {
            ++s.errors;
          }
        }
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000)));
  stop = true;
  for (auto& t : threads) t.join();
  double elapsed_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - bench_start)
                         .count();

  std::vector<double> all_ms, read_ms, write_ms;
  uint64_t cache_hits = 0, coalesced = 0, errors = 0;
  for (const auto& s : stats) {
    read_ms.insert(read_ms.end(), s.read_ms.begin(), s.read_ms.end());
    write_ms.insert(write_ms.end(), s.write_ms.begin(), s.write_ms.end());
    cache_hits += s.cache_hits;
    coalesced += s.coalesced;
    errors += s.errors;
  }
  all_ms = read_ms;
  all_ms.insert(all_ms.end(), write_ms.begin(), write_ms.end());
  uint64_t ops = all_ms.size();
  double qps = elapsed_s > 0 ? static_cast<double>(ops) / elapsed_s : 0;

  char buf[512];
  std::string out = "{ \"bench\": \"serving\", \"clients\": " +
                    std::to_string(clients) +
                    ", \"seconds\": " + std::to_string(elapsed_s) +
                    ", \"ops\": " + std::to_string(ops) +
                    ", \"errors\": " + std::to_string(errors) + ", ";
  std::snprintf(buf, sizeof(buf),
                "\"qps\": %.1f, \"latency_ms\": { \"p50\": %.3f, \"p99\": "
                "%.3f }, \"read_latency_ms\": { \"count\": %zu, \"p50\": "
                "%.3f, \"p99\": %.3f }, \"write_latency_ms\": { \"count\": "
                "%zu, \"p50\": %.3f, \"p99\": %.3f }, ",
                qps, Percentile(&all_ms, 0.50), Percentile(&all_ms, 0.99),
                read_ms.size(), Percentile(&read_ms, 0.50),
                Percentile(&read_ms, 0.99), write_ms.size(),
                Percentile(&write_ms, 0.50), Percentile(&write_ms, 0.99));
  out += buf;
  // Take a final synchronous sample so the ring and the health summary
  // include everything up to the join above.
  if (db.sampler() != nullptr) db.sampler()->SampleNow();
  out += "\"cache_hits\": " + std::to_string(cache_hits) +
         ", \"coalesced\": " + std::to_string(coalesced) +
         ", \"status\": " + db.StatusJson() +
         ", \"health\": " +
         (db.watchdog() != nullptr ? db.watchdog()->SummaryJson()
                                   : std::string("null")) +
         ", \"history\": " + db.HistoryJson(120) +
         ", \"metrics\": " + api::AsterixInstance::MetricsJson() + " }";
  if (!env::WriteFileAtomic("BENCH_serving.json", out.data(), out.size())
           .ok()) {
    return 1;
  }

  std::printf("serving bench: %d clients, %.1fs\n", clients, elapsed_s);
  std::printf("  ops=%llu qps=%.0f errors=%llu\n",
              static_cast<unsigned long long>(ops), qps,
              static_cast<unsigned long long>(errors));
  std::printf("  latency p50=%.2fms p99=%.2fms (reads p50=%.2f p99=%.2f, "
              "writes p50=%.2f p99=%.2f)\n",
              Percentile(&all_ms, 0.50), Percentile(&all_ms, 0.99),
              Percentile(&read_ms, 0.50), Percentile(&read_ms, 0.99),
              Percentile(&write_ms, 0.50), Percentile(&write_ms, 0.99));
  std::printf("  cache_hits=%llu coalesced=%llu\n",
              static_cast<unsigned long long>(cache_hits),
              static_cast<unsigned long long>(coalesced));
  if (db.watchdog() != nullptr) {
    std::printf("  health=%s\n",
                server::HealthStateName(db.watchdog()->overall()));
  } else {
    std::printf("  health=unmonitored\n");
  }
  std::printf("wrote BENCH_serving.json\n");

  env::RemoveAll(dir);
  return 0;
}

}  // namespace

int main() { return Main(); }
