// Ablation: the LSM design choices of paper SS4.3 — memory-component budget
// and merge policy vs ingestion throughput, read cost, and component counts.
// The paper's motivation: "entries are initially stored in memory and moved
// to persistent storage in bulk, [so] LSM-trees avoid costly random disk
// I/O and enable high ingestion rates"; merge policy controls the read
// amplification that accumulating components would otherwise cause.

#include <chrono>
#include <cstdio>
#include <string>

#include "common/env.h"
#include "storage/lsm.h"
#include "workload/generator.h"

namespace {

using namespace asterix;

struct RunResult {
  double ingest_ms = 0;
  double lookup_us = 0;
  double scan_ms = 0;
  size_t components = 0;
  uint64_t disk_bytes = 0;
};

RunResult RunOne(const storage::LsmOptions& options, int n) {
  std::string dir = env::NewScratchDir("lsm-ablation");
  storage::BufferCache cache(1 << 14);
  storage::LsmBTree tree(&cache, dir, "t", options);
  if (!tree.Open().ok()) std::exit(1);

  std::vector<uint8_t> payload(120, 'x');
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    // Keys arrive shuffled (hash order), the hostile case for in-place
    // B-trees and the case LSM ingestion absorbs in memory.
    int64_t key = (static_cast<int64_t>(i) * 2654435761) % (8 * n);
    tree.Upsert({adm::Value::Int64(key)}, payload, static_cast<uint64_t>(i));
  }
  RunResult r;
  r.ingest_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  r.components = tree.num_disk_components();
  r.disk_bytes = tree.total_disk_bytes();

  t0 = std::chrono::steady_clock::now();
  int lookups = 2000;
  size_t found = 0;
  for (int i = 0; i < lookups; ++i) {
    int64_t key = (static_cast<int64_t>(i * 7) * 2654435761) % (8 * n);
    bool f;
    std::vector<uint8_t> p;
    tree.PointLookup({adm::Value::Int64(key)}, &f, &p);
    found += f;
  }
  r.lookup_us = std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count() /
                lookups;

  t0 = std::chrono::steady_clock::now();
  size_t scanned = 0;
  tree.RangeScan({}, [&](const storage::IndexEntry&) {
    ++scanned;
    return Status::OK();
  });
  r.scan_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  env::RemoveAll(dir);
  return r;
}

int Main() {
  const int n = 100000;
  std::printf("LSM ablation (%d upserts, shuffled keys)\n\n", n);
  std::printf("%-34s %10s %10s %10s %6s %10s\n", "configuration", "ingest ms",
              "lookup us", "scan ms", "comps", "disk MB");

  struct Config {
    const char* name;
    storage::LsmOptions options;
  };
  std::vector<Config> configs;
  auto add = [&](const char* name, size_t mem_kb, storage::MergePolicy policy) {
    storage::LsmOptions o;
    o.mem_budget_bytes = mem_kb << 10;
    o.merge_policy = policy;
    configs.push_back({name, o});
  };
  add("mem=256KB, no merge", 256, storage::MergePolicy::None());
  add("mem=256KB, constant(4)", 256, storage::MergePolicy::Constant(4));
  add("mem=256KB, prefix(4, 4MB)", 256,
      storage::MergePolicy::Prefix(4, 4u << 20));
  add("mem=1MB,   no merge", 1024, storage::MergePolicy::None());
  add("mem=1MB,   constant(4)", 1024, storage::MergePolicy::Constant(4));
  add("mem=4MB,   constant(4)", 4096, storage::MergePolicy::Constant(4));

  double no_merge_scan = 0, merged_scan = 0;
  size_t no_merge_comps = 0, merged_comps = 0;
  for (const auto& c : configs) {
    RunResult r = RunOne(c.options, n);
    std::printf("%-34s %10.1f %10.2f %10.1f %6zu %10.2f\n", c.name,
                r.ingest_ms, r.lookup_us, r.scan_ms, r.components,
                static_cast<double>(r.disk_bytes) / (1 << 20));
    if (std::string(c.name) == "mem=256KB, no merge") {
      no_merge_scan = r.scan_ms;
      no_merge_comps = r.components;
    }
    if (std::string(c.name) == "mem=256KB, constant(4)") {
      merged_scan = r.scan_ms;
      merged_comps = r.components;
    }
  }

  bool ok = true;
  auto claim = [&](bool cond, const char* what) {
    std::printf("claim: %-62s %s\n", what, cond ? "HOLDS" : "VIOLATED");
    ok = ok && cond;
  };
  std::printf("\n");
  claim(no_merge_comps > 4 * merged_comps,
        "without merging, disk components accumulate");
  claim(merged_scan < no_merge_scan,
        "merging reduces range-scan cost (read amplification)");
  std::printf("note: point lookups stay flat even without merging because\n"
              "every disk component carries a bloom filter; scans cannot use\n"
              "blooms and pay the k-way merge across components.\n");
  return ok ? 0 : 1;
}

}  // namespace

int main() { return Main(); }
