// Ablation: the local/global aggregation split of Figure 6. The paper:
// "This split maximizes the distributed computation and minimizes network
// traffic" — with the split, each partition pre-aggregates locally and only
// tiny partial-state records cross the n:1 connector; without it, every
// qualifying tuple must be shipped to the single aggregator.
//
// The executor counts tuples whose connector hop crosses simulated node
// boundaries, making the network-traffic claim directly measurable.

#include <cstdio>

#include "api/asterix.h"
#include "common/env.h"
#include "workload/generator.h"

namespace {

using namespace asterix;

struct RunResult {
  double ms = 0;
  uint64_t network_tuples = 0;
  uint64_t connector_tuples = 0;
};

RunResult RunWithSplit(bool split, const std::vector<adm::Value>& messages) {
  std::string dir = env::NewScratchDir("aggsplit");
  api::InstanceConfig config;
  config.base_dir = dir;
  config.cluster.num_nodes = 2;
  config.cluster.partitions_per_node = 2;
  config.cluster.job_startup_us = 0;
  config.optimizer.split_aggregation = split;
  api::AsterixInstance instance(config);
  if (!instance.Boot().ok()) std::exit(1);
  auto ddl = instance.Execute(R"aql(
create dataverse B; use dataverse B;
create type M as closed {
  message-id: int64, author-id: int64, timestamp: datetime,
  in-response-to: int64?, sender-location: point?,
  tags: {{ string }}, message: string
}
create dataset Messages(M) primary key message-id;
)aql");
  if (!ddl.ok()) std::exit(1);
  if (!instance.FindDataset("B.Messages")->LoadBulk(messages).ok()) std::exit(1);
  if (!instance.FlushAll().ok()) std::exit(1);

  RunResult best;
  for (int i = 0; i < 3; ++i) {
    auto r = instance.Execute(
        "use dataverse B;\n"
        "avg(for $m in dataset Messages return string-length($m.message))");
    if (!r.ok()) std::exit(1);
    if (i == 0 || r.value().stats.elapsed_ms < best.ms) {
      best.ms = r.value().stats.elapsed_ms;
      best.network_tuples = r.value().stats.network_tuples;
      best.connector_tuples = r.value().stats.connector_tuples;
    }
  }
  env::RemoveAll(dir);
  return best;
}

int Main() {
  workload::Generator gen;
  auto messages = gen.MakeMessages(40000, 5000);
  std::printf("Local/global aggregation split ablation (40000 messages, "
              "2 nodes x 2 partitions)\n\n");
  std::printf("%-22s %10s %18s %18s\n", "configuration", "ms",
              "network tuples", "connector tuples");

  RunResult with_split = RunWithSplit(true, messages);
  RunResult without = RunWithSplit(false, messages);
  std::printf("%-22s %10.1f %18llu %18llu\n", "split (Figure 6)",
              with_split.ms,
              static_cast<unsigned long long>(with_split.network_tuples),
              static_cast<unsigned long long>(with_split.connector_tuples));
  std::printf("%-22s %10.1f %18llu %18llu\n", "no split", without.ms,
              static_cast<unsigned long long>(without.network_tuples),
              static_cast<unsigned long long>(without.connector_tuples));

  bool ok = true;
  auto claim = [&](bool cond, const char* what) {
    std::printf("claim: %-62s %s\n", what, cond ? "HOLDS" : "VIOLATED");
    ok = ok && cond;
  };
  std::printf("\n");
  claim(with_split.network_tuples * 100 < without.network_tuples,
        "the split cuts cross-node tuples by >100x");
  claim(with_split.network_tuples <= 4,
        "with the split, only per-partition partials cross the network");
  return ok ? 0 : 1;
}

}  // namespace

int main() { return Main(); }
