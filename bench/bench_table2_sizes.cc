// Regenerates Table 2 of the paper: on-disk dataset sizes across systems.
// Paper (GB, 10-node cluster):      Users  Messages  Tweets
//   Asterix (Schema)                 192      120      330
//   Asterix (KeyOnly)                360      240      600
//   Syst-X                           290      100      495
//   Hive (ORC)                        38       12       25
//   Mongo                            240      215      478
// Shape to reproduce: KeyOnly ~2x Schema; Hive far smallest (columnar
// compression); Mongo and System-X between Schema and KeyOnly.

#include "bench_common.h"

namespace asterix {
namespace bench {
namespace {

struct Sizes {
  uint64_t schema = 0, keyonly = 0, column = 0, systx = 0, hive = 0, mongo = 0;
};

double Mb(uint64_t b) { return static_cast<double>(b) / (1024.0 * 1024.0); }

int Main() {
  BenchScale scale = BenchScale::FromEnv();
  std::printf("Table 2 reproduction: dataset sizes (MB)\n");
  std::printf("scale: %lld users, %lld messages, %lld tweets\n",
              static_cast<long long>(scale.users),
              static_cast<long long>(scale.messages),
              static_cast<long long>(scale.tweets));

  BenchEnv env(scale, /*with_tweets=*/true);

  Sizes users, messages, tweets;
  users.schema = CheckResult(
      env.asterix()->DatasetPrimaryBytes("Bench.Users"), "size");
  users.keyonly = CheckResult(
      env.asterix()->DatasetPrimaryBytes("Bench.UsersKeyOnly"), "size");
  messages.schema = CheckResult(
      env.asterix()->DatasetPrimaryBytes("Bench.Messages"), "size");
  messages.keyonly = CheckResult(
      env.asterix()->DatasetPrimaryBytes("Bench.MessagesKeyOnly"), "size");

  // Columnar variants of the same datasets (this implementation's
  // column-major LSM component format; the paper-era system was row-only).
  {
    auto* ast = env.asterix();
    const char* ddl = R"aql(
use dataverse Bench;
create dataset UsersColumn(UserType) primary key id
  with { "storage-format": "column" };
create dataset MessagesColumn(MessageType) primary key message-id
  with { "storage-format": "column" };
)aql";
    auto r = ast->Execute(ddl);
    Check(r.ok() ? Status::OK() : r.status(), "columnar ddl");
    Check(ast->FindDataset("Bench.UsersColumn")->LoadBulk(env.users()), "load");
    Check(ast->FindDataset("Bench.MessagesColumn")->LoadBulk(env.messages()),
          "load");
    Check(ast->FlushAll(), "flush");
    users.column =
        CheckResult(ast->DatasetPrimaryBytes("Bench.UsersColumn"), "size");
    messages.column =
        CheckResult(ast->DatasetPrimaryBytes("Bench.MessagesColumn"), "size");
  }

  // System-X: normalized tables; a dataset's size is its table family.
  Check(env.systx()->PersistAll(), "persist systx");
  users.systx = env.systx()->Find("users")->DiskBytes() +
                env.systx()->Find("user_friends")->DiskBytes() +
                env.systx()->Find("user_employment")->DiskBytes();
  messages.systx = env.systx()->Find("messages")->DiskBytes() +
                   env.systx()->Find("message_tags")->DiskBytes();

  users.hive = env.hive_users()->DiskBytes();
  messages.hive = env.hive_messages()->DiskBytes();

  Check(env.mongo_users()->Persist(), "persist mongo");
  Check(env.mongo_messages()->Persist(), "persist mongo");
  users.mongo = env.mongo_users()->DiskBytes();
  messages.mongo = env.mongo_messages()->DiskBytes();

  // Tweets: load into dedicated stores (Schema vs KeyOnly types + baselines).
  {
    auto* ast = env.asterix();
    const char* ddl = R"aql(
use dataverse Bench;
create type TweetType as {
  tweetid: int64,
  user: { screen-name: string, lang: string, friends_count: int64,
          statuses_count: int64, followers_count: int64 },
  sender-location: point?,
  send-time: datetime,
  referred-topics: {{ string }},
  message-text: string
}
create type TweetKeyOnly as { tweetid: int64 }
create dataset Tweets(TweetType) primary key tweetid;
create dataset TweetsKeyOnly(TweetKeyOnly) primary key tweetid;
create dataset TweetsColumn(TweetType) primary key tweetid
  with { "storage-format": "column" };
)aql";
    auto r = ast->Execute(ddl);
    Check(r.ok() ? Status::OK() : r.status(), "tweet ddl");
    Check(ast->FindDataset("Bench.Tweets")->LoadBulk(env.tweets()), "load");
    Check(ast->FindDataset("Bench.TweetsKeyOnly")->LoadBulk(env.tweets()),
          "load");
    Check(ast->FindDataset("Bench.TweetsColumn")->LoadBulk(env.tweets()),
          "load");
    Check(ast->FlushAll(), "flush");
    tweets.schema = CheckResult(ast->DatasetPrimaryBytes("Bench.Tweets"), "sz");
    tweets.keyonly =
        CheckResult(ast->DatasetPrimaryBytes("Bench.TweetsKeyOnly"), "sz");
    tweets.column =
        CheckResult(ast->DatasetPrimaryBytes("Bench.TweetsColumn"), "sz");

    baselines::DocStore mongo_tweets(env.dir() + "/mongo", "tweets", "tweetid");
    Check(mongo_tweets.LoadBulk(env.tweets()), "mongo tweets");
    Check(mongo_tweets.Persist(), "persist");
    tweets.mongo = mongo_tweets.DiskBytes();

    // System-X & Hive: normalized flat tweets (user fields inlined, topics
    // in a side table for System-X; Hive flat columnar).
    baselines::RelStore systx_tw(env.dir() + "/systx");
    auto* tw = systx_tw.CreateTable(
        "tweets",
        {{"tweetid", adm::TypeTag::kInt64},
         {"screen_name", adm::TypeTag::kString},
         {"lang", adm::TypeTag::kString},
         {"friends_count", adm::TypeTag::kInt64},
         {"statuses_count", adm::TypeTag::kInt64},
         {"followers_count", adm::TypeTag::kInt64},
         {"loc_x", adm::TypeTag::kDouble},
         {"loc_y", adm::TypeTag::kDouble},
         {"send_time", adm::TypeTag::kDatetime},
         {"text", adm::TypeTag::kString}},
        "tweetid");
    auto* topics = systx_tw.CreateTable("tweet_topics",
                                        workload::TagTableSchema(), "row_id");
    baselines::ColumnStore hive_tw(
        env.dir() + "/hive", "tweets",
        {{"tweetid", adm::TypeTag::kInt64},
         {"screen_name", adm::TypeTag::kString},
         {"lang", adm::TypeTag::kString},
         {"friends_count", adm::TypeTag::kInt64},
         {"statuses_count", adm::TypeTag::kInt64},
         {"followers_count", adm::TypeTag::kInt64},
         {"loc_x", adm::TypeTag::kDouble},
         {"loc_y", adm::TypeTag::kDouble},
         {"send_time", adm::TypeTag::kDatetime},
         {"text", adm::TypeTag::kString}},
        kHiveJobStartupUs);
    int64_t row_id = 0;
    for (const auto& t : env.tweets()) {
      const adm::Value& u = t.GetField("user");
      const adm::Value& loc = t.GetField("sender-location");
      adm::RecordBuilder b;
      b.Add("tweetid", t.GetField("tweetid"))
          .Add("screen_name", u.GetField("screen-name"))
          .Add("lang", u.GetField("lang"))
          .Add("friends_count", u.GetField("friends_count"))
          .Add("statuses_count", u.GetField("statuses_count"))
          .Add("followers_count", u.GetField("followers_count"));
      if (!loc.IsUnknown()) {
        b.Add("loc_x", adm::Value::Double(loc.AsPoints()[0].x));
        b.Add("loc_y", adm::Value::Double(loc.AsPoints()[0].y));
      }
      b.Add("send_time", t.GetField("send-time"))
          .Add("text", t.GetField("message-text"));
      adm::Value row = b.Build();
      Check(tw->Insert(row, false), "systx tweet");
      Check(hive_tw.Append(row), "hive tweet");
      for (const auto& topic : t.GetField("referred-topics").AsList()) {
        Check(topics->Insert(adm::RecordBuilder()
                                 .Add("row_id", adm::Value::Int64(row_id++))
                                 .Add("message_id", t.GetField("tweetid"))
                                 .Add("tag", topic)
                                 .Build(),
                             false),
              "systx topic");
      }
    }
    Check(systx_tw.PersistAll(), "persist");
    Check(hive_tw.Finalize(), "finalize");
    tweets.systx = systx_tw.TotalDiskBytes();
    tweets.hive = hive_tw.DiskBytes();
  }

  std::printf("\n%-18s %12s %12s %12s\n", "system", "Users", "Messages",
              "Tweets");
  auto row = [](const char* label, uint64_t u, uint64_t m, uint64_t t) {
    std::printf("%-18s %12.2f %12.2f %12.2f\n", label, Mb(u), Mb(m), Mb(t));
  };
  row("Asterix (Schema)", users.schema, messages.schema, tweets.schema);
  row("Asterix (KeyOnly)", users.keyonly, messages.keyonly, tweets.keyonly);
  row("Asterix (Column)", users.column, messages.column, tweets.column);
  row("Syst-X", users.systx, messages.systx, tweets.systx);
  row("Hive", users.hive, messages.hive, tweets.hive);
  row("Mongo", users.mongo, messages.mongo, tweets.mongo);

  // Shape assertions (the claims Table 2 supports).
  bool ok = true;
  auto claim = [&](bool cond, const char* what) {
    std::printf("claim: %-58s %s\n", what, cond ? "HOLDS" : "VIOLATED");
    ok = ok && cond;
  };
  std::printf("\n");
  claim(users.keyonly > users.schema * 3 / 2 &&
            messages.keyonly > messages.schema * 3 / 2,
        "KeyOnly substantially larger than Schema (open-type overhead)");
  claim(users.hive < users.schema / 2 && messages.hive < messages.schema / 2,
        "Hive (ORC columnar) is by far the smallest");
  claim(users.mongo > users.schema && messages.mongo > messages.schema,
        "Mongo (self-describing docs) larger than Asterix Schema");
  claim(tweets.keyonly > tweets.schema, "Tweets: KeyOnly > Schema");
  claim(users.column < users.keyonly && messages.column < messages.keyonly &&
            tweets.column < tweets.keyonly,
        "Columnar format smaller than KeyOnly (no per-record field names)");

  BenchJsonDump dump("table2_sizes");
  dump.Add("users_schema_mb", Mb(users.schema), nullptr);
  dump.Add("users_keyonly_mb", Mb(users.keyonly), nullptr);
  dump.Add("users_column_mb", Mb(users.column), nullptr);
  dump.Add("messages_schema_mb", Mb(messages.schema), nullptr);
  dump.Add("messages_keyonly_mb", Mb(messages.keyonly), nullptr);
  dump.Add("messages_column_mb", Mb(messages.column), nullptr);
  dump.Add("tweets_schema_mb", Mb(tweets.schema), nullptr);
  dump.Add("tweets_keyonly_mb", Mb(tweets.keyonly), nullptr);
  dump.Add("tweets_column_mb", Mb(tweets.column), nullptr);
  dump.Write();
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace asterix

int main() { return asterix::bench::Main(); }
