#ifndef ASTERIX_BENCH_BENCH_COMMON_H_
#define ASTERIX_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <thread>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/asterix.h"
#include "baselines/columnstore.h"
#include "baselines/docstore.h"
#include "baselines/relstore.h"
#include "common/env.h"
#include "common/metrics.h"
#include "workload/generator.h"

namespace asterix {
namespace bench {

/// Scale knobs (env-overridable: ASTERIX_BENCH_USERS etc.). The paper ran
/// ~10^8-scale datasets on a 10-node cluster; these defaults keep a laptop
/// run in seconds while preserving all the relative shapes.
struct BenchScale {
  int64_t users = 20000;
  int64_t messages = 40000;
  int64_t tweets = 40000;

  static BenchScale FromEnv() {
    BenchScale s;
    if (const char* v = std::getenv("ASTERIX_BENCH_USERS")) s.users = atoll(v);
    if (const char* v = std::getenv("ASTERIX_BENCH_MESSAGES")) {
      s.messages = atoll(v);
    }
    if (const char* v = std::getenv("ASTERIX_BENCH_TWEETS")) s.tweets = atoll(v);
    return s;
  }
};

/// Hive's MapReduce job start-up stand-in (per query), microseconds.
constexpr int64_t kHiveJobStartupUs = 30000;

/// Client-server round trip every baseline pays per request (the paper's
/// JDBC / Java-driver clients); AsterixDB's own job start-up already covers
/// this on its side.
constexpr int64_t kClientRoundTripUs = 300;

/// Milliseconds to run `fn` once, median-of-`runs` after one warm-up.
inline double TimeMs(const std::function<void()>& fn, int runs = 3) {
  fn();  // warm-up (the paper discards warm-up runs too)
  std::vector<double> times;
  for (int i = 0; i < runs; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    times.push_back(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// TimeMs plus the per-request client round trip (baseline systems).
inline double BaselineTimeMs(const std::function<void()>& fn, int runs = 3) {
  return TimeMs(
      [&] {
        std::this_thread::sleep_for(
            std::chrono::microseconds(kClientRoundTripUs));
        fn();
      },
      runs);
}

inline void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
inline T CheckResult(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, r.status().ToString().c_str());
    std::exit(1);
  }
  return r.take();
}

/// The five systems of §5.3, loaded with the same synthetic data:
/// AsterixDB with fully declared types (Schema), AsterixDB with key-only
/// open types (KeyOnly), RelStore (System-X), ColumnStore (Hive/ORC), and
/// DocStore (MongoDB).
class BenchEnv {
 public:
  explicit BenchEnv(BenchScale scale, bool with_tweets = false)
      : scale_(scale) {
    dir_ = env::NewScratchDir("asterix-bench");
    workload::Generator gen;
    users_ = gen.MakeUsers(scale.users);
    messages_ = gen.MakeMessages(scale.messages, scale.users);
    if (with_tweets) tweets_ = gen.MakeTweets(scale.tweets, scale.users);

    SetUpAsterix();
    SetUpRelStore();
    SetUpColumnStore();
    SetUpDocStore();
  }

  ~BenchEnv() { env::RemoveAll(dir_); }

  api::AsterixInstance* asterix() { return asterix_.get(); }
  baselines::RelStore* systx() { return systx_.get(); }
  baselines::ColumnStore* hive_users() { return hive_users_.get(); }
  baselines::ColumnStore* hive_messages() { return hive_messages_.get(); }
  baselines::DocStore* mongo_users() { return mongo_users_.get(); }
  baselines::DocStore* mongo_messages() { return mongo_messages_.get(); }

  const std::vector<adm::Value>& users() const { return users_; }
  const std::vector<adm::Value>& messages() const { return messages_; }
  const std::vector<adm::Value>& tweets() const { return tweets_; }
  const BenchScale& scale() const { return scale_; }
  const std::string& dir() const { return dir_; }

  /// Runs an AQL query against the bench dataverse, returning elapsed ms.
  /// The profile of the run's last compiled job is kept for last_profile().
  double RunAql(const std::string& query, size_t* result_count = nullptr) {
    return TimeMs([&] {
      auto r = asterix_->Execute("use dataverse Bench;\n" + query);
      Check(r.ok() ? Status::OK() : r.status(), "aql query");
      if (result_count) *result_count = r.value().values.size();
      if (r.value().stats.profile) last_profile_ = r.value().stats.profile;
    });
  }

  /// JobProfile of the most recent compiled-path query (null before any).
  std::shared_ptr<const hyracks::JobProfile> last_profile() const {
    return last_profile_;
  }

 private:
  void SetUpAsterix();
  void SetUpRelStore();
  void SetUpColumnStore();
  void SetUpDocStore();

  BenchScale scale_;
  std::string dir_;
  std::shared_ptr<const hyracks::JobProfile> last_profile_;
  std::vector<adm::Value> users_, messages_, tweets_;
  std::unique_ptr<api::AsterixInstance> asterix_;
  std::unique_ptr<baselines::RelStore> systx_;
  std::unique_ptr<baselines::ColumnStore> hive_users_, hive_messages_;
  std::unique_ptr<baselines::DocStore> mongo_users_, mongo_messages_;
};

inline void BenchEnv::SetUpAsterix() {
  api::InstanceConfig config;
  config.base_dir = dir_ + "/asterix";
  config.cluster.num_nodes = 2;
  config.cluster.partitions_per_node = 2;
  config.cluster.job_startup_us = 1200;
  asterix_ = std::make_unique<api::AsterixInstance>(config);
  Check(asterix_->Boot(), "asterix boot");

  const char* ddl = R"aql(
create dataverse Bench;
use dataverse Bench;
create type UserType as {
  id: int64, alias: string, name: string, user-since: datetime,
  address: { street: string, city: string, state: string, zip: string,
             country: string },
  friend-ids: {{ int64 }},
  employment: [ { organization-name: string, start-date: date,
                  end-date: date? } ]
}
create type MessageType as closed {
  message-id: int64, author-id: int64, timestamp: datetime,
  in-response-to: int64?, sender-location: point?,
  tags: {{ string }}, message: string
}
create type UserKeyOnly as { id: int64 }
create type MessageKeyOnly as { message-id: int64 }
create dataset Users(UserType) primary key id;
create dataset Messages(MessageType) primary key message-id;
create dataset UsersKeyOnly(UserKeyOnly) primary key id;
create dataset MessagesKeyOnly(MessageKeyOnly) primary key message-id;
create index uSinceIdx on Users(user-since);
create index msTimestampIdx on Messages(timestamp);
create index msAuthorIdx on Messages(author-id) type btree;
create index uSinceIdxK on UsersKeyOnly(user-since);
create index msTimestampIdxK on MessagesKeyOnly(timestamp);
create index msAuthorIdxK on MessagesKeyOnly(author-id) type btree;
)aql";
  auto r = asterix_->Execute(ddl);
  Check(r.ok() ? Status::OK() : r.status(), "bench DDL");

  Check(asterix_->FindDataset("Bench.Users")->LoadBulk(users_), "load users");
  Check(asterix_->FindDataset("Bench.Messages")->LoadBulk(messages_),
        "load messages");
  Check(asterix_->FindDataset("Bench.UsersKeyOnly")->LoadBulk(users_),
        "load users keyonly");
  Check(asterix_->FindDataset("Bench.MessagesKeyOnly")->LoadBulk(messages_),
        "load messages keyonly");
  Check(asterix_->FlushAll(), "flush");
}

inline void BenchEnv::SetUpRelStore() {
  systx_ = std::make_unique<baselines::RelStore>(dir_ + "/systx");
  auto* users = systx_->CreateTable("users", workload::UserTableSchema(), "id");
  auto* friends =
      systx_->CreateTable("user_friends", workload::FriendTableSchema(), "row_id");
  auto* jobs = systx_->CreateTable("user_employment",
                                   workload::EmploymentTableSchema(), "row_id");
  auto* msgs =
      systx_->CreateTable("messages", workload::MessageTableSchema(), "message_id");
  auto* tags =
      systx_->CreateTable("message_tags", workload::TagTableSchema(), "row_id");
  for (const auto& u : users_) {
    auto n = workload::NormalizeUser(u);
    Check(users->Insert(n.user_row, false), "systx user");
    for (const auto& f : n.friend_rows) Check(friends->Insert(f, false), "systx friend");
    for (const auto& e : n.employment_rows) Check(jobs->Insert(e, false), "systx job");
  }
  for (const auto& m : messages_) {
    auto n = workload::NormalizeMessage(m);
    Check(msgs->Insert(n.message_row, false), "systx msg");
    for (const auto& t : n.tag_rows) Check(tags->Insert(t, false), "systx tag");
  }
  // Side tables always carry the FK indexes that reassembly needs.
  Check(friends->CreateIndex("user_id"), "ix");
  Check(jobs->CreateIndex("user_id"), "ix");
  Check(tags->CreateIndex("message_id"), "ix");
}

inline void BenchEnv::SetUpColumnStore() {
  hive_users_ = std::make_unique<baselines::ColumnStore>(
      dir_ + "/hive", "users", workload::UserColumnSchema(), kHiveJobStartupUs);
  hive_messages_ = std::make_unique<baselines::ColumnStore>(
      dir_ + "/hive", "messages", workload::MessageColumnSchema(),
      kHiveJobStartupUs);
  for (const auto& u : users_) {
    Check(hive_users_->Append(workload::NormalizeUser(u).user_row), "hive user");
  }
  for (const auto& m : messages_) {
    Check(hive_messages_->Append(workload::NormalizeMessage(m).message_row),
          "hive message");
  }
  Check(hive_users_->Finalize(), "hive finalize");
  Check(hive_messages_->Finalize(), "hive finalize");
}

inline void BenchEnv::SetUpDocStore() {
  mongo_users_ =
      std::make_unique<baselines::DocStore>(dir_ + "/mongo", "users", "id");
  mongo_messages_ = std::make_unique<baselines::DocStore>(dir_ + "/mongo",
                                                          "messages",
                                                          "message-id");
  Check(mongo_users_->LoadBulk(users_), "mongo users");
  Check(mongo_messages_->LoadBulk(messages_), "mongo messages");
}

/// p50/p95/p99 of a latency histogram as a JSON object.
inline std::string HistogramPercentilesJson(const char* metric) {
  const metrics::Histogram* h =
      metrics::MetricsRegistry::Default().GetHistogram(metric);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{ \"count\": %llu, \"p50\": %.1f, \"p95\": %.1f, "
                "\"p99\": %.1f }",
                static_cast<unsigned long long>(h->count()),
                h->Percentile(0.50), h->Percentile(0.95), h->Percentile(0.99));
  return buf;
}

/// The standard latency-percentile block every bench dump carries: job
/// end-to-end latency plus the storage/txn stall histograms.
inline std::string LatencyPercentilesJson() {
  return "{ \"job_us\": " +
         std::string(HistogramPercentilesJson("hyracks.job_us")) +
         ", \"lsm_flush_us\": " +
         HistogramPercentilesJson("storage.lsm.flush_us") +
         ", \"lsm_merge_us\": " +
         HistogramPercentilesJson("storage.lsm.merge_us") +
         ", \"lock_wait_us\": " +
         HistogramPercentilesJson("txn.lock.wait_us") + " }";
}

/// Printed percentile summary line for bench stdout tables.
inline void PrintJobPercentiles(const char* label) {
  const metrics::Histogram* h =
      metrics::MetricsRegistry::Default().GetHistogram("hyracks.job_us");
  std::printf("%-18s n=%llu p50=%.0fus p95=%.0fus p99=%.0fus\n", label,
              static_cast<unsigned long long>(h->count()),
              h->Percentile(0.50), h->Percentile(0.95), h->Percentile(0.99));
}

/// Accumulates per-query timings/JobProfiles and writes BENCH_<name>.json
/// (queries array + latency percentiles + a process-wide MetricsRegistry
/// snapshot) into the working directory, so a bench run leaves a
/// machine-readable record of what every operator actually did.
class BenchJsonDump {
 public:
  explicit BenchJsonDump(std::string name) : name_(std::move(name)) {}

  /// When set, Write() embeds the instance's monitoring view — the final
  /// sampled history ring and the watchdog health summary — so a bench run
  /// records trends over its whole duration, not just end totals.
  void SetInstance(api::AsterixInstance* db) { db_ = db; }

  void Add(const std::string& label, double ms,
           const std::shared_ptr<const hyracks::JobProfile>& profile) {
    if (!entries_.empty()) entries_ += ", ";
    entries_ += "{ \"label\": \"" + label +
                "\", \"ms\": " + std::to_string(ms);
    if (profile) entries_ += ", \"profile\": " + profile->ToJson();
    entries_ += " }";
  }

  void Write() {
    std::string out = "{ \"bench\": \"" + name_ + "\", \"queries\": [ " +
                      entries_ + " ], \"latency_percentiles\": " +
                      LatencyPercentilesJson() + ", \"metrics\": " +
                      api::AsterixInstance::MetricsJson();
    if (db_ != nullptr) {
      if (db_->sampler() != nullptr) db_->sampler()->SampleNow();
      out += ", \"health\": " +
             (db_->watchdog() != nullptr ? db_->watchdog()->SummaryJson()
                                         : std::string("null")) +
             ", \"history\": " + db_->HistoryJson(120);
    }
    out += " }";
    std::string path = "BENCH_" + name_ + ".json";
    Check(env::WriteFileAtomic(path, out.data(), out.size()), "bench dump");
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::string entries_;
  api::AsterixInstance* db_ = nullptr;
};

/// Printed table row helper.
inline void PrintRow(const char* label, double a_schema, double a_keyonly,
                     double systx, double hive, bool hive_real, double mongo) {
  std::printf("%-18s %12.2f %12.2f %12.2f ", label, a_schema, a_keyonly, systx);
  if (hive_real) {
    std::printf("%12.2f ", hive);
  } else {
    std::printf("%10.2f() ", hive);
  }
  std::printf("%12.2f\n", mongo);
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-18s %12s %12s %12s %12s %12s\n", "query", "Ast(Schema)",
              "Ast(KeyOnly)", "Syst-X", "Hive", "Mongo");
}

}  // namespace bench
}  // namespace asterix

#endif  // ASTERIX_BENCH_BENCH_COMMON_H_
