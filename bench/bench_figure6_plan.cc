// Regenerates Figure 6 of the paper: the Hyracks job compiled for Query 10
// (average message length over a time range, with a secondary index on the
// timestamp). The figure's shape, bottom-up:
//
//   btree search (secondary msTimestampIdx)   <- constant bounds
//     |1:1|  sort (primary keys)
//     |1:1|  btree search (primary MugshotMessages)
//     |1:1|  assign + select (post-validation re-check, see paper SS4.4)
//     |1:1|  aggregate local-avg
//     |n:1 replicating|  aggregate global-avg
//
// This binary compiles the query through the real AQL -> Algebricks ->
// Hyracks stack, prints the logical plan, the job, and the activity/stage
// decomposition, and asserts the operator/connector shape.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/asterix.h"
#include "common/env.h"

namespace {

using asterix::api::AsterixInstance;
using asterix::api::InstanceConfig;

bool Contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

int Main() {
  std::string dir = asterix::env::NewScratchDir("figure6");
  InstanceConfig config;
  config.base_dir = dir;
  config.cluster.num_nodes = 2;
  config.cluster.partitions_per_node = 2;
  config.cluster.job_startup_us = 0;
  AsterixInstance instance(config);
  if (!instance.Boot().ok()) return 1;

  auto ddl = instance.Execute(R"aql(
create dataverse TinySocial;
use dataverse TinySocial;
create type MugshotMessageType as closed {
  message-id: int64, author-id: int64, timestamp: datetime,
  in-response-to: int64?, sender-location: point?,
  tags: {{ string }}, message: string
}
create dataset MugshotMessages(MugshotMessageType) primary key message-id;
create index msTimestampIdx on MugshotMessages(timestamp);
)aql");
  if (!ddl.ok()) {
    std::fprintf(stderr, "DDL failed: %s\n", ddl.status().ToString().c_str());
    return 1;
  }

  // The paper's Query 10.
  auto plan = instance.Explain(R"aql(
use dataverse TinySocial;
avg(for $m in dataset MugshotMessages
    where $m.timestamp >= datetime("2014-01-01T00:00:00")
      and $m.timestamp < datetime("2014-04-01T00:00:00")
    return string-length($m.message))
)aql");
  if (!plan.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 6 reproduction: the Hyracks job for Query 10\n");
  std::printf("\n--- optimized Algebricks plan ---\n%s",
              plan.value().logical_plan.c_str());
  std::printf("\n--- Hyracks job (operators x parallelism, connectors) ---\n%s",
              plan.value().job_plan.c_str());
  std::printf("\n--- activities & stages ---\n%s",
              plan.value().stage_plan.c_str());

  // Assert the figure's shape.
  const std::string& job = plan.value().job_plan;
  bool ok = true;
  auto claim = [&](bool cond, const char* what) {
    std::printf("claim: %-62s %s\n", what, cond ? "HOLDS" : "VIOLATED");
    ok = ok && cond;
  };
  std::printf("\n");
  claim(Contains(job, "btree-search(msTimestampIdx)"),
        "plan starts with the secondary-index search");
  claim(Contains(job, "sort"),
        "primary keys are sorted before the primary lookups");
  claim(Contains(job, "btree-search(MugshotMessages.primary)"),
        "sorted keys drive the primary-index search");
  claim(Contains(job, "select"),
        "a post-validation select re-checks the predicate (SS4.4)");
  claim(Contains(job, "local-aggregate") && Contains(job, "global-aggregate"),
        "avg splits into local + global aggregation");
  claim(Contains(job, "n:1 replicating"),
        "an n:1 replicating connector feeds the single global aggregate");
  // Everything below the replicating connector is 1:1 (no redistribution).
  size_t repl = job.find("n:1 replicating");
  std::string upstream = job.substr(0, repl == std::string::npos ? 0 : repl);
  claim(!Contains(upstream, "partitioning"),
        "no data redistribution below the replicating connector");

  asterix::env::RemoveAll(dir);
  return ok ? 0 : 1;
}

}  // namespace

int main() { return Main(); }
