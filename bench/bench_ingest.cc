// Sustained-ingest bench: N writer threads hammer transactional inserts at
// one dataset with a deliberately tiny memory-component budget, so the run
// is dominated by LSM maintenance. The bench runs the same workload twice —
// once with the background compaction scheduler (flushes/merges off the
// ingest path) and once with ASTERIX_INGEST_SYNC=1 forcing the old inline
// behaviour — and reports, per phase: sustained throughput, rolling 100 ms
// throughput windows (the "does ingest flatline during a flush?" signal),
// client-visible insert-latency percentiles, the per-phase write-stall
// histogram (count/sum/p99/max), and final write amplification. Results
// land in BENCH_ingest.json; with ASTERIX_BENCH_REQUIRE_INGEST_SPEEDUP=1
// the run fails unless async holds at least
// ASTERIX_BENCH_INGEST_MIN_SPEEDUP (default 0.9) of sync throughput and
// its p99 write-stall stays within ASTERIX_BENCH_INGEST_STALL_MARGIN
// (default 1.25x) of sync — a tolerance band, because short A/B phases on
// shared runners are noisy.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/asterix.h"
#include "common/env.h"
#include "common/metrics.h"

namespace {

using namespace asterix;

int64_t EnvInt(const char* name, int64_t fallback) {
  if (const char* v = std::getenv(name)) return atoll(v);
  return fallback;
}

double EnvDouble(const char* name, double fallback) {
  if (const char* v = std::getenv(name)) return atof(v);
  return fallback;
}

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  return (*v)[idx];
}

struct PhaseResult {
  uint64_t records = 0;
  double elapsed_s = 0;
  double throughput_rps = 0;
  std::vector<double> windows_rps;  // rolling 100 ms windows
  std::vector<double> insert_us;    // per-insert client-visible latency
  uint64_t errors = 0;
  uint64_t stall_count = 0;  // storage.lsm.write_stall_us, this phase only
  uint64_t stall_sum_us = 0;
  double stall_p99_us = 0;
  uint64_t stall_max_us = 0;
  uint64_t bytes_ingested = 0;
  uint64_t bytes_flushed = 0;
  uint64_t bytes_merged = 0;
  double write_amp = 0;
  std::string compaction_json = "{ \"enabled\": false }";
};

// One full ingest phase against a fresh instance. `async` drives the
// ASTERIX_INGEST_SYNC boot knob — the same switch an operator would flip —
// so the two phases differ only in where maintenance runs.
PhaseResult RunPhase(bool async, int writers, double seconds,
                     size_t mem_budget, size_t payload_bytes) {
  if (async) {
    unsetenv("ASTERIX_INGEST_SYNC");
  } else {
    setenv("ASTERIX_INGEST_SYNC", "1", 1);
  }

  auto& reg = metrics::MetricsRegistry::Default();
  const uint64_t ingested0 =
      reg.GetCounter("storage.lsm.bytes_ingested")->value();
  const uint64_t flushed0 = reg.GetCounter("storage.lsm.bytes_flushed")->value();
  const uint64_t merged0 = reg.GetCounter("storage.lsm.bytes_merged")->value();
  // The stall histogram is reset per phase so its percentiles are exact for
  // this phase (counter deltas can't recover a percentile).
  metrics::Histogram* stall_h =
      reg.GetHistogram("storage.lsm.write_stall_us");
  stall_h->Reset();

  PhaseResult out;
  std::string dir =
      env::NewScratchDir(async ? "ingest-async" : "ingest-sync");
  {
    api::InstanceConfig config;
    config.base_dir = dir;
    config.cluster.num_nodes = 1;
    config.cluster.partitions_per_node = 2;
    config.cluster.job_startup_us = 0;
    config.enable_monitoring = false;
    config.lsm.mem_budget_bytes = mem_budget;
    api::AsterixInstance db(config);
    if (!db.Boot().ok()) return out;
    auto ddl = db.Execute(R"aql(
create dataverse Ing; use dataverse Ing;
create type T as { id: int64, v: int64, payload: string }
create dataset D(T) primary key id;
)aql");
    if (!ddl.ok()) {
      std::fprintf(stderr, "ddl: %s\n", ddl.status().ToString().c_str());
      return out;
    }
    storage::PartitionedDataset* ds = db.FindDataset("Ing.D");
    if (ds == nullptr) return out;

    // Payload sized so the run is maintenance-bound: ingest byte volume —
    // and with write amplification, flush+merge volume — has to be large
    // relative to the per-record transactional overhead for the off-path
    // maintenance win to be visible.
    const std::string payload(payload_bytes, 'x');
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> total{0};
    std::vector<std::vector<double>> lat(static_cast<size_t>(writers));
    std::vector<uint64_t> errors(static_cast<size_t>(writers), 0);
    std::vector<std::thread> threads;
    auto start = std::chrono::steady_clock::now();
    for (int wtr = 0; wtr < writers; ++wtr) {
      threads.emplace_back([&, wtr] {
        std::vector<double>& my_lat = lat[static_cast<size_t>(wtr)];
        int64_t seq = 0;
        while (!stop.load(std::memory_order_acquire)) {
          int64_t id =
              static_cast<int64_t>(wtr) * 1'000'000'000 + seq++;
          adm::Value rec = adm::RecordBuilder()
                               .Add("id", adm::Value::Int64(id))
                               .Add("v", adm::Value::Int64(id % 97))
                               .Add("payload", adm::Value::String(payload))
                               .Build();
          auto t0 = std::chrono::steady_clock::now();
          Status st = ds->Insert(rec);
          double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
          my_lat.push_back(us);
          if (st.ok()) {
            total.fetch_add(1, std::memory_order_relaxed);
          } else {
            ++errors[static_cast<size_t>(wtr)];
          }
        }
      });
    }
    // Rolling windows: sample the shared counter every 100 ms. A flush that
    // stalls every writer shows up as a near-zero window.
    uint64_t last = 0;
    auto deadline =
        start + std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000));
    while (std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      uint64_t now = total.load(std::memory_order_relaxed);
      out.windows_rps.push_back(static_cast<double>(now - last) * 10.0);
      last = now;
    }
    stop = true;
    for (auto& t : threads) t.join();
    out.elapsed_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    out.records = total.load();
    for (int wtr = 0; wtr < writers; ++wtr) {
      auto& l = lat[static_cast<size_t>(wtr)];
      out.insert_us.insert(out.insert_us.end(), l.begin(), l.end());
      out.errors += errors[static_cast<size_t>(wtr)];
    }
    out.throughput_rps =
        out.elapsed_s > 0 ? static_cast<double>(out.records) / out.elapsed_s
                          : 0;
    // Barrier-drain all maintenance before reading write-amp counters so
    // both modes account the same physical work.
    (void)ds->FlushAll();
    if (db.compaction() != nullptr) {
      out.compaction_json = db.compaction()->StatsJson();
    }
  }
  out.bytes_ingested =
      reg.GetCounter("storage.lsm.bytes_ingested")->value() - ingested0;
  out.bytes_flushed =
      reg.GetCounter("storage.lsm.bytes_flushed")->value() - flushed0;
  out.bytes_merged =
      reg.GetCounter("storage.lsm.bytes_merged")->value() - merged0;
  out.stall_count = stall_h->count();
  out.stall_sum_us = stall_h->sum();
  out.stall_p99_us = stall_h->Percentile(0.99);
  out.stall_max_us = stall_h->max();
  out.write_amp =
      out.bytes_ingested > 0
          ? static_cast<double>(out.bytes_flushed + out.bytes_merged) /
                static_cast<double>(out.bytes_ingested)
          : 0;
  env::RemoveAll(dir);
  return out;
}

std::string PhaseJson(const char* name, PhaseResult* r) {
  char buf[512];
  std::string out = std::string("\"") + name + "\": { ";
  out += "\"records\": " + std::to_string(r->records);
  out += ", \"errors\": " + std::to_string(r->errors);
  std::snprintf(buf, sizeof(buf),
                ", \"elapsed_s\": %.2f, \"throughput_rps\": %.0f",
                r->elapsed_s, r->throughput_rps);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      ", \"insert_latency_us\": { \"p50\": %.1f, \"p95\": %.1f, \"p99\": "
      "%.1f, \"p999\": %.1f, \"max\": %.1f }",
      Percentile(&r->insert_us, 0.50), Percentile(&r->insert_us, 0.95),
      Percentile(&r->insert_us, 0.99), Percentile(&r->insert_us, 0.999),
      r->insert_us.empty()
          ? 0.0
          : *std::max_element(r->insert_us.begin(), r->insert_us.end()));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ", \"write_stall\": { \"count\": %llu, \"sum_us\": %llu, "
                "\"p99_us\": %.1f, \"max_us\": %llu }",
                static_cast<unsigned long long>(r->stall_count),
                static_cast<unsigned long long>(r->stall_sum_us),
                r->stall_p99_us,
                static_cast<unsigned long long>(r->stall_max_us));
  out += buf;
  out += ", \"bytes_ingested\": " + std::to_string(r->bytes_ingested);
  out += ", \"bytes_flushed\": " + std::to_string(r->bytes_flushed);
  out += ", \"bytes_merged\": " + std::to_string(r->bytes_merged);
  std::snprintf(buf, sizeof(buf), ", \"write_amp\": %.2f", r->write_amp);
  out += buf;
  // Windows: the throughput-over-time series.
  out += ", \"windows_rps\": [ ";
  for (size_t i = 0; i < r->windows_rps.size(); ++i) {
    if (i) out += ", ";
    std::snprintf(buf, sizeof(buf), "%.0f", r->windows_rps[i]);
    out += buf;
  }
  out += " ], \"compaction\": " + r->compaction_json + " }";
  return out;
}

int Main() {
  const int writers = static_cast<int>(EnvInt("ASTERIX_INGEST_WRITERS", 4));
  const double seconds =
      static_cast<double>(EnvInt("ASTERIX_INGEST_SECONDS", 3));
  const size_t mem_budget = static_cast<size_t>(
      EnvInt("ASTERIX_INGEST_MEM_BUDGET", 1024 * 1024));
  const size_t payload_bytes =
      static_cast<size_t>(EnvInt("ASTERIX_INGEST_PAYLOAD", 2048));
  // Preserve the caller's knob (RunPhase overrides it per phase).
  const char* prior_sync = std::getenv("ASTERIX_INGEST_SYNC");

  std::printf(
      "ingest bench: %d writers, %.1fs per phase, %zu-byte budget, "
      "%zu-byte payload\n",
      writers, seconds, mem_budget, payload_bytes);
  PhaseResult sync =
      RunPhase(/*async=*/false, writers, seconds, mem_budget, payload_bytes);
  std::printf("  sync:  %llu records, %.0f rps, p99 insert %.0f us, "
              "stalls %llu (p99 %.0f us), write-amp %.2f\n",
              static_cast<unsigned long long>(sync.records),
              sync.throughput_rps, Percentile(&sync.insert_us, 0.99),
              static_cast<unsigned long long>(sync.stall_count),
              sync.stall_p99_us, sync.write_amp);
  PhaseResult async =
      RunPhase(/*async=*/true, writers, seconds, mem_budget, payload_bytes);
  std::printf("  async: %llu records, %.0f rps, p99 insert %.0f us, "
              "stalls %llu (p99 %.0f us), write-amp %.2f\n",
              static_cast<unsigned long long>(async.records),
              async.throughput_rps, Percentile(&async.insert_us, 0.99),
              static_cast<unsigned long long>(async.stall_count),
              async.stall_p99_us, async.write_amp);
  if (prior_sync != nullptr) {
    setenv("ASTERIX_INGEST_SYNC", prior_sync, 1);
  } else {
    unsetenv("ASTERIX_INGEST_SYNC");
  }

  double speedup = sync.throughput_rps > 0
                       ? async.throughput_rps / sync.throughput_rps
                       : 0;
  double sync_p99 = Percentile(&sync.insert_us, 0.99);
  double async_p99 = Percentile(&async.insert_us, 0.99);
  std::printf(
      "  speedup: %.2fx throughput, p99 write-stall %.0f -> %.0f us\n",
      speedup, sync.stall_p99_us, async.stall_p99_us);

  char buf[256];
  std::string out = "{ \"bench\": \"ingest\", \"writers\": " +
                    std::to_string(writers) +
                    ", \"mem_budget_bytes\": " + std::to_string(mem_budget) +
                    ", \"payload_bytes\": " + std::to_string(payload_bytes) +
                    ", ";
  out += PhaseJson("sync", &sync) + ", ";
  out += PhaseJson("async", &async) + ", ";
  std::snprintf(buf, sizeof(buf),
                "\"speedup\": %.3f, \"p99_insert_us\": { \"sync\": %.1f, "
                "\"async\": %.1f }, \"p99_write_stall_us\": { \"sync\": %.1f, "
                "\"async\": %.1f }, ",
                speedup, sync_p99, async_p99, sync.stall_p99_us,
                async.stall_p99_us);
  out += buf;
  out += "\"metrics\": " + api::AsterixInstance::MetricsJson() + " }";
  if (!env::WriteFileAtomic("BENCH_ingest.json", out.data(), out.size())
           .ok()) {
    return 1;
  }
  std::printf("wrote BENCH_ingest.json\n");

  if (EnvInt("ASTERIX_BENCH_REQUIRE_INGEST_SPEEDUP", 0) != 0) {
    // Short A/B phases on shared CI runners are noisy (neighbor load can
    // swing either phase by tens of percent), so the gate carries a
    // tolerance margin: it catches the regression it exists for — async
    // collapsing back to sync-like behaviour — without failing the build
    // on scheduler jitter. Local runs can tighten it via the env knobs.
    double min_speedup = EnvDouble("ASTERIX_BENCH_INGEST_MIN_SPEEDUP", 0.9);
    double stall_margin =
        EnvDouble("ASTERIX_BENCH_INGEST_STALL_MARGIN", 1.25);
    if (speedup < min_speedup) {
      std::fprintf(stderr,
                   "FAIL: async ingest (%.0f rps) fell below %.2fx of sync "
                   "(%.0f rps): speedup %.2fx\n",
                   async.throughput_rps, min_speedup, sync.throughput_rps,
                   speedup);
      return 1;
    }
    // A stall-free async phase trivially satisfies the p99 criterion even
    // if a stall-free sync phase does too (workload not maintenance-bound).
    bool stall_ok =
        async.stall_count == 0 ||
        async.stall_p99_us <= sync.stall_p99_us * stall_margin;
    if (!stall_ok) {
      std::fprintf(stderr,
                   "FAIL: async p99 write-stall (%.0f us) exceeded %.2fx "
                   "of sync (%.0f us)\n",
                   async.stall_p99_us, stall_margin, sync.stall_p99_us);
      return 1;
    }
    std::printf("ingest gate passed (%.2fx, p99 stall %.0f -> %.0f us)\n",
                speedup, sync.stall_p99_us, async.stall_p99_us);
  }
  return 0;
}

}  // namespace

int main() { return Main(); }
