#ifndef ASTERIX_BENCH_WORKLOAD_GENERATOR_H_
#define ASTERIX_BENCH_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "adm/type.h"
#include "adm/value.h"
#include "baselines/columnstore.h"
#include "baselines/relstore.h"

namespace asterix {
namespace workload {

/// Deterministic generators for the paper's three synthetic datasets
/// (§5.3.1: users, messages, and tweets, "populated with synthetic data",
/// schema per Data definition 1). Message timestamps advance exactly one
/// second per message id, so a time range of N seconds selects exactly N
/// records — which is how the benches pin the paper's "300 / 3000 / 30000
/// records pass the filter" selectivities.
class Generator {
 public:
  explicit Generator(uint32_t seed = 20140701) : rng_(seed) {}

  adm::Value MakeUser(int64_t id);
  adm::Value MakeMessage(int64_t id, int64_t num_users);
  adm::Value MakeTweet(int64_t id, int64_t num_users);

  std::vector<adm::Value> MakeUsers(int64_t n);
  std::vector<adm::Value> MakeMessages(int64_t n, int64_t num_users);
  std::vector<adm::Value> MakeTweets(int64_t n, int64_t num_users);

  /// Epoch millis of message id 0; message id k is at +k seconds.
  static int64_t MessageEpochMillis();

 private:
  std::string RandomName();
  std::string RandomText(int words);

  std::mt19937 rng_;
};

// --- ADM types ---------------------------------------------------------------

/// Fully declared (closed-ish open) types — the paper's "Schema" variant.
adm::DatatypePtr UserTypeSchema();
adm::DatatypePtr MessageTypeSchema();
adm::DatatypePtr TweetTypeSchema();

/// Open types declaring only the primary key — the "KeyOnly" variant whose
/// instances must carry all field names (Table 2's larger footprint).
adm::DatatypePtr UserTypeKeyOnly();
adm::DatatypePtr MessageTypeKeyOnly();
adm::DatatypePtr TweetTypeKeyOnly();

// --- Normalized relational schemas (System-X / Hive, §5.3.1) ------------------

/// Flattens one user into (users row, friends rows, employment rows) — the
/// normalization the paper applied for System-X and Hive.
struct NormalizedUser {
  adm::Value user_row;
  std::vector<adm::Value> friend_rows;      // (user_id, friend_id, seq)
  std::vector<adm::Value> employment_rows;  // (user_id, seq, org, start, end)
};
NormalizedUser NormalizeUser(const adm::Value& user);

/// Flattens one message into (message row, tag rows).
struct NormalizedMessage {
  adm::Value message_row;
  std::vector<adm::Value> tag_rows;  // (message_id, tag, seq)
};
NormalizedMessage NormalizeMessage(const adm::Value& message);

std::vector<baselines::RelTable::ColumnDef> UserTableSchema();
std::vector<baselines::RelTable::ColumnDef> FriendTableSchema();
std::vector<baselines::RelTable::ColumnDef> EmploymentTableSchema();
std::vector<baselines::RelTable::ColumnDef> MessageTableSchema();
std::vector<baselines::RelTable::ColumnDef> TagTableSchema();

std::vector<baselines::ColumnStore::ColumnDef> UserColumnSchema();
std::vector<baselines::ColumnStore::ColumnDef> MessageColumnSchema();

}  // namespace workload
}  // namespace asterix

#endif  // ASTERIX_BENCH_WORKLOAD_GENERATOR_H_
