#include "workload/generator.h"

#include "adm/temporal.h"

namespace asterix {
namespace workload {

using adm::Datatype;
using adm::DatatypePtr;
using adm::RecordBuilder;
using adm::TypeTag;
using adm::Value;

namespace {

const char* kFirstNames[] = {"Margarita", "Isbel",  "Emory",   "Nicholas",
                             "Von",       "Willis", "Suzanna", "Nila",
                             "Woodrow",   "Bram",   "Jay",     "Ria"};
const char* kLastNames[] = {"Stoddard", "Dull",   "Unk",    "Stroh",
                            "Kemble",   "Wynne",  "Tillson", "Milom",
                            "Nehling",  "Hygh",   "Cash",   "Haukness"};
const char* kStreets[] = {"Thomas St", "James Ave", "E Oak St", "Hill St",
                          "View St",   "Cedar St",  "Lake Rd",  "Main St"};
const char* kCities[] = {"San Hugo", "San Vente", "Ayend", "Oranje",
                         "Mico",     "Sunwood",   "Derry", "Casper"};
const char* kStates[] = {"WA", "CA", "OR", "CO", "UT", "NV", "AZ", "ID"};
const char* kOrgs[] = {"Codetechno", "Hexviane", "geomedia", "Zamcorporation",
                       "Kongreen",   "Labzatron", "physcane", "Newhotplus"};
const char* kVendors[] = {"samsung", "verizon", "motorola", "sprint",
                          "at&t",    "iphone",  "t-mobile", "nokia"};
const char* kAspects[] = {"platform",       "voice-clarity", "speed",
                          "voice-command",  "reachability",  "signal",
                          "shortcut-menu",  "touch-screen",  "plan",
                          "customization"};
const char* kFeelings[] = {"love", "like", "dislike", "hate", "can't stand"};
const char* kRatings[] = {"awesome", "good",         "OK",
                          "bad",     "terrible",     "mind-blowing",
                          "amazing", "horrible"};

constexpr int64_t kMillisPerSecond = 1000;

}  // namespace

int64_t Generator::MessageEpochMillis() {
  // 2014-01-01T00:00:00Z.
  static const int64_t kEpoch =
      adm::DaysFromCivil(2014, 1, 1) * 24LL * 3600 * 1000;
  return kEpoch;
}

std::string Generator::RandomName() {
  return std::string(kFirstNames[rng_() % 12]) + kLastNames[rng_() % 12];
}

std::string Generator::RandomText(int words) {
  std::string out = " ";
  out += kFeelings[rng_() % 5];
  out += " ";
  out += kVendors[rng_() % 8];
  out += " the ";
  out += kAspects[rng_() % 10];
  out += " is ";
  out += kRatings[rng_() % 8];
  for (int i = 0; i < words; ++i) {
    out += " ";
    out += kAspects[rng_() % 10];
  }
  return out;
}

Value Generator::MakeUser(int64_t id) {
  int nfriends = 1 + static_cast<int>(rng_() % 10);
  std::vector<Value> friends;
  for (int i = 0; i < nfriends; ++i) {
    friends.push_back(Value::Int64(static_cast<int64_t>(rng_() % 100000)));
  }
  int njobs = 1 + static_cast<int>(rng_() % 3);
  std::vector<Value> jobs;
  for (int i = 0; i < njobs; ++i) {
    int32_t start =
        static_cast<int32_t>(adm::DaysFromCivil(2002 + rng_() % 10, 1 + rng_() % 12,
                                                1 + rng_() % 28));
    RecordBuilder job;
    job.Add("organization-name", Value::String(kOrgs[rng_() % 8]))
        .Add("start-date", Value::Date(start));
    if (rng_() % 2 == 0) {
      job.Add("end-date", Value::Date(start + static_cast<int32_t>(rng_() % 2000)));
    }
    jobs.push_back(job.Build());
  }
  // user-since advances one second per user id: range selections over users
  // have exactly controllable cardinalities too.
  int64_t since = adm::DaysFromCivil(2010, 1, 1) * 24LL * 3600 * 1000 +
                  id * kMillisPerSecond;
  char zip[8];
  std::snprintf(zip, sizeof(zip), "%05u", 10000 + static_cast<unsigned>(rng_() % 89999));
  return RecordBuilder()
      .Add("id", Value::Int64(id))
      .Add("alias", Value::String("u" + std::to_string(id)))
      .Add("name", Value::String(RandomName()))
      .Add("user-since", Value::Datetime(since))
      .Add("address",
           RecordBuilder()
               .Add("street", Value::String(std::to_string(100 + rng_() % 899) +
                                             " " + kStreets[rng_() % 8]))
               .Add("city", Value::String(kCities[rng_() % 8]))
               .Add("state", Value::String(kStates[rng_() % 8]))
               .Add("zip", Value::String(zip))
               .Add("country", Value::String("USA"))
               .Build())
      .Add("friend-ids", Value::Bag(std::move(friends)))
      .Add("employment", Value::OrderedList(std::move(jobs)))
      .Build();
}

Value Generator::MakeMessage(int64_t id, int64_t num_users) {
  std::vector<Value> tags;
  tags.push_back(Value::String(kVendors[rng_() % 8]));
  tags.push_back(Value::String(kAspects[rng_() % 10]));
  RecordBuilder b;
  b.Add("message-id", Value::Int64(id))
      .Add("author-id", Value::Int64(static_cast<int64_t>(rng_()) % num_users))
      .Add("timestamp",
           Value::Datetime(MessageEpochMillis() + id * kMillisPerSecond));
  if (rng_() % 3 != 0) {
    b.Add("in-response-to", Value::Int64(static_cast<int64_t>(rng_() % 1000)));
  }
  b.Add("sender-location",
        Value::Point(24.0 + (rng_() % 25000) / 1000.0,
                     66.0 + (rng_() % 58000) / 1000.0))
      .Add("tags", Value::Bag(std::move(tags)))
      .Add("message", Value::String(RandomText(1 + rng_() % 3)));
  return b.Build();
}

Value Generator::MakeTweet(int64_t id, int64_t num_users) {
  std::vector<Value> hashtags;
  hashtags.push_back(Value::String(kAspects[rng_() % 10]));
  if (rng_() % 2) hashtags.push_back(Value::String(kVendors[rng_() % 8]));
  RecordBuilder user;
  user.Add("screen-name", Value::String("user" + std::to_string(static_cast<int64_t>(rng_()) % num_users)))
      .Add("lang", Value::String("en"))
      .Add("friends_count", Value::Int64(static_cast<int64_t>(rng_() % 1000)))
      .Add("statuses_count", Value::Int64(static_cast<int64_t>(rng_() % 10000)))
      .Add("followers_count", Value::Int64(static_cast<int64_t>(rng_() % 5000)));
  return RecordBuilder()
      .Add("tweetid", Value::Int64(id))
      .Add("user", user.Build())
      .Add("sender-location",
           Value::Point(24.0 + (rng_() % 25000) / 1000.0,
                        66.0 + (rng_() % 58000) / 1000.0))
      .Add("send-time",
           Value::Datetime(MessageEpochMillis() + id * kMillisPerSecond))
      .Add("referred-topics", Value::Bag(std::move(hashtags)))
      .Add("message-text", Value::String(RandomText(6 + rng_() % 10)))
      .Build();
}

std::vector<Value> Generator::MakeUsers(int64_t n) {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.push_back(MakeUser(i));
  return out;
}

std::vector<Value> Generator::MakeMessages(int64_t n, int64_t num_users) {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.push_back(MakeMessage(i, num_users));
  return out;
}

std::vector<Value> Generator::MakeTweets(int64_t n, int64_t num_users) {
  std::vector<Value> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) out.push_back(MakeTweet(i, num_users));
  return out;
}

// --- Types --------------------------------------------------------------------

DatatypePtr UserTypeSchema() {
  auto address = Datatype::MakeRecord(
      "AddressType",
      {{"street", Datatype::Primitive(TypeTag::kString), false},
       {"city", Datatype::Primitive(TypeTag::kString), false},
       {"state", Datatype::Primitive(TypeTag::kString), false},
       {"zip", Datatype::Primitive(TypeTag::kString), false},
       {"country", Datatype::Primitive(TypeTag::kString), false}},
      false);
  auto employment = Datatype::MakeRecord(
      "EmploymentType",
      {{"organization-name", Datatype::Primitive(TypeTag::kString), false},
       {"start-date", Datatype::Primitive(TypeTag::kDate), false},
       {"end-date", Datatype::Primitive(TypeTag::kDate), true}},
      true);
  return Datatype::MakeRecord(
      "UserType",
      {{"id", Datatype::Primitive(TypeTag::kInt64), false},
       {"alias", Datatype::Primitive(TypeTag::kString), false},
       {"name", Datatype::Primitive(TypeTag::kString), false},
       {"user-since", Datatype::Primitive(TypeTag::kDatetime), false},
       {"address", address, false},
       {"friend-ids", Datatype::MakeBag(Datatype::Primitive(TypeTag::kInt64)),
        false},
       {"employment", Datatype::MakeOrderedList(employment), false}},
      true);
}

DatatypePtr MessageTypeSchema() {
  return Datatype::MakeRecord(
      "MessageType",
      {{"message-id", Datatype::Primitive(TypeTag::kInt64), false},
       {"author-id", Datatype::Primitive(TypeTag::kInt64), false},
       {"timestamp", Datatype::Primitive(TypeTag::kDatetime), false},
       {"in-response-to", Datatype::Primitive(TypeTag::kInt64), true},
       {"sender-location", Datatype::Primitive(TypeTag::kPoint), true},
       {"tags", Datatype::MakeBag(Datatype::Primitive(TypeTag::kString)),
        false},
       {"message", Datatype::Primitive(TypeTag::kString), false}},
      false);
}

DatatypePtr TweetTypeSchema() {
  auto twitter_user = Datatype::MakeRecord(
      "TwitterUserType",
      {{"screen-name", Datatype::Primitive(TypeTag::kString), false},
       {"lang", Datatype::Primitive(TypeTag::kString), false},
       {"friends_count", Datatype::Primitive(TypeTag::kInt64), false},
       {"statuses_count", Datatype::Primitive(TypeTag::kInt64), false},
       {"followers_count", Datatype::Primitive(TypeTag::kInt64), false}},
      true);
  return Datatype::MakeRecord(
      "TweetType",
      {{"tweetid", Datatype::Primitive(TypeTag::kInt64), false},
       {"user", twitter_user, false},
       {"sender-location", Datatype::Primitive(TypeTag::kPoint), true},
       {"send-time", Datatype::Primitive(TypeTag::kDatetime), false},
       {"referred-topics",
        Datatype::MakeBag(Datatype::Primitive(TypeTag::kString)), false},
       {"message-text", Datatype::Primitive(TypeTag::kString), false}},
      true);
}

namespace {
DatatypePtr KeyOnly(const char* name, const char* key) {
  return Datatype::MakeRecord(
      name, {{key, Datatype::Primitive(TypeTag::kInt64), false}}, true);
}
}  // namespace

DatatypePtr UserTypeKeyOnly() { return KeyOnly("UserKeyOnly", "id"); }
DatatypePtr MessageTypeKeyOnly() {
  return KeyOnly("MessageKeyOnly", "message-id");
}
DatatypePtr TweetTypeKeyOnly() { return KeyOnly("TweetKeyOnly", "tweetid"); }

// --- Normalization --------------------------------------------------------------

NormalizedUser NormalizeUser(const Value& user) {
  NormalizedUser out;
  const Value& addr = user.GetField("address");
  out.user_row = RecordBuilder()
                     .Add("id", user.GetField("id"))
                     .Add("alias", user.GetField("alias"))
                     .Add("name", user.GetField("name"))
                     .Add("user_since", user.GetField("user-since"))
                     .Add("street", addr.GetField("street"))
                     .Add("city", addr.GetField("city"))
                     .Add("state", addr.GetField("state"))
                     .Add("zip", addr.GetField("zip"))
                     .Add("country", addr.GetField("country"))
                     .Build();
  int64_t seq = 0;
  for (const auto& f : user.GetField("friend-ids").AsList()) {
    out.friend_rows.push_back(
        RecordBuilder()
            .Add("row_id", Value::Int64(user.GetField("id").AsInt() * 100 + seq))
            .Add("user_id", user.GetField("id"))
            .Add("friend_id", f)
            .Build());
    ++seq;
  }
  seq = 0;
  for (const auto& e : user.GetField("employment").AsList()) {
    RecordBuilder b;
    b.Add("row_id", Value::Int64(user.GetField("id").AsInt() * 100 + seq))
        .Add("user_id", user.GetField("id"))
        .Add("organization", e.GetField("organization-name"))
        .Add("start_date", e.GetField("start-date"));
    const Value& end = e.GetField("end-date");
    if (!end.IsUnknown()) b.Add("end_date", end);
    out.employment_rows.push_back(b.Build());
    ++seq;
  }
  return out;
}

NormalizedMessage NormalizeMessage(const Value& message) {
  NormalizedMessage out;
  RecordBuilder b;
  b.Add("message_id", message.GetField("message-id"))
      .Add("author_id", message.GetField("author-id"))
      .Add("ts", message.GetField("timestamp"));
  const Value& resp = message.GetField("in-response-to");
  if (!resp.IsUnknown()) b.Add("in_response_to", resp);
  const Value& loc = message.GetField("sender-location");
  if (!loc.IsUnknown()) {
    b.Add("loc_x", Value::Double(loc.AsPoints()[0].x));
    b.Add("loc_y", Value::Double(loc.AsPoints()[0].y));
  }
  b.Add("text", message.GetField("message"));
  out.message_row = b.Build();
  int64_t seq = 0;
  for (const auto& tag : message.GetField("tags").AsList()) {
    out.tag_rows.push_back(
        RecordBuilder()
            .Add("row_id",
                 Value::Int64(message.GetField("message-id").AsInt() * 10 + seq))
            .Add("message_id", message.GetField("message-id"))
            .Add("tag", tag)
            .Build());
    ++seq;
  }
  return out;
}

std::vector<baselines::RelTable::ColumnDef> UserTableSchema() {
  return {{"id", TypeTag::kInt64},       {"alias", TypeTag::kString},
          {"name", TypeTag::kString},    {"user_since", TypeTag::kDatetime},
          {"street", TypeTag::kString},  {"city", TypeTag::kString},
          {"state", TypeTag::kString},   {"zip", TypeTag::kString},
          {"country", TypeTag::kString}};
}

std::vector<baselines::RelTable::ColumnDef> FriendTableSchema() {
  return {{"row_id", TypeTag::kInt64},
          {"user_id", TypeTag::kInt64},
          {"friend_id", TypeTag::kInt64}};
}

std::vector<baselines::RelTable::ColumnDef> EmploymentTableSchema() {
  return {{"row_id", TypeTag::kInt64},
          {"user_id", TypeTag::kInt64},
          {"organization", TypeTag::kString},
          {"start_date", TypeTag::kDate},
          {"end_date", TypeTag::kDate}};
}

std::vector<baselines::RelTable::ColumnDef> MessageTableSchema() {
  return {{"message_id", TypeTag::kInt64}, {"author_id", TypeTag::kInt64},
          {"ts", TypeTag::kDatetime},      {"in_response_to", TypeTag::kInt64},
          {"loc_x", TypeTag::kDouble},     {"loc_y", TypeTag::kDouble},
          {"text", TypeTag::kString}};
}

std::vector<baselines::RelTable::ColumnDef> TagTableSchema() {
  return {{"row_id", TypeTag::kInt64},
          {"message_id", TypeTag::kInt64},
          {"tag", TypeTag::kString}};
}

std::vector<baselines::ColumnStore::ColumnDef> UserColumnSchema() {
  std::vector<baselines::ColumnStore::ColumnDef> out;
  for (const auto& c : UserTableSchema()) out.push_back({c.name, c.type});
  return out;
}

std::vector<baselines::ColumnStore::ColumnDef> MessageColumnSchema() {
  std::vector<baselines::ColumnStore::ColumnDef> out;
  for (const auto& c : MessageTableSchema()) out.push_back({c.name, c.type});
  return out;
}

}  // namespace workload
}  // namespace asterix
