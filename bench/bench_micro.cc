// Google-benchmark microbenchmarks for the performance-critical primitives:
// serialization, B+-tree probes, LSM ingestion, expression evaluation, and
// compression. These guard the constants that the table-level benches'
// shapes depend on.

#include <benchmark/benchmark.h>

#include "adm/serde.h"
#include "algebricks/expr.h"
#include "api/asterix.h"
#include "common/compress.h"
#include "common/env.h"
#include "functions/similarity.h"
#include "storage/lsm.h"
#include "workload/generator.h"

namespace {

using namespace asterix;
using adm::Value;

// --- serde -------------------------------------------------------------------

void BM_SerializeTypedMessage(benchmark::State& state) {
  workload::Generator gen;
  Value msg = gen.MakeMessage(1, 100);
  auto type = workload::MessageTypeSchema();
  for (auto _ : state) {
    BytesWriter w;
    benchmark::DoNotOptimize(adm::SerializeTyped(msg, type, &w).ok());
  }
}
BENCHMARK(BM_SerializeTypedMessage);

void BM_DeserializeTypedMessage(benchmark::State& state) {
  workload::Generator gen;
  Value msg = gen.MakeMessage(1, 100);
  auto type = workload::MessageTypeSchema();
  BytesWriter w;
  if (!adm::SerializeTyped(msg, type, &w).ok()) state.SkipWithError("serde");
  for (auto _ : state) {
    BytesReader r(w.data());
    Value out;
    benchmark::DoNotOptimize(adm::DeserializeTyped(&r, type, &out).ok());
  }
}
BENCHMARK(BM_DeserializeTypedMessage);

void BM_SerializeSchemaless(benchmark::State& state) {
  workload::Generator gen;
  Value msg = gen.MakeMessage(1, 100);
  for (auto _ : state) {
    BytesWriter w;
    adm::SerializeValue(msg, &w);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_SerializeSchemaless);

// --- storage ------------------------------------------------------------------

class LsmFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (tree) return;
    dir = env::NewScratchDir("bench-micro");
    cache = std::make_unique<storage::BufferCache>(1 << 14);
    storage::LsmOptions o;
    tree = std::make_unique<storage::LsmBTree>(cache.get(), dir, "t", o);
    (void)tree->Open();
    payload.assign(120, 'x');
    for (int i = 0; i < 100000; ++i) {
      (void)tree->Upsert({Value::Int64(i)}, payload, static_cast<uint64_t>(i));
    }
    (void)tree->Flush();
  }
  void TearDown(const benchmark::State&) override {}

  static std::string dir;
  static std::unique_ptr<storage::BufferCache> cache;
  static std::unique_ptr<storage::LsmBTree> tree;
  static std::vector<uint8_t> payload;
};
std::string LsmFixture::dir;
std::unique_ptr<storage::BufferCache> LsmFixture::cache;
std::unique_ptr<storage::LsmBTree> LsmFixture::tree;
std::vector<uint8_t> LsmFixture::payload;

BENCHMARK_F(LsmFixture, PointLookupHit)(benchmark::State& state) {
  int64_t k = 0;
  for (auto _ : state) {
    bool found;
    std::vector<uint8_t> p;
    (void)tree->PointLookup({Value::Int64(k % 100000)}, &found, &p);
    benchmark::DoNotOptimize(found);
    k += 7919;
  }
}

BENCHMARK_F(LsmFixture, PointLookupMissBloomFiltered)(benchmark::State& state) {
  int64_t k = 0;
  for (auto _ : state) {
    bool found;
    std::vector<uint8_t> p;
    (void)tree->PointLookup({Value::Int64(200000 + k)}, &found, &p);
    benchmark::DoNotOptimize(found);
    ++k;
  }
}

BENCHMARK_F(LsmFixture, ShortRangeScan100)(benchmark::State& state) {
  int64_t k = 0;
  for (auto _ : state) {
    storage::ScanBounds b;
    b.lo = storage::CompositeKey{Value::Int64(k % 90000)};
    b.hi = storage::CompositeKey{Value::Int64(k % 90000 + 99)};
    size_t n = 0;
    (void)tree->RangeScan(b, [&](const storage::IndexEntry&) {
      ++n;
      return Status::OK();
    });
    benchmark::DoNotOptimize(n);
    k += 1013;
  }
}

// Row vs column disk formats scanning the same messages with a narrow
// projection: the columnar layout should touch far fewer bytes.
class FormatFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (row) return;
    dir = env::NewScratchDir("bench-format");
    cache = std::make_unique<storage::BufferCache>(1 << 14);
    auto type = workload::MessageTypeSchema();
    storage::LsmOptions ro;
    ro.record_type = type;
    storage::LsmOptions co = ro;
    co.format = storage::StorageFormat::kColumn;
    row = std::make_unique<storage::LsmBTree>(cache.get(), dir, "row", ro);
    col = std::make_unique<storage::LsmBTree>(cache.get(), dir, "col", co);
    (void)row->Open();
    (void)col->Open();
    workload::Generator gen;
    for (int64_t i = 0; i < 20000; ++i) {
      Value msg = gen.MakeMessage(i, 500);
      std::vector<uint8_t> buf;
      BytesWriter w(&buf);
      if (!adm::SerializeTyped(msg, type, &w).ok()) std::abort();
      storage::CompositeKey key{Value::Int64(i)};
      (void)row->Upsert(key, buf, static_cast<uint64_t>(i));
      (void)col->Upsert(key, buf, static_cast<uint64_t>(i));
    }
    (void)row->Flush();
    (void)col->Flush();
  }
  void TearDown(const benchmark::State&) override {}

  static void RunProjectedScan(storage::LsmBTree* tree,
                               benchmark::State& state) {
    auto proj =
        storage::column::Projection::Of({"message-id", "author-id"});
    storage::column::ProjectedScanStats stats;
    size_t n = 0;
    for (auto _ : state) {
      stats = {};
      n = 0;
      (void)tree->ProjectedScan(
          storage::ScanBounds{}, proj,
          [&](const storage::CompositeKey&, bool, const Value&) {
            ++n;
            return Status::OK();
          },
          &stats);
      benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
    state.counters["bytes_read"] = static_cast<double>(stats.bytes_read);
    state.counters["bytes_skipped"] = static_cast<double>(stats.bytes_skipped);
    state.counters["pages_pruned"] = static_cast<double>(stats.pages_pruned);
  }

  static std::string dir;
  static std::unique_ptr<storage::BufferCache> cache;
  static std::unique_ptr<storage::LsmBTree> row, col;
};
std::string FormatFixture::dir;
std::unique_ptr<storage::BufferCache> FormatFixture::cache;
std::unique_ptr<storage::LsmBTree> FormatFixture::row;
std::unique_ptr<storage::LsmBTree> FormatFixture::col;

BENCHMARK_F(FormatFixture, ProjectedScanRowFormat)(benchmark::State& state) {
  RunProjectedScan(row.get(), state);
}

BENCHMARK_F(FormatFixture, ProjectedScanColumnFormat)(benchmark::State& state) {
  RunProjectedScan(col.get(), state);
}

void BM_LsmUpsert(benchmark::State& state) {
  std::string dir = env::NewScratchDir("bench-upsert");
  storage::BufferCache cache(1 << 14);
  storage::LsmOptions o;
  storage::LsmBTree tree(&cache, dir, "t", o);
  (void)tree.Open();
  std::vector<uint8_t> payload(120, 'x');
  int64_t k = 0;
  for (auto _ : state) {
    (void)tree.Upsert({Value::Int64(k++)}, payload, static_cast<uint64_t>(k));
  }
  state.SetItemsProcessed(k);
  env::RemoveAll(dir);
}
BENCHMARK(BM_LsmUpsert);

// --- expressions ----------------------------------------------------------------

void BM_CompiledPredicateEval(benchmark::State& state) {
  using algebricks::Expr;
  // ($m.timestamp >= C1 and $m.timestamp < C2) via the reference evaluator.
  auto cond = Expr::And(
      Expr::Compare(">=",
                    Expr::FieldAccess(Expr::Var("m"), "timestamp"),
                    Expr::Const(Value::Datetime(1000))),
      Expr::Compare("<", Expr::FieldAccess(Expr::Var("m"), "timestamp"),
                    Expr::Const(Value::Datetime(100000000))));
  workload::Generator gen;
  Value msg = gen.MakeMessage(42, 100);
  algebricks::EvalContext ctx;
  ctx.Bind("m", msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebricks::EvalExpr(*cond, ctx).ok());
  }
}
BENCHMARK(BM_CompiledPredicateEval);

// --- similarity & compression ------------------------------------------------------

void BM_EditDistanceCheckBanded(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        functions::EditDistanceCheck("reachability", "reliability", 3));
  }
}
BENCHMARK(BM_EditDistanceCheckBanded);

void BM_LzCompressStripe(benchmark::State& state) {
  std::vector<uint8_t> data;
  for (int i = 0; i < 2000; ++i) {
    const char* rec = "verizon|voice-clarity|2014-02-20|";
    data.insert(data.end(), rec, rec + 33);
    data.push_back(static_cast<uint8_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCompress(data.data(), data.size()).size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_LzCompressStripe);

}  // namespace

// Like BENCHMARK_MAIN(), plus a BENCH_micro.json metrics snapshot so the
// columnar counters the projected-scan benches bump are machine-readable.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::string out = "{ \"bench\": \"micro\", \"metrics\": " +
                    asterix::api::AsterixInstance::MetricsJson() + " }";
  auto st = asterix::env::WriteFileAtomic("BENCH_micro.json", out.data(),
                                          out.size());
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL bench dump: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_micro.json\n");
  return 0;
}
