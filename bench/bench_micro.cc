// Google-benchmark microbenchmarks for the performance-critical primitives:
// serialization, B+-tree probes, LSM ingestion, expression evaluation, and
// compression. These guard the constants that the table-level benches'
// shapes depend on.

#include <benchmark/benchmark.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "adm/serde.h"
#include "algebricks/expr.h"
#include "api/asterix.h"
#include "common/compress.h"
#include "common/env.h"
#include "functions/aggregates.h"
#include "functions/arith.h"
#include "functions/similarity.h"
#include "hyracks/channel.h"
#include "hyracks/vector/kernels.h"
#include "hyracks/cluster.h"
#include "hyracks/operators.h"
#include "storage/lsm.h"
#include "workload/generator.h"

namespace {

using namespace asterix;
using adm::Value;

// --- serde -------------------------------------------------------------------

void BM_SerializeTypedMessage(benchmark::State& state) {
  workload::Generator gen;
  Value msg = gen.MakeMessage(1, 100);
  auto type = workload::MessageTypeSchema();
  for (auto _ : state) {
    BytesWriter w;
    benchmark::DoNotOptimize(adm::SerializeTyped(msg, type, &w).ok());
  }
}
BENCHMARK(BM_SerializeTypedMessage);

void BM_DeserializeTypedMessage(benchmark::State& state) {
  workload::Generator gen;
  Value msg = gen.MakeMessage(1, 100);
  auto type = workload::MessageTypeSchema();
  BytesWriter w;
  if (!adm::SerializeTyped(msg, type, &w).ok()) state.SkipWithError("serde");
  for (auto _ : state) {
    BytesReader r(w.data());
    Value out;
    benchmark::DoNotOptimize(adm::DeserializeTyped(&r, type, &out).ok());
  }
}
BENCHMARK(BM_DeserializeTypedMessage);

void BM_SerializeSchemaless(benchmark::State& state) {
  workload::Generator gen;
  Value msg = gen.MakeMessage(1, 100);
  for (auto _ : state) {
    BytesWriter w;
    adm::SerializeValue(msg, &w);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_SerializeSchemaless);

// --- storage ------------------------------------------------------------------

class LsmFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (tree) return;
    dir = env::NewScratchDir("bench-micro");
    cache = std::make_unique<storage::BufferCache>(1 << 14);
    storage::LsmOptions o;
    tree = std::make_unique<storage::LsmBTree>(cache.get(), dir, "t", o);
    (void)tree->Open();
    payload.assign(120, 'x');
    for (int i = 0; i < 100000; ++i) {
      (void)tree->Upsert({Value::Int64(i)}, payload, static_cast<uint64_t>(i));
    }
    (void)tree->Flush();
  }
  void TearDown(const benchmark::State&) override {}

  static std::string dir;
  static std::unique_ptr<storage::BufferCache> cache;
  static std::unique_ptr<storage::LsmBTree> tree;
  static std::vector<uint8_t> payload;
};
std::string LsmFixture::dir;
std::unique_ptr<storage::BufferCache> LsmFixture::cache;
std::unique_ptr<storage::LsmBTree> LsmFixture::tree;
std::vector<uint8_t> LsmFixture::payload;

BENCHMARK_F(LsmFixture, PointLookupHit)(benchmark::State& state) {
  int64_t k = 0;
  for (auto _ : state) {
    bool found;
    std::vector<uint8_t> p;
    (void)tree->PointLookup({Value::Int64(k % 100000)}, &found, &p);
    benchmark::DoNotOptimize(found);
    k += 7919;
  }
}

BENCHMARK_F(LsmFixture, PointLookupMissBloomFiltered)(benchmark::State& state) {
  int64_t k = 0;
  for (auto _ : state) {
    bool found;
    std::vector<uint8_t> p;
    (void)tree->PointLookup({Value::Int64(200000 + k)}, &found, &p);
    benchmark::DoNotOptimize(found);
    ++k;
  }
}

BENCHMARK_F(LsmFixture, ShortRangeScan100)(benchmark::State& state) {
  int64_t k = 0;
  for (auto _ : state) {
    storage::ScanBounds b;
    b.lo = storage::CompositeKey{Value::Int64(k % 90000)};
    b.hi = storage::CompositeKey{Value::Int64(k % 90000 + 99)};
    size_t n = 0;
    (void)tree->RangeScan(b, [&](const storage::IndexEntry&) {
      ++n;
      return Status::OK();
    });
    benchmark::DoNotOptimize(n);
    k += 1013;
  }
}

// Row vs column disk formats scanning the same messages with a narrow
// projection: the columnar layout should touch far fewer bytes.
class FormatFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (row) return;
    dir = env::NewScratchDir("bench-format");
    cache = std::make_unique<storage::BufferCache>(1 << 14);
    auto type = workload::MessageTypeSchema();
    storage::LsmOptions ro;
    ro.record_type = type;
    storage::LsmOptions co = ro;
    co.format = storage::StorageFormat::kColumn;
    row = std::make_unique<storage::LsmBTree>(cache.get(), dir, "row", ro);
    col = std::make_unique<storage::LsmBTree>(cache.get(), dir, "col", co);
    (void)row->Open();
    (void)col->Open();
    workload::Generator gen;
    for (int64_t i = 0; i < 20000; ++i) {
      Value msg = gen.MakeMessage(i, 500);
      std::vector<uint8_t> buf;
      BytesWriter w(&buf);
      if (!adm::SerializeTyped(msg, type, &w).ok()) std::abort();
      storage::CompositeKey key{Value::Int64(i)};
      (void)row->Upsert(key, buf, static_cast<uint64_t>(i));
      (void)col->Upsert(key, buf, static_cast<uint64_t>(i));
    }
    (void)row->Flush();
    (void)col->Flush();
  }
  void TearDown(const benchmark::State&) override {}

  static void RunProjectedScan(storage::LsmBTree* tree,
                               benchmark::State& state) {
    auto proj =
        storage::column::Projection::Of({"message-id", "author-id"});
    storage::column::ProjectedScanStats stats;
    size_t n = 0;
    for (auto _ : state) {
      stats = {};
      n = 0;
      (void)tree->ProjectedScan(
          storage::ScanBounds{}, proj,
          [&](const storage::CompositeKey&, bool, const Value&) {
            ++n;
            return Status::OK();
          },
          &stats);
      benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(n));
    state.counters["bytes_read"] = static_cast<double>(stats.bytes_read);
    state.counters["bytes_skipped"] = static_cast<double>(stats.bytes_skipped);
    state.counters["pages_pruned"] = static_cast<double>(stats.pages_pruned);
  }

  static std::string dir;
  static std::unique_ptr<storage::BufferCache> cache;
  static std::unique_ptr<storage::LsmBTree> row, col;
};
std::string FormatFixture::dir;
std::unique_ptr<storage::BufferCache> FormatFixture::cache;
std::unique_ptr<storage::LsmBTree> FormatFixture::row;
std::unique_ptr<storage::LsmBTree> FormatFixture::col;

BENCHMARK_F(FormatFixture, ProjectedScanRowFormat)(benchmark::State& state) {
  RunProjectedScan(row.get(), state);
}

BENCHMARK_F(FormatFixture, ProjectedScanColumnFormat)(benchmark::State& state) {
  RunProjectedScan(col.get(), state);
}

// Interpreted vs vectorized execution of the same selective
// filter-and-aggregate over one columnar dataset in steady state: the
// row-at-a-time side pays record assembly + per-row Value evaluation, the
// vectorized side runs typed-lane kernels over batches straight off the
// column pages.
constexpr size_t kVectorRows = 100000;

adm::DatatypePtr VectorBenchType() {
  std::vector<adm::FieldType> fields;
  fields.push_back(
      {"id", adm::Datatype::Primitive(adm::TypeTag::kInt64), false});
  fields.push_back(
      {"e", adm::Datatype::Primitive(adm::TypeTag::kInt64), false});
  fields.push_back(
      {"f", adm::Datatype::Primitive(adm::TypeTag::kDouble), false});
  fields.push_back(
      {"pad", adm::Datatype::Primitive(adm::TypeTag::kString), false});
  return adm::Datatype::MakeRecord("VecBenchT", std::move(fields),
                                   /*open=*/false);
}

struct VectorBenchState {
  std::string dir;
  std::unique_ptr<storage::BufferCache> cache;
  std::unique_ptr<storage::LsmBTree> tree;
};

VectorBenchState& VectorBench() {
  static auto* s = new VectorBenchState();
  if (s->tree) return *s;
  s->dir = env::NewScratchDir("bench-vector");
  s->cache = std::make_unique<storage::BufferCache>(1 << 14);
  auto type = VectorBenchType();
  storage::LsmOptions o;
  o.format = storage::StorageFormat::kColumn;
  o.record_type = type;
  o.mem_budget_bytes = 64u << 20;  // hold the whole load: one flush, one component
  o.merge_policy = storage::MergePolicy::Constant(1);
  s->tree = std::make_unique<storage::LsmBTree>(s->cache.get(), s->dir, "vec", o);
  if (!s->tree->Open().ok()) std::abort();
  for (size_t i = 0; i < kVectorRows; ++i) {
    adm::RecordBuilder b;
    b.Add("id", Value::Int64(static_cast<int64_t>(i)));
    b.Add("e", Value::Int64(static_cast<int64_t>(i % 100)));
    b.Add("f", Value::Double(static_cast<double>(i) * 0.5));
    b.Add("pad", Value::String("pppppppppppppppppppppppppppppppp"));
    std::vector<uint8_t> buf;
    BytesWriter w(&buf);
    if (!adm::SerializeTyped(b.Build(), type, &w).ok()) std::abort();
    (void)s->tree->Upsert({Value::Int64(static_cast<int64_t>(i))}, buf,
                          static_cast<uint64_t>(i) + 1);
  }
  if (!s->tree->Flush().ok()) std::abort();
  if (s->tree->num_disk_components() > 1 && !s->tree->MaybeMerge().ok()) {
    std::abort();
  }
  if (s->tree->num_disk_components() != 1) std::abort();
  return *s;
}

// sum(f) over rows with e >= 90 (10% selectivity), row at a time: assembled
// records, per-row 3VL compare, virtual aggregator Add.
double InterpretedFilterAggPass(size_t* rows_seen) {
  auto& vb = VectorBench();
  auto proj = storage::column::Projection::Of({"e", "f"});
  auto agg = functions::MakeAggregator("sum");
  size_t n = 0;
  Status st = vb.tree->ProjectedScan(
      storage::ScanBounds{}, proj,
      [&](const storage::CompositeKey&, bool, const Value& rec) {
        ++n;
        if (functions::LessEqTri(Value::Int64(90), rec.GetField("e")) ==
            functions::Tri::kTrue) {
          agg->Add(rec.GetField("f"));
        }
        return Status::OK();
      },
      nullptr);
  if (!st.ok() || n != kVectorRows) std::abort();
  *rows_seen = n;
  return agg->Finish().AsDouble();
}

// The same query through the vectorized path: typed batches off the column
// pages, selection-vector filter kernel, batch aggregate.
double VectorizedFilterAggPass(size_t* rows_seen) {
  auto& vb = VectorBench();
  auto proj = storage::column::Projection::Of({"e", "f"});
  auto pred = hyracks::vector::Cmp(hyracks::vector::CmpOp::kGe,
                                   hyracks::vector::Field("e"),
                                   hyracks::vector::Const(Value::Int64(90)));
  hyracks::vector::VectorAgg agg("sum", "f");
  size_t n = 0;
  Status st = vb.tree->BatchScan(
      storage::ScanBounds{}, proj,
      [&](const std::shared_ptr<storage::column::ColumnBatch>& batch) {
        n += batch->num_rows;
        ASTERIX_RETURN_NOT_OK(hyracks::vector::Filter(*pred, batch.get()));
        return agg.AddBatch(*batch);
      },
      nullptr);
  if (!st.ok() || n != kVectorRows) std::abort();
  *rows_seen = n;
  return agg.Finish().AsDouble();
}

void BM_FilterAggInterpreted(benchmark::State& state) {
  size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(InterpretedFilterAggPass(&n));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FilterAggInterpreted)->Unit(benchmark::kMillisecond);

void BM_FilterAggVectorized(benchmark::State& state) {
  size_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(VectorizedFilterAggPass(&n));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FilterAggVectorized)->Unit(benchmark::kMillisecond);

void BM_LsmUpsert(benchmark::State& state) {
  std::string dir = env::NewScratchDir("bench-upsert");
  storage::BufferCache cache(1 << 14);
  storage::LsmOptions o;
  storage::LsmBTree tree(&cache, dir, "t", o);
  (void)tree.Open();
  std::vector<uint8_t> payload(120, 'x');
  int64_t k = 0;
  for (auto _ : state) {
    (void)tree.Upsert({Value::Int64(k++)}, payload, static_cast<uint64_t>(k));
  }
  state.SetItemsProcessed(k);
  env::RemoveAll(dir);
}
BENCHMARK(BM_LsmUpsert);

// --- expressions ----------------------------------------------------------------

void BM_CompiledPredicateEval(benchmark::State& state) {
  using algebricks::Expr;
  // ($m.timestamp >= C1 and $m.timestamp < C2) via the reference evaluator.
  auto cond = Expr::And(
      Expr::Compare(">=",
                    Expr::FieldAccess(Expr::Var("m"), "timestamp"),
                    Expr::Const(Value::Datetime(1000))),
      Expr::Compare("<", Expr::FieldAccess(Expr::Var("m"), "timestamp"),
                    Expr::Const(Value::Datetime(100000000))));
  workload::Generator gen;
  Value msg = gen.MakeMessage(42, 100);
  algebricks::EvalContext ctx;
  ctx.Bind("m", msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebricks::EvalExpr(*cond, ctx).ok());
  }
}
BENCHMARK(BM_CompiledPredicateEval);

// --- similarity & compression ------------------------------------------------------

void BM_EditDistanceCheckBanded(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        functions::EditDistanceCheck("reachability", "reliability", 3));
  }
}
BENCHMARK(BM_EditDistanceCheckBanded);

// --- dataflow ----------------------------------------------------------------

// Replica of the pre-change connector runtime, kept here as the baseline the
// frame-at-a-time shuffle is measured against: every tuple crossing the
// connector pays one lock+notify on the producer side, one lock on the
// consumer side, a per-destination copy, and two shared atomic counter bumps.
class LegacyTupleChannel {
 public:
  explicit LegacyTupleChannel(int producers) : open_(producers) {}

  void Push(const hyracks::Tuple& t) {
    hyracks::Tuple copy = t;  // per-destination copy, as the old emitter did
    std::lock_guard<std::mutex> lock(mu_);
    q_.push_back(std::move(copy));
    cv_.notify_one();
  }
  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    --open_;
    cv_.notify_all();
  }
  bool Next(hyracks::Tuple* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !q_.empty() || open_ == 0; });
    if (q_.empty()) return false;
    *out = std::move(q_.front());
    q_.pop_front();
    return true;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<hyracks::Tuple> q_;
  int open_;
};

// Hash-shuffles side x per_producer tuples through side consumers and
// returns delivered tuples per second. `framed` selects the current
// frame-at-a-time path (FifoChannel frames, moves, per-frame counter flush);
// otherwise the legacy tuple-at-a-time baseline above runs the same shuffle.
double ShuffleTuplesPerSec(bool framed, int side, int64_t per_producer) {
  const uint64_t total =
      static_cast<uint64_t>(side) * static_cast<uint64_t>(per_producer);
  std::atomic<uint64_t> conn_tuples{0};
  std::atomic<uint64_t> net_tuples{0};
  std::atomic<uint64_t> delivered{0};
  std::vector<std::thread> threads;
  auto t0 = std::chrono::steady_clock::now();

  if (framed) {
    std::vector<std::unique_ptr<hyracks::FifoChannel>> channels;
    for (int d = 0; d < side; ++d) {
      channels.push_back(std::make_unique<hyracks::FifoChannel>(side, 64));
    }
    for (int p = 0; p < side; ++p) {
      threads.emplace_back([&, p] {
        std::vector<hyracks::Frame> bufs(static_cast<size_t>(side));
        for (int64_t i = 0; i < per_producer; ++i) {
          int64_t v = p * per_producer + i;
          auto dst = static_cast<size_t>(v % side);
          bufs[dst].tuples.push_back({Value::Int64(v)});
          if (bufs[dst].tuples.size() >= hyracks::kDefaultFrameTuples) {
            uint64_t n = bufs[dst].tuples.size();
            channels[dst]->Push(p, std::move(bufs[dst]));
            bufs[dst] = hyracks::Frame{};
            conn_tuples.fetch_add(n, std::memory_order_relaxed);
            net_tuples.fetch_add(n, std::memory_order_relaxed);
          }
        }
        for (size_t d = 0; d < bufs.size(); ++d) {
          uint64_t n = bufs[d].tuples.size();
          if (n > 0) {
            channels[d]->Push(p, std::move(bufs[d]));
            conn_tuples.fetch_add(n, std::memory_order_relaxed);
            net_tuples.fetch_add(n, std::memory_order_relaxed);
          }
          channels[d]->ProducerDone(p);
        }
      });
    }
    for (int c = 0; c < side; ++c) {
      threads.emplace_back([&, c] {
        hyracks::Frame f;
        uint64_t n = 0;
        while (true) {
          auto r = channels[static_cast<size_t>(c)]->NextFrame(&f);
          if (!r.ok() || !r.value()) break;
          n += f.tuples.size();
        }
        delivered.fetch_add(n, std::memory_order_relaxed);
      });
    }
    for (auto& t : threads) t.join();
  } else {
    std::vector<std::unique_ptr<LegacyTupleChannel>> channels;
    for (int d = 0; d < side; ++d) {
      channels.push_back(std::make_unique<LegacyTupleChannel>(side));
    }
    for (int p = 0; p < side; ++p) {
      threads.emplace_back([&, p] {
        for (int64_t i = 0; i < per_producer; ++i) {
          int64_t v = p * per_producer + i;
          auto dst = static_cast<size_t>(v % side);
          channels[dst]->Push({Value::Int64(v)});
          conn_tuples.fetch_add(1, std::memory_order_relaxed);
          net_tuples.fetch_add(1, std::memory_order_relaxed);
        }
        for (auto& ch : channels) ch->Done();
      });
    }
    for (int c = 0; c < side; ++c) {
      threads.emplace_back([&, c] {
        hyracks::Tuple t;
        uint64_t n = 0;
        while (channels[static_cast<size_t>(c)]->Next(&t)) ++n;
        delivered.fetch_add(n, std::memory_order_relaxed);
      });
    }
    for (auto& t : threads) t.join();
  }

  double sec = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
  if (delivered.load() != total || conn_tuples.load() != total) std::abort();
  return static_cast<double>(total) / sec;
}

void BM_ShuffleFrameAtATime(benchmark::State& state) {
  constexpr int64_t kPerProducer = 50000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShuffleTuplesPerSec(true, 4, kPerProducer));
  }
  state.SetItemsProcessed(state.iterations() * 4 * kPerProducer);
}
BENCHMARK(BM_ShuffleFrameAtATime)->Unit(benchmark::kMillisecond);

void BM_ShuffleTupleAtATimeLegacy(benchmark::State& state) {
  constexpr int64_t kPerProducer = 50000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ShuffleTuplesPerSec(false, 4, kPerProducer));
  }
  state.SetItemsProcessed(state.iterations() * 4 * kPerProducer);
}
BENCHMARK(BM_ShuffleTupleAtATimeLegacy)->Unit(benchmark::kMillisecond);

void BM_MergeChannelKWay(benchmark::State& state) {
  constexpr int kProducers = 8;
  constexpr int64_t kTotal = 80000;
  hyracks::TupleCompare cmp = [](const hyracks::Tuple& a,
                                 const hyracks::Tuple& b) {
    return a[0].Compare(b[0]);
  };
  for (auto _ : state) {
    hyracks::MergeChannel ch(kProducers, cmp, 64);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        hyracks::Frame frame;
        for (int64_t v = p; v < kTotal; v += kProducers) {
          frame.tuples.push_back({Value::Int64(v)});
          if (frame.tuples.size() >= hyracks::kDefaultFrameTuples) {
            ch.Push(p, std::move(frame));
            frame = hyracks::Frame{};
          }
        }
        if (!frame.tuples.empty()) ch.Push(p, std::move(frame));
        ch.ProducerDone(p);
      });
    }
    uint64_t merged = 0;
    hyracks::Frame f;
    while (true) {
      auto r = ch.NextFrame(&f);
      if (!r.ok() || !r.value()) break;
      merged += f.tuples.size();
    }
    for (auto& t : producers) t.join();
    if (merged != kTotal) state.SkipWithError("merge lost tuples");
  }
  state.SetItemsProcessed(state.iterations() * kTotal);
}
BENCHMARK(BM_MergeChannelKWay)->Unit(benchmark::kMillisecond);

// A small pipelined job executed repeatedly on one cluster: after the first
// job the persistent executor pool serves every instance from existing
// threads, so this measures steady-state job dispatch + frame flow.
void BM_PipelineJobOnPersistentPool(benchmark::State& state) {
  static auto* cluster = new hyracks::Cluster(hyracks::ClusterConfig{1, 2, 0, ""});
  constexpr int64_t kPerScan = 10000;
  for (auto _ : state) {
    hyracks::JobSpec job;
    hyracks::OperatorDescriptor src;
    src.name = "gen";
    src.parallelism = 2;
    src.num_inputs = 0;
    src.factory = [](int p) -> std::unique_ptr<hyracks::OperatorInstance> {
      class Gen : public hyracks::OperatorInstance {
       public:
        explicit Gen(int p) : p_(p) {}
        Status Run(const std::vector<hyracks::InChannel*>&,
                   hyracks::Emitter* out) override {
          for (int64_t i = 0; i < kPerScan; ++i) {
            out->Push({Value::Int64(p_ * kPerScan + i)});
          }
          return Status::OK();
        }
        int p_;
      };
      return std::make_unique<Gen>(p);
    };
    int src_id = job.AddOperator(std::move(src));
    int sel_id = job.AddOperator(hyracks::MakeSelect(
        2, [](const hyracks::Tuple& t) -> Result<Value> {
          return Value::Boolean(t[0].AsInt() % 2 == 0);
        }));
    auto sink = std::make_shared<std::vector<hyracks::Tuple>>();
    int sink_id = job.AddOperator(hyracks::MakeResultSink(sink));
    job.Connect(hyracks::ConnectorType::kOneToOne, src_id, sel_id);
    job.Connect(hyracks::ConnectorType::kHashPartitioningShuffle, sel_id,
                sink_id, 0, [](const hyracks::Tuple& t) {
                  return static_cast<uint64_t>(t[0].AsInt());
                });
    auto r = cluster->ExecuteJob(job);
    if (!r.ok() || sink->size() != kPerScan) {
      state.SkipWithError("pipeline job failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * 2 * kPerScan);
}
BENCHMARK(BM_PipelineJobOnPersistentPool)->Unit(benchmark::kMillisecond);

// --- budgeted hash operators -------------------------------------------------

// Replica of the pre-change hash join build — one unordered_map keyed by a
// materialized std::vector<Value> per build tuple — kept as the baseline the
// serialized-normalized-key Grace join is measured against.
struct LegacyKeyHash {
  size_t operator()(const std::vector<Value>& k) const {
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& v : k) h = v.Hash(h);
    return static_cast<size_t>(h);
  }
};
struct LegacyKeyEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

hyracks::OperatorDescriptor MakeLegacyValueKeyJoinOnCol0() {
  hyracks::OperatorDescriptor op;
  op.name = "legacy-hash-join";
  op.parallelism = 1;
  op.num_inputs = 2;
  op.blocking_ports = {0};
  op.factory = [](int) -> std::unique_ptr<hyracks::OperatorInstance> {
    class Legacy : public hyracks::OperatorInstance {
     public:
      Status Run(const std::vector<hyracks::InChannel*>& in,
                 hyracks::Emitter* out) override {
        std::unordered_map<std::vector<Value>, std::vector<hyracks::Tuple>,
                           LegacyKeyHash, LegacyKeyEq>
            table;
        hyracks::Frame f;
        while (true) {
          auto r = in[0]->NextFrame(&f);
          if (!r.ok()) return r.status();
          if (!r.value()) break;
          for (auto& t : f.tuples) {
            std::vector<Value> key{t[0]};
            table[std::move(key)].push_back(std::move(t));
          }
        }
        while (true) {
          auto r = in[1]->NextFrame(&f);
          if (!r.ok()) return r.status();
          if (!r.value()) break;
          for (auto& t : f.tuples) {
            auto it = table.find(std::vector<Value>{t[0]});
            if (it == table.end()) continue;
            for (const auto& b : it->second) {
              hyracks::Tuple o = b;
              o.insert(o.end(), t.begin(), t.end());
              out->Push(std::move(o));
            }
          }
        }
        return Status::OK();
      }
    };
    return std::make_unique<Legacy>();
  };
  return op;
}

std::vector<hyracks::Tuple> JoinSide(size_t n, uint64_t key_range,
                                     uint64_t seed) {
  std::vector<hyracks::Tuple> rows;
  rows.reserve(n);
  uint64_t x = seed;
  for (size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    rows.push_back({Value::Int64(static_cast<int64_t>(x % key_range)),
                    Value::Int64(static_cast<int64_t>(i)),
                    Value::String("payload-xxxxxxxx")});
  }
  return rows;
}

hyracks::TupleEval BenchCol(int i) {
  return [i](const hyracks::Tuple& t) -> Result<Value> {
    return t[static_cast<size_t>(i)];
  };
}

// Joins `build` x `probe` on column 0 through a single-partition cluster job
// and returns input tuples per second. serialized=false runs the legacy
// vector<Value>-keyed baseline; budget_bytes>0 forces the serialized path to
// spill (Grace recursion).
double JoinTuplesPerSec(bool serialized, size_t budget_bytes,
                        const std::vector<hyracks::Tuple>& build,
                        const std::vector<hyracks::Tuple>& probe) {
  hyracks::ClusterConfig cfg{1, 1, 0, ""};
  cfg.op_memory_budget_bytes = budget_bytes;
  hyracks::Cluster cluster(cfg);
  hyracks::JobSpec job;
  int b = job.AddOperator(hyracks::MakeValueScan(build));
  int p = job.AddOperator(hyracks::MakeValueScan(probe));
  int j = serialized
              ? job.AddOperator(hyracks::MakeHybridHashJoin(
                    1, {BenchCol(0)}, {BenchCol(0)}, 3, false))
              : job.AddOperator(MakeLegacyValueKeyJoinOnCol0());
  auto sink = std::make_shared<std::vector<hyracks::Tuple>>();
  int d = job.AddOperator(hyracks::MakeResultSink(sink));
  job.Connect(hyracks::ConnectorType::kOneToOne, b, j, 0);
  job.Connect(hyracks::ConnectorType::kOneToOne, p, j, 1);
  job.Connect(hyracks::ConnectorType::kOneToOne, j, d);
  auto t0 = std::chrono::steady_clock::now();
  auto r = cluster.ExecuteJob(job);
  double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!r.ok() || sink->empty()) std::abort();
  return static_cast<double>(build.size() + probe.size()) / sec;
}

size_t DistinctCol0(const std::vector<hyracks::Tuple>& rows) {
  std::unordered_map<int64_t, bool> seen;
  for (const auto& t : rows) seen[t[0].AsInt()] = true;
  return seen.size();
}

double GroupByTuplesPerSec(size_t budget_bytes,
                           const std::vector<hyracks::Tuple>& rows,
                           size_t expected_groups) {
  hyracks::ClusterConfig cfg{1, 1, 0, ""};
  cfg.op_memory_budget_bytes = budget_bytes;
  hyracks::Cluster cluster(cfg);
  hyracks::JobSpec job;
  int s = job.AddOperator(hyracks::MakeValueScan(rows));
  int g = job.AddOperator(hyracks::MakeHashGroupBy(
      1, {BenchCol(0)},
      {{"count", BenchCol(1)}, {"sum", BenchCol(1)}},
      hyracks::AggMode::kComplete));
  auto sink = std::make_shared<std::vector<hyracks::Tuple>>();
  int d = job.AddOperator(hyracks::MakeResultSink(sink));
  job.Connect(hyracks::ConnectorType::kOneToOne, s, g);
  job.Connect(hyracks::ConnectorType::kOneToOne, g, d);
  auto t0 = std::chrono::steady_clock::now();
  auto r = cluster.ExecuteJob(job);
  double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!r.ok() || sink->size() != expected_groups) std::abort();
  return static_cast<double>(rows.size()) / sec;
}

constexpr size_t kJoinBenchRows = 30000;
constexpr size_t kForcedSpillBudget = 256 * 1024;

const std::vector<hyracks::Tuple>& BenchBuildSide() {
  static auto* rows =
      new std::vector<hyracks::Tuple>(JoinSide(kJoinBenchRows, 15000, 1));
  return *rows;
}
const std::vector<hyracks::Tuple>& BenchProbeSide() {
  static auto* rows =
      new std::vector<hyracks::Tuple>(JoinSide(kJoinBenchRows, 15000, 2));
  return *rows;
}

void BM_HashJoinLegacyValueKeys(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        JoinTuplesPerSec(false, 0, BenchBuildSide(), BenchProbeSide()));
  }
  state.SetItemsProcessed(state.iterations() * 2 * kJoinBenchRows);
}
BENCHMARK(BM_HashJoinLegacyValueKeys)->Unit(benchmark::kMillisecond);

void BM_HashJoinSerializedKeys(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        JoinTuplesPerSec(true, 0, BenchBuildSide(), BenchProbeSide()));
  }
  state.SetItemsProcessed(state.iterations() * 2 * kJoinBenchRows);
}
BENCHMARK(BM_HashJoinSerializedKeys)->Unit(benchmark::kMillisecond);

void BM_HashJoinSerializedKeysForcedSpill(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(JoinTuplesPerSec(
        true, kForcedSpillBudget, BenchBuildSide(), BenchProbeSide()));
  }
  state.SetItemsProcessed(state.iterations() * 2 * kJoinBenchRows);
}
BENCHMARK(BM_HashJoinSerializedKeysForcedSpill)->Unit(benchmark::kMillisecond);

void BM_HashGroupByInMemory(benchmark::State& state) {
  const auto& rows = BenchBuildSide();
  const size_t groups = DistinctCol0(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GroupByTuplesPerSec(0, rows, groups));
  }
  state.SetItemsProcessed(state.iterations() * kJoinBenchRows);
}
BENCHMARK(BM_HashGroupByInMemory)->Unit(benchmark::kMillisecond);

void BM_HashGroupByForcedSpill(benchmark::State& state) {
  const auto& rows = BenchBuildSide();
  const size_t groups = DistinctCol0(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GroupByTuplesPerSec(kForcedSpillBudget, rows, groups));
  }
  state.SetItemsProcessed(state.iterations() * kJoinBenchRows);
}
BENCHMARK(BM_HashGroupByForcedSpill)->Unit(benchmark::kMillisecond);

void BM_LzCompressStripe(benchmark::State& state) {
  std::vector<uint8_t> data;
  for (int i = 0; i < 2000; ++i) {
    const char* rec = "verizon|voice-clarity|2014-02-20|";
    data.insert(data.end(), rec, rec + 33);
    data.push_back(static_cast<uint8_t>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCompress(data.data(), data.size()).size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_LzCompressStripe);

}  // namespace

// Like BENCHMARK_MAIN(), plus a BENCH_micro.json metrics snapshot so the
// columnar counters the projected-scan benches bump are machine-readable.
// The JSON also records the head-to-head shuffle throughput: the current
// frame-at-a-time path vs the legacy tuple-at-a-time runtime it replaced.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  constexpr int64_t kShufflePerProducer = 100000;
  double legacy_tps = ShuffleTuplesPerSec(false, 4, kShufflePerProducer);
  double frame_tps = ShuffleTuplesPerSec(true, 4, kShufflePerProducer);
  char shuffle_json[256];
  std::snprintf(shuffle_json, sizeof(shuffle_json),
                "{ \"tuples\": %lld, "
                "\"legacy_tuple_at_a_time_tuples_per_sec\": %.0f, "
                "\"frame_at_a_time_tuples_per_sec\": %.0f, "
                "\"speedup\": %.2f }",
                static_cast<long long>(4 * kShufflePerProducer), legacy_tps,
                frame_tps, frame_tps / legacy_tps);
  std::printf("shuffle legacy=%.0f t/s frame=%.0f t/s speedup=%.2fx\n",
              legacy_tps, frame_tps, frame_tps / legacy_tps);

  // Head-to-head join/group-by runs for the machine-readable snapshot: the
  // legacy vector<Value>-keyed build vs the serialized-normalized-key build,
  // in memory and with a budget small enough to force Grace spilling.
  const size_t kHeadToHead = 100000;
  auto build = JoinSide(kHeadToHead, kHeadToHead / 2, 1);
  auto probe = JoinSide(kHeadToHead, kHeadToHead / 2, 2);
  double join_legacy = JoinTuplesPerSec(false, 0, build, probe);
  double join_serialized = JoinTuplesPerSec(true, 0, build, probe);
  double join_spill = JoinTuplesPerSec(true, kForcedSpillBudget, build, probe);
  size_t groups = DistinctCol0(build);
  double gb_mem = GroupByTuplesPerSec(0, build, groups);
  double gb_spill = GroupByTuplesPerSec(kForcedSpillBudget, build, groups);
  char hash_json[512];
  std::snprintf(
      hash_json, sizeof(hash_json),
      "{ \"tuples_per_side\": %lld, "
      "\"legacy_value_key_tuples_per_sec\": %.0f, "
      "\"serialized_key_tuples_per_sec\": %.0f, "
      "\"serialized_vs_legacy_speedup\": %.2f, "
      "\"forced_spill_tuples_per_sec\": %.0f, "
      "\"spill_budget_bytes\": %lld }",
      static_cast<long long>(kHeadToHead), join_legacy, join_serialized,
      join_serialized / join_legacy, join_spill,
      static_cast<long long>(kForcedSpillBudget));
  char gb_json[256];
  std::snprintf(gb_json, sizeof(gb_json),
                "{ \"tuples\": %lld, \"groups\": %lld, "
                "\"in_memory_tuples_per_sec\": %.0f, "
                "\"forced_spill_tuples_per_sec\": %.0f }",
                static_cast<long long>(kHeadToHead),
                static_cast<long long>(groups), gb_mem, gb_spill);
  std::printf(
      "hash join legacy=%.0f t/s serialized=%.0f t/s (%.2fx) spill=%.0f t/s\n"
      "group-by mem=%.0f t/s spill=%.0f t/s\n",
      join_legacy, join_serialized, join_serialized / join_legacy, join_spill,
      gb_mem, gb_spill);

  // Interpreted vs vectorized head-to-head on the same columnar data: both
  // paths must agree on the answer (identical accumulation order makes the
  // double sums bit-comparable), and the vectorized one must be faster.
  auto timed_best_of = [](double (*pass)(size_t*), size_t* rows,
                          double* result) {
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      *result = pass(rows);
      double sec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
      if (sec < best) best = sec;
    }
    return best;
  };
  size_t vec_rows = 0;
  double interp_sum = 0, vec_sum = 0;
  double interp_sec =
      timed_best_of(InterpretedFilterAggPass, &vec_rows, &interp_sum);
  double vec_sec = timed_best_of(VectorizedFilterAggPass, &vec_rows, &vec_sum);
  if (interp_sum != vec_sum) {
    std::fprintf(stderr, "FATAL vector exec mismatch: interp=%f vec=%f\n",
                 interp_sum, vec_sum);
    return 1;
  }
  double interp_rps = static_cast<double>(vec_rows) / interp_sec;
  double vec_rps = static_cast<double>(vec_rows) / vec_sec;
  double vec_speedup = vec_rps / interp_rps;
  char vector_json[256];
  std::snprintf(vector_json, sizeof(vector_json),
                "{ \"rows\": %lld, "
                "\"interpreted_rows_per_sec\": %.0f, "
                "\"vectorized_rows_per_sec\": %.0f, "
                "\"speedup\": %.2f }",
                static_cast<long long>(vec_rows), interp_rps, vec_rps,
                vec_speedup);
  std::printf("vector exec interpreted=%.0f rows/s vectorized=%.0f rows/s "
              "speedup=%.2fx\n",
              interp_rps, vec_rps, vec_speedup);
  if (std::getenv("ASTERIX_BENCH_REQUIRE_VECTOR_SPEEDUP") != nullptr &&
      vec_speedup < 1.0) {
    std::fprintf(stderr,
                 "FATAL vectorized path slower than interpreted (%.2fx)\n",
                 vec_speedup);
    return 1;
  }

  std::string out = "{ \"bench\": \"micro\", \"shuffle\": " +
                    std::string(shuffle_json) + ", \"hash_join\": " +
                    std::string(hash_json) + ", \"group_by\": " +
                    std::string(gb_json) + ", \"vector_exec\": " +
                    std::string(vector_json) + ", \"metrics\": " +
                    asterix::api::AsterixInstance::MetricsJson() + " }";
  auto st = asterix::env::WriteFileAtomic("BENCH_micro.json", out.data(),
                                          out.size());
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL bench dump: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote BENCH_micro.json\n");

  // Live-introspection artifacts: boot a tiny instance with an aggressive
  // slow-query threshold, run a short script, and leave a StatusJson
  // snapshot plus the resulting slow-query log next to the bench dumps
  // (CI uploads both).
  {
    std::string dir = asterix::env::NewScratchDir("bench_micro_status");
    asterix::api::InstanceConfig config;
    config.base_dir = dir + "/asterix";
    config.cluster.num_nodes = 2;
    config.cluster.partitions_per_node = 2;
    config.cluster.job_startup_us = 0;
    config.cluster.slow_query_us = 1;  // every query profiles into the log
    asterix::api::AsterixInstance instance(config);
    auto check = [](const asterix::Status& s, const char* what) {
      if (!s.ok()) {
        std::fprintf(stderr, "FATAL %s: %s\n", what, s.ToString().c_str());
        std::exit(1);
      }
    };
    check(instance.Boot(), "status boot");
    auto r = instance.Execute(R"aql(
create dataverse Bench; use dataverse Bench;
create type T as { id: int64, v: int64 }
create dataset D(T) primary key id;
insert into dataset D ([
  { "id": 1, "v": 2 }, { "id": 2, "v": 3 }, { "id": 3, "v": 4 },
  { "id": 4, "v": 5 }, { "id": 5, "v": 6 }, { "id": 6, "v": 7 } ]);
for $a in dataset D where $a.v > 3 return $a.id;
)aql");
    check(r.ok() ? asterix::Status::OK() : r.status(), "status script");
    std::string status = instance.StatusJson();
    check(asterix::env::WriteFileAtomic("STATUS.json", status.data(),
                                        status.size()),
          "status dump");
    std::printf("wrote STATUS.json\n");
    std::vector<uint8_t> slow_log;
    if (asterix::env::ReadFile(instance.SlowQueryLogPath(), &slow_log).ok()) {
      check(asterix::env::WriteFileAtomic("SLOW_QUERY.log", slow_log.data(),
                                          slow_log.size()),
            "slow-query dump");
      std::printf("wrote SLOW_QUERY.log\n");
    }
    asterix::env::RemoveAll(dir);
  }
  return 0;
}
