// Ablation: open vs closed datatype declarations (paper SS2.1): "The more
// AsterixDB knows about the potential residents of a Dataset, the less it
// needs to store in each individual data instance." Sweeps the fraction of
// fields declared a priori and measures storage size and full-scan time.

#include <chrono>
#include <cstdio>

#include "adm/serde.h"
#include "common/env.h"
#include "storage/dataset_store.h"
#include "workload/generator.h"

namespace {

using namespace asterix;
using adm::Datatype;
using adm::TypeTag;

// Message type declaring the first `declared` of the 7 fields (key always).
adm::DatatypePtr PartialMessageType(int declared) {
  std::vector<adm::FieldType> all = {
      {"message-id", Datatype::Primitive(TypeTag::kInt64), false},
      {"author-id", Datatype::Primitive(TypeTag::kInt64), false},
      {"timestamp", Datatype::Primitive(TypeTag::kDatetime), false},
      {"in-response-to", Datatype::Primitive(TypeTag::kInt64), true},
      {"sender-location", Datatype::Primitive(TypeTag::kPoint), true},
      {"tags", Datatype::MakeBag(Datatype::Primitive(TypeTag::kString)), false},
      {"message", Datatype::Primitive(TypeTag::kString), false},
  };
  std::vector<adm::FieldType> fields(all.begin(), all.begin() + declared);
  // Closed only when everything is declared.
  return Datatype::MakeRecord("M" + std::to_string(declared), std::move(fields),
                              /*open=*/declared < 7);
}

int Main() {
  const int n = 40000;
  workload::Generator gen;
  auto messages = gen.MakeMessages(n, 5000);

  std::printf("Open vs closed datatype ablation (%d messages)\n\n", n);
  std::printf("%-26s %12s %12s %12s\n", "declared fields", "disk MB",
              "bytes/rec", "scan ms");

  uint64_t keyonly_bytes = 0, closed_bytes = 0;
  for (int declared : {1, 3, 5, 7}) {
    std::string dir = env::NewScratchDir("openclosed");
    storage::BufferCache cache(1 << 14);
    txn::TxnManager txns(dir + "/wal");
    storage::DatasetDef def;
    def.dataset_id = 1;
    def.dataverse = "B";
    def.name = "M";
    def.type = PartialMessageType(declared);
    def.primary_key_fields = {"message-id"};
    storage::LsmOptions options;
    storage::PartitionedDataset ds(&cache, dir, def, 4, &txns, options);
    if (!ds.Open().ok() || !ds.LoadBulk(messages).ok() || !ds.FlushAll().ok()) {
      std::fprintf(stderr, "setup failed\n");
      return 1;
    }
    uint64_t bytes = ds.TotalPrimaryDiskBytes();
    auto t0 = std::chrono::steady_clock::now();
    size_t scanned = 0;
    for (uint32_t p = 0; p < 4; ++p) {
      ds.partition(p)->ScanAll([&](const adm::Value&) {
        ++scanned;
        return Status::OK();
      });
    }
    double scan_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    char label[64];
    std::snprintf(label, sizeof(label), "%d of 7 (%s)", declared,
                  declared == 7 ? "closed" : "open");
    std::printf("%-26s %12.2f %12.1f %12.1f\n", label,
                static_cast<double>(bytes) / (1 << 20),
                static_cast<double>(bytes) / n, scan_ms);
    if (declared == 1) keyonly_bytes = bytes;
    if (declared == 7) closed_bytes = bytes;
    env::RemoveAll(dir);
  }

  bool ok = keyonly_bytes > closed_bytes * 3 / 2;
  std::printf("\nclaim: %-62s %s\n",
              "key-only open storage substantially larger than closed",
              ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}

}  // namespace

int main() { return Main(); }
