// Regenerates Table 4 of the paper: average insert time per record, for
// single-record statements (batch size 1) and one-statement batches of 20.
// Paper (seconds/record):
//                batch=1   batch=20
//   Ast (Schema)  0.091     0.010
//   Ast (KeyOnly) 0.093     0.011
//   Syst-X        0.040     0.026
//   Mongo         0.035     0.024
// Shape: at batch 1 AsterixDB is noticeably the slowest (Hyracks job
// generation + start-up per statement); at batch 20 that overhead is
// amortized across the batch and AsterixDB wins. The baselines improve only
// modestly (per-record journaled commits). Hive is absent, as in the paper
// (its data life cycle is managed outside the system).

#include "adm/serde.h"
#include "bench_common.h"

namespace asterix {
namespace bench {
namespace {

using adm::Value;

constexpr int64_t kGroupCommitUs = 2000;  // simulated WAL flush (10K RPM era)
constexpr int kRecords = 400;             // per configuration

struct InsertEnv {
  std::string dir;
  std::unique_ptr<api::AsterixInstance> asterix;
  std::unique_ptr<baselines::RelStore> systx;
  baselines::RelTable* systx_messages = nullptr;
  std::unique_ptr<baselines::DocStore> mongo;

  InsertEnv() {
    dir = env::NewScratchDir("table4");
    api::InstanceConfig config;
    config.base_dir = dir + "/asterix";
    config.cluster.num_nodes = 2;
    config.cluster.partitions_per_node = 2;
    config.cluster.job_startup_us = 1200;
    config.group_commit_latency_us = kGroupCommitUs;
    asterix = std::make_unique<api::AsterixInstance>(config);
    Check(asterix->Boot(), "boot");
    auto r = asterix->Execute(R"aql(
create dataverse Bench; use dataverse Bench;
create type MessageType as closed {
  message-id: int64, author-id: int64, timestamp: datetime,
  in-response-to: int64?, sender-location: point?,
  tags: {{ string }}, message: string
}
create type MessageKeyOnly as { message-id: int64 }
create dataset Messages(MessageType) primary key message-id;
create dataset MessagesKeyOnly(MessageKeyOnly) primary key message-id;
)aql");
    Check(r.ok() ? Status::OK() : r.status(), "ddl");

    systx = std::make_unique<baselines::RelStore>(dir + "/systx");
    systx_messages = systx->CreateTable("messages",
                                        workload::MessageTableSchema(),
                                        "message_id");
    mongo = std::make_unique<baselines::DocStore>(dir + "/mongo", "messages",
                                                  "message-id");
  }
  ~InsertEnv() { env::RemoveAll(dir); }
};

// Renders one generated message as an AQL record constructor.
std::string MessageLiteral(const Value& m) { return m.ToString(); }

double AsterixInsertMsPerRecord(
    InsertEnv* env, const char* dataset, const std::vector<Value>& messages,
    int batch, std::shared_ptr<const hyracks::JobProfile>* profile = nullptr) {
  size_t pos = 0;
  int total = 0;
  auto start = std::chrono::steady_clock::now();
  while (pos + static_cast<size_t>(batch) <= messages.size()) {
    std::string payload;
    if (batch == 1) {
      payload = MessageLiteral(messages[pos]);
    } else {
      payload = "[";
      for (int i = 0; i < batch; ++i) {
        if (i) payload += ",";
        payload += MessageLiteral(messages[pos + static_cast<size_t>(i)]);
      }
      payload += "]";
    }
    auto r = env->asterix->Execute("use dataverse Bench;\ninsert into dataset " +
                                   std::string(dataset) + " (" + payload + ");");
    Check(r.ok() ? Status::OK() : r.status(), "insert");
    if (profile && r.value().stats.profile) *profile = r.value().stats.profile;
    pos += static_cast<size_t>(batch);
    total += batch;
  }
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  return ms / total;
}

// Baselines: each statement pays a client round trip; each record pays a
// journaled commit (the per-document/row durability of the paper's setups).
template <typename InsertFn>
double BaselineInsertMsPerRecord(const std::vector<Value>& records, int batch,
                                 InsertFn insert) {
  size_t pos = 0;
  int total = 0;
  auto start = std::chrono::steady_clock::now();
  while (pos + static_cast<size_t>(batch) <= records.size()) {
    std::this_thread::sleep_for(std::chrono::microseconds(kClientRoundTripUs));
    for (int i = 0; i < batch; ++i) {
      insert(records[pos + static_cast<size_t>(i)]);
      std::this_thread::sleep_for(std::chrono::microseconds(kGroupCommitUs));
    }
    pos += static_cast<size_t>(batch);
    total += batch;
  }
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  return ms / total;
}

int Main() {
  std::printf("Table 4 reproduction: average insert time per record (ms)\n");
  InsertEnv env;
  workload::Generator gen;
  // Distinct key ranges per configuration to avoid duplicate-key rejects.
  auto all = gen.MakeMessages(6 * kRecords, 1000);

  auto slice = [&](int i) {
    return std::vector<Value>(all.begin() + i * kRecords,
                              all.begin() + (i + 1) * kRecords);
  };

  BenchJsonDump dump("table4");
  dump.SetInstance(env.asterix.get());
  std::shared_ptr<const hyracks::JobProfile> prof;
  double ast_schema_1 =
      AsterixInsertMsPerRecord(&env, "Messages", slice(0), 1, &prof);
  dump.Add("insert schema batch=1", ast_schema_1, prof);
  double ast_keyonly_1 =
      AsterixInsertMsPerRecord(&env, "MessagesKeyOnly", slice(1), 1, &prof);
  dump.Add("insert keyonly batch=1", ast_keyonly_1, prof);
  double ast_schema_20 =
      AsterixInsertMsPerRecord(&env, "Messages", slice(2), 20, &prof);
  dump.Add("insert schema batch=20", ast_schema_20, prof);
  double ast_keyonly_20 =
      AsterixInsertMsPerRecord(&env, "MessagesKeyOnly", slice(3), 20, &prof);
  dump.Add("insert keyonly batch=20", ast_keyonly_20, prof);

  auto systx_rows = slice(4);
  double systx_1 = BaselineInsertMsPerRecord(
      std::vector<Value>(systx_rows.begin(), systx_rows.begin() + kRecords / 2),
      1, [&](const Value& m) {
        Check(env.systx_messages->Insert(workload::NormalizeMessage(m).message_row),
              "systx insert");
      });
  double systx_20 = BaselineInsertMsPerRecord(
      std::vector<Value>(systx_rows.begin() + kRecords / 2, systx_rows.end()),
      20, [&](const Value& m) {
        Check(env.systx_messages->Insert(workload::NormalizeMessage(m).message_row),
              "systx insert");
      });

  auto mongo_rows = slice(5);
  double mongo_1 = BaselineInsertMsPerRecord(
      std::vector<Value>(mongo_rows.begin(), mongo_rows.begin() + kRecords / 2),
      1, [&](const Value& m) { Check(env.mongo->Insert(m), "mongo insert"); });
  double mongo_20 = BaselineInsertMsPerRecord(
      std::vector<Value>(mongo_rows.begin() + kRecords / 2, mongo_rows.end()),
      20, [&](const Value& m) { Check(env.mongo->Insert(m), "mongo insert"); });

  std::printf("\n%-18s %12s %12s\n", "system", "batch=1", "batch=20");
  std::printf("%-18s %12.3f %12.3f\n", "Asterix (Schema)", ast_schema_1,
              ast_schema_20);
  std::printf("%-18s %12.3f %12.3f\n", "Asterix (KeyOnly)", ast_keyonly_1,
              ast_keyonly_20);
  std::printf("%-18s %12.3f %12.3f\n", "Syst-X", systx_1, systx_20);
  std::printf("%-18s %12.3f %12.3f\n", "Mongo", mongo_1, mongo_20);
  PrintJobPercentiles("insert jobs");

  bool ok = true;
  auto claim = [&](bool cond, const char* what) {
    std::printf("claim: %-62s %s\n", what, cond ? "HOLDS" : "VIOLATED");
    ok = ok && cond;
  };
  std::printf("\n");
  claim(ast_schema_1 > systx_1 && ast_schema_1 > mongo_1,
        "batch=1: AsterixDB slowest (per-statement job start-up)");
  claim(ast_schema_20 < systx_20 && ast_schema_20 < mongo_20,
        "batch=20: AsterixDB fastest (start-up amortized, group commit)");
  claim(ast_schema_20 < ast_schema_1 / 3,
        "batching improves AsterixDB by a large factor");
  claim(systx_20 > systx_1 / 3 && mongo_20 > mongo_1 / 3,
        "baselines improve only modestly with batching");
  dump.Write();
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace asterix

int main() { return asterix::bench::Main(); }
