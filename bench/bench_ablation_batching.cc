// Ablation: the Table 4 mechanism, swept. Per-record insert cost as a
// function of statement batch size: the fixed Hyracks job-generation and
// start-up overhead amortizes across the batch, and the WAL group commit
// shares one flush per job. The paper: "By increasing the number of records
// inserted as a (one statement) batch, we can distribute this overhead to
// multiple records."

#include <chrono>
#include <cstdio>

#include "api/asterix.h"
#include "common/env.h"
#include "workload/generator.h"

namespace {

using namespace asterix;

int Main() {
  std::string dir = env::NewScratchDir("batching");
  api::InstanceConfig config;
  config.base_dir = dir;
  config.cluster.num_nodes = 2;
  config.cluster.partitions_per_node = 2;
  config.cluster.job_startup_us = 1200;
  config.group_commit_latency_us = 2000;
  api::AsterixInstance instance(config);
  if (!instance.Boot().ok()) return 1;
  auto ddl = instance.Execute(R"aql(
create dataverse B; use dataverse B;
create type M as closed {
  message-id: int64, author-id: int64, timestamp: datetime,
  in-response-to: int64?, sender-location: point?,
  tags: {{ string }}, message: string
}
create dataset Messages(M) primary key message-id;
)aql");
  if (!ddl.ok()) {
    std::fprintf(stderr, "%s\n", ddl.status().ToString().c_str());
    return 1;
  }

  workload::Generator gen;
  auto messages = gen.MakeMessages(4000, 500);
  size_t pos = 0;

  std::printf("Insert batching ablation (job start-up %.1f ms + group commit "
              "%.1f ms per statement)\n\n",
              config.cluster.job_startup_us / 1000.0,
              config.group_commit_latency_us / 1000.0);
  std::printf("%8s %16s %14s\n", "batch", "ms/record", "records/sec");

  double first = 0, last = 0;
  for (int batch : {1, 2, 5, 10, 20, 50, 100}) {
    int statements = std::max(3, 200 / batch);
    auto t0 = std::chrono::steady_clock::now();
    int total = 0;
    for (int s = 0; s < statements; ++s) {
      std::string payload = "[";
      for (int i = 0; i < batch; ++i) {
        if (i) payload += ",";
        payload += messages[pos++].ToString();
        if (pos >= messages.size()) pos = 0;  // wraps only at huge batch counts
      }
      payload += "]";
      auto r = instance.Execute("use dataverse B;\ninsert into dataset Messages (" +
                                payload + ");");
      if (!r.ok()) {
        std::fprintf(stderr, "insert failed: %s\n", r.status().ToString().c_str());
        return 1;
      }
      total += batch;
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count() /
                total;
    std::printf("%8d %16.3f %14.0f\n", batch, ms, 1000.0 / ms);
    if (batch == 1) first = ms;
    last = ms;
  }

  bool ok = first > 5 * last;
  std::printf("\nclaim: %-62s %s\n",
              "per-record cost falls >5x from batch=1 to batch=100",
              ok ? "HOLDS" : "VIOLATED");
  env::RemoveAll(dir);
  return ok ? 0 : 1;
}

}  // namespace

int main() { return Main(); }
